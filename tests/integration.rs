//! Cross-crate integration tests: every algorithm × scheduler × graph-family
//! combination must produce a valid dispersion, within the expected
//! complexity envelopes, with logarithmic per-agent memory.

use dispersion::graph::generators::GraphFamily;
use dispersion::prelude::*;

fn rooted_report(family: GraphFamily, k: usize, algo: Algorithm, schedule: Schedule) -> RunReport {
    let graph = family.instantiate(k, 11);
    let k = k.min(graph.num_nodes());
    run_rooted(
        &graph,
        k,
        NodeId(0),
        &RunSpec {
            algorithm: algo,
            schedule,
            ..RunSpec::default()
        },
    )
    .expect("run must terminate")
}

#[test]
fn all_algorithms_disperse_on_all_quick_families_sync() {
    for family in GraphFamily::quick() {
        for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker] {
            let report = rooted_report(family, 48, algo, Schedule::Sync);
            assert!(report.dispersed, "{algo:?} on {family}");
            assert!(report.outcome.terminated);
        }
    }
}

#[test]
fn async_algorithms_disperse_under_all_adversaries() {
    for schedule in [
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.5, seed: 2 },
        Schedule::AsyncLagging {
            max_lag: 6,
            seed: 2,
        },
    ] {
        for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs] {
            let report = rooted_report(GraphFamily::RandomTree, 40, algo, schedule);
            assert!(report.dispersed, "{algo:?} under {schedule:?}");
        }
    }
}

#[test]
fn probe_dfs_stays_within_k_log_k_async() {
    for family in [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
    ] {
        let report = rooted_report(
            family,
            96,
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.8, seed: 5 },
        );
        assert!(
            verify::envelope::within_k_log_k(&report.outcome, 60.0),
            "{family}: {} epochs exceeds the O(k log k) envelope",
            report.outcome.epochs
        );
    }
}

#[test]
fn seeker_sync_is_linear_on_bounded_degree_families() {
    for family in [GraphFamily::Line, GraphFamily::Ring, GraphFamily::Grid] {
        let report = rooted_report(family, 100, Algorithm::SyncSeeker, Schedule::Sync);
        assert!(
            verify::envelope::within_linear(&report.outcome, 25.0),
            "{family}: {} rounds exceeds the O(k) envelope",
            report.outcome.rounds
        );
    }
}

#[test]
fn memory_is_logarithmic_for_every_algorithm() {
    for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker] {
        let report = rooted_report(GraphFamily::Star, 128, algo, Schedule::Sync);
        assert!(
            verify::envelope::memory_logarithmic(&report.outcome, 30.0),
            "{algo:?}: {} bits is not O(log(k+Δ))",
            report.outcome.peak_memory_bits
        );
    }
}

#[test]
fn baseline_is_superlinear_on_dense_graphs_while_probe_is_not() {
    let small = rooted_report(GraphFamily::Complete, 24, Algorithm::KsDfs, Schedule::Sync);
    let large = rooted_report(GraphFamily::Complete, 48, Algorithm::KsDfs, Schedule::Sync);
    let ratio_scan = large.outcome.rounds as f64 / small.outcome.rounds as f64;
    let small_p = rooted_report(
        GraphFamily::Complete,
        24,
        Algorithm::ProbeDfs,
        Schedule::Sync,
    );
    let large_p = rooted_report(
        GraphFamily::Complete,
        48,
        Algorithm::ProbeDfs,
        Schedule::Sync,
    );
    let ratio_probe = large_p.outcome.rounds as f64 / small_p.outcome.rounds as f64;
    assert!(
        ratio_scan > ratio_probe,
        "doubling k should hurt the scan baseline ({ratio_scan:.2}x) more than probing ({ratio_probe:.2}x)"
    );
}

#[test]
fn general_configurations_disperse_with_many_groups() {
    let graph = GraphFamily::Grid.instantiate(100, 3);
    let n = graph.num_nodes();
    let positions: Vec<NodeId> = (0..70).map(|i| NodeId(((i * 13) % n) as u32)).collect();
    for schedule in [Schedule::Sync, Schedule::AsyncRandom { prob: 0.6, seed: 1 }] {
        let report = run(
            &graph,
            positions.clone(),
            &RunSpec {
                algorithm: Algorithm::KsDfs,
                schedule,
                ..RunSpec::default()
            },
        )
        .expect("run");
        assert!(report.dispersed);
    }
}

#[test]
fn port_relabeling_does_not_break_dispersion() {
    // Algorithms on anonymous port-labeled graphs must not depend on how the
    // generator happened to assign port numbers.
    let base = GraphFamily::RandomTree.instantiate(60, 21);
    let permuted = generators::permute_ports(&base, 99);
    for graph in [base, permuted] {
        let report = run_rooted(
            &graph,
            60,
            NodeId(0),
            &RunSpec {
                algorithm: Algorithm::ProbeDfs,
                schedule: Schedule::Sync,
                ..RunSpec::default()
            },
        )
        .expect("run");
        assert!(report.dispersed);
    }
}

#[test]
fn campaign_engine_drives_the_full_stack_deterministically() {
    use disp_campaign::grid::{CampaignSpec, Mode};
    use disp_campaign::run::run_campaign;

    let spec = CampaignSpec::mini(Mode::Quick, 0xA11CE);
    let (a, summary) = run_campaign(&spec, None, 1).expect("campaign");
    let (b, _) = run_campaign(&spec, None, 3).expect("campaign");
    assert_eq!(summary.total, spec.trials().len());
    assert!(a.iter().all(|r| r.dispersed), "mini campaign must disperse");
    let lines = |rs: &[dispersion::analysis::TrialRecord]| -> Vec<String> {
        rs.iter().map(|r| r.to_json_line()).collect()
    };
    assert_eq!(lines(&a), lines(&b), "thread count must not change results");
}
