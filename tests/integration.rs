//! Cross-crate integration tests: every algorithm × scheduler × placement ×
//! graph-family combination must produce a valid dispersion, within the
//! expected complexity envelopes, with logarithmic per-agent memory — all
//! driven through the canonical scenario API.

use dispersion::core::scenario::ScenarioReport;
use dispersion::prelude::*;

fn report(spec: &ScenarioSpec) -> ScenarioReport {
    spec.run(&Registry::builtin(), 11)
        .expect("run must terminate")
}

fn rooted(family: GraphFamily, k: usize, algo: &str, schedule: Schedule) -> ScenarioReport {
    report(&ScenarioSpec::new(family, k, algo).with_schedule(schedule))
}

#[test]
fn all_algorithms_disperse_on_all_quick_families_sync() {
    for family in GraphFamily::quick() {
        for algo in Registry::builtin().labels() {
            let r = rooted(family, 48, algo, Schedule::Sync);
            assert!(r.dispersed, "{algo} on {family}");
            assert!(r.outcome.terminated);
        }
    }
}

#[test]
fn async_algorithms_disperse_under_all_adversaries() {
    for schedule in [
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.5, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 6,
            seed: 0,
        },
    ] {
        for algo in ["ks-dfs", "probe-dfs"] {
            let r = rooted(GraphFamily::RandomTree, 40, algo, schedule);
            assert!(r.dispersed, "{algo} under {schedule:?}");
        }
    }
}

#[test]
fn every_placement_family_disperses_under_every_schedule() {
    // The acceptance sweep of the scenario redesign, at integration level:
    // placement families × schedule families through the general algorithm.
    for placement in Placement::all() {
        for schedule in [
            Schedule::Sync,
            Schedule::AsyncRandom { prob: 0.6, seed: 0 },
            Schedule::AsyncLagging {
                max_lag: 4,
                seed: 0,
            },
        ] {
            let spec = ScenarioSpec::new(GraphFamily::Grid, 30, "ks-dfs")
                .with_placement(placement)
                .with_schedule(schedule);
            let r = report(&spec);
            assert!(r.dispersed, "{}", spec.label());
        }
    }
}

#[test]
fn probe_dfs_stays_within_k_log_k_async() {
    for family in [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
    ] {
        let r = rooted(
            family,
            96,
            "probe-dfs",
            Schedule::AsyncRandom { prob: 0.8, seed: 0 },
        );
        assert!(
            verify::envelope::within_k_log_k(&r.outcome, 60.0),
            "{family}: {} epochs exceeds the O(k log k) envelope",
            r.outcome.epochs
        );
    }
}

#[test]
fn seeker_sync_is_linear_on_bounded_degree_families() {
    for family in [GraphFamily::Line, GraphFamily::Ring, GraphFamily::Grid] {
        let r = rooted(family, 100, "sync-seeker", Schedule::Sync);
        assert!(
            verify::envelope::within_linear(&r.outcome, 25.0),
            "{family}: {} rounds exceeds the O(k) envelope",
            r.outcome.rounds
        );
    }
}

#[test]
fn memory_is_logarithmic_for_every_algorithm() {
    for algo in Registry::builtin().labels() {
        let r = rooted(GraphFamily::Star, 128, algo, Schedule::Sync);
        assert!(
            verify::envelope::memory_logarithmic(&r.outcome, 30.0),
            "{algo}: {} bits is not O(log(k+Δ))",
            r.outcome.peak_memory_bits
        );
    }
}

#[test]
fn baseline_is_superlinear_on_dense_graphs_while_probe_is_not() {
    let rounds = |k: usize, algo: &str| {
        rooted(GraphFamily::Complete, k, algo, Schedule::Sync)
            .outcome
            .rounds
    };
    let ratio_scan = rounds(48, "ks-dfs") as f64 / rounds(24, "ks-dfs") as f64;
    let ratio_probe = rounds(48, "probe-dfs") as f64 / rounds(24, "probe-dfs") as f64;
    assert!(
        ratio_scan > ratio_probe,
        "doubling k should hurt the scan baseline ({ratio_scan:.2}x) more than probing ({ratio_probe:.2}x)"
    );
}

#[test]
fn general_configurations_disperse_with_many_groups() {
    // Hand-crafted many-group starts go through the custom-positions escape
    // hatch; the seeded families are covered by the placement sweep above.
    let registry = Registry::builtin();
    let factory = registry.get("ks-dfs").unwrap();
    let graph = GraphFamily::Grid.instantiate(100, 3);
    let n = graph.num_nodes();
    let positions: Vec<NodeId> = (0..70).map(|i| NodeId(((i * 13) % n) as u32)).collect();
    for schedule in [Schedule::Sync, Schedule::AsyncRandom { prob: 0.6, seed: 0 }] {
        let (outcome, dispersed) = run_custom(
            factory,
            &Params::new(),
            graph.clone(),
            positions.clone(),
            schedule,
            Limits::default(),
            1,
        )
        .expect("run");
        assert!(dispersed);
        assert!(outcome.terminated);
    }
}

#[test]
fn port_relabeling_does_not_break_dispersion() {
    // Algorithms on anonymous port-labeled graphs must not depend on how the
    // generator happened to assign port numbers.
    let registry = Registry::builtin();
    let factory = registry.get("probe-dfs").unwrap();
    let base = GraphFamily::RandomTree.instantiate(60, 21);
    let permuted = generators::permute_ports(&base, 99);
    for graph in [base, permuted] {
        let positions = vec![NodeId(0); 60];
        let (outcome, dispersed) = run_custom(
            factory,
            &Params::new(),
            graph,
            positions,
            Schedule::Sync,
            Limits::default(),
            2,
        )
        .expect("run");
        assert!(dispersed);
        assert!(outcome.terminated);
    }
}

#[test]
fn campaign_engine_drives_the_full_stack_deterministically() {
    use disp_campaign::grid::{CampaignSpec, Mode};
    use disp_campaign::run::run_campaign;

    let registry = Registry::builtin();
    let spec = CampaignSpec::mini(Mode::Quick, 0xA11CE);
    let (a, summary) = run_campaign(&spec, None, 1, &registry).expect("campaign");
    let (b, _) = run_campaign(&spec, None, 3, &registry).expect("campaign");
    assert_eq!(summary.total, spec.trials().len());
    assert!(a.iter().all(|r| r.dispersed), "mini campaign must disperse");
    let lines = |rs: &[dispersion::analysis::TrialRecord]| -> Vec<String> {
        rs.iter().map(|r| r.to_json_line()).collect()
    };
    assert_eq!(lines(&a), lines(&b), "thread count must not change results");
}
