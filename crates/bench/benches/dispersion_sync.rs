//! Table 1, SYNC rooted rows: wall-clock cost of simulating each algorithm
//! across graph families (the simulated-round counts are produced by the
//! `table1` harness binary). Scenarios come from the open registry, so a
//! newly registered algorithm shows up here by adding its label.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_core::scenario::{run_custom, Limits, Params, Registry};
use disp_core::Schedule;
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use std::hint::black_box;

fn bench_sync_rooted(c: &mut Criterion) {
    let registry = Registry::builtin();
    let mut group = c.benchmark_group("sync_rooted");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let k = 96;
    for family in [
        GraphFamily::Line,
        GraphFamily::RandomTree,
        GraphFamily::Complete,
    ] {
        for algo in registry.labels() {
            let id = BenchmarkId::new(format!("{}", family), algo);
            let factory = registry.get(algo).expect("registered");
            group.bench_function(id, |b| {
                let graph = family.instantiate(k, 5);
                let k = k.min(graph.num_nodes());
                b.iter(|| {
                    let (outcome, dispersed) = run_custom(
                        factory,
                        &Params::new(),
                        graph.clone(),
                        vec![NodeId(0); k],
                        Schedule::Sync,
                        Limits::default(),
                        7,
                    )
                    .expect("run");
                    assert!(dispersed);
                    black_box(outcome.rounds)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sync_rooted);
criterion_main!(benches);
