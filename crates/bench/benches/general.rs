//! Table 1, general-configuration rows: multiple groups starting from
//! scattered nodes (handled by the `ks-dfs` baseline with the scatter
//! fallback — see DESIGN.md for the fidelity note on subsumption). The
//! hand-crafted `l`-group starts use the scenario API's custom-positions
//! escape hatch; the seeded placement families run via `ScenarioSpec`.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_core::scenario::{run_custom, Limits, Params, Registry};
use disp_core::Schedule;
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use std::hint::black_box;

fn bench_general(c: &mut Criterion) {
    let registry = Registry::builtin();
    let factory = registry.get("ks-dfs").expect("registered");
    let mut group = c.benchmark_group("general");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let k = 64;
    for family in [
        GraphFamily::RandomTree,
        GraphFamily::Grid,
        GraphFamily::ErdosRenyi { avg_degree: 6.0 },
    ] {
        for &num_groups in &[2usize, 8] {
            let id = BenchmarkId::new(format!("{}", family), format!("l{num_groups}"));
            group.bench_function(id, |b| {
                let graph = family.instantiate(k, 5);
                let n = graph.num_nodes();
                let positions: Vec<NodeId> = (0..k.min(n))
                    .map(|i| NodeId(((i % num_groups) * (n / num_groups)) as u32))
                    .collect();
                b.iter(|| {
                    let (outcome, dispersed) = run_custom(
                        factory,
                        &Params::new(),
                        graph.clone(),
                        positions.clone(),
                        Schedule::Sync,
                        Limits::default(),
                        3,
                    )
                    .expect("run");
                    assert!(dispersed);
                    black_box(outcome.rounds)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_general);
criterion_main!(benches);
