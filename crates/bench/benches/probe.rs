//! Micro-benchmarks of the probing subroutines: how long (in simulated
//! rounds) a single dispersion run spends at a high-degree hub under the two
//! probing strategies. Complements the wall-clock numbers with the simulated
//! time the paper's analysis is about.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_core::prelude::*;
use disp_core::rooted_sync::SyncConfig;
use disp_graph::{generators, NodeId};
use disp_sim::{RunConfig, SyncRunner, World};
use std::hint::black_box;

fn bench_probe_strategies_on_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_star");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &k in &[64usize, 128] {
        group.bench_with_input(BenchmarkId::new("seeker_pool", k), &k, |b, &k| {
            b.iter(|| {
                let g = generators::star(k);
                let mut world = World::new_rooted(g, k, NodeId(0));
                let mut proto = RootedSyncDisp::with_config(&world, SyncConfig::default());
                let out = SyncRunner::new(RunConfig::default())
                    .run(&mut world, &mut proto)
                    .unwrap();
                black_box(out.rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("doubling_probe", k), &k, |b, &k| {
            b.iter(|| {
                let g = generators::star(k);
                let mut world = World::new_rooted(g, k, NodeId(0));
                let mut proto = ProbeDfs::new(&world);
                let out = SyncRunner::new(RunConfig::default())
                    .run(&mut world, &mut proto)
                    .unwrap();
                black_box(out.rounds)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", k), &k, |b, &k| {
            b.iter(|| {
                let g = generators::star(k);
                let mut world = World::new_rooted(g, k, NodeId(0));
                let mut proto = KsDfs::new(&world);
                let out = SyncRunner::new(RunConfig::default())
                    .run(&mut world, &mut proto)
                    .unwrap();
                black_box(out.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe_strategies_on_star);
criterion_main!(benches);
