//! Table 1, ASYNC rooted rows: cost of simulating the asynchronous
//! algorithms under the random-subset adversary. The algorithm list comes
//! from the registry, filtered to the async-capable ones.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_core::scenario::{run_custom, Limits, Params, Registry};
use disp_core::Schedule;
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use std::hint::black_box;

fn bench_async_rooted(c: &mut Criterion) {
    let registry = Registry::builtin();
    let mut group = c.benchmark_group("async_rooted");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let k = 64;
    let schedule = Schedule::AsyncRandom { prob: 0.7, seed: 0 };
    for family in [
        GraphFamily::Line,
        GraphFamily::RandomTree,
        GraphFamily::Complete,
    ] {
        for algo in registry.labels() {
            let factory = registry.get(algo).expect("registered");
            if !factory.supports_async() {
                continue;
            }
            let id = BenchmarkId::new(format!("{}", family), algo);
            group.bench_function(id, |b| {
                let graph = family.instantiate(k, 5);
                let k = k.min(graph.num_nodes());
                b.iter(|| {
                    let (outcome, dispersed) = run_custom(
                        factory,
                        &Params::new(),
                        graph.clone(),
                        vec![NodeId(0); k],
                        schedule,
                        Limits::default(),
                        11,
                    )
                    .expect("run");
                    assert!(dispersed);
                    black_box(outcome.epochs)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_async_rooted);
criterion_main!(benches);
