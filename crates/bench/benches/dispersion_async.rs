//! Table 1, ASYNC rooted rows: cost of simulating the asynchronous
//! algorithms under the random-subset adversary.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_core::runner::{run_rooted, Algorithm, RunSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use std::hint::black_box;

fn bench_async_rooted(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_rooted");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    let k = 64;
    for family in [
        GraphFamily::Line,
        GraphFamily::RandomTree,
        GraphFamily::Complete,
    ] {
        for algo in [Algorithm::KsDfs, Algorithm::ProbeDfs] {
            let id = BenchmarkId::new(format!("{}", family), algo.label());
            group.bench_function(id, |b| {
                let graph = family.instantiate(k, 5);
                let spec = RunSpec {
                    algorithm: algo,
                    schedule: Schedule::AsyncRandom {
                        prob: 0.7,
                        seed: 11,
                    },
                    ..RunSpec::default()
                };
                b.iter(|| {
                    let report = run_rooted(&graph, k.min(graph.num_nodes()), NodeId(0), &spec)
                        .expect("run");
                    assert!(report.dispersed);
                    black_box(report.outcome.epochs)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_async_rooted);
criterion_main!(benches);
