//! Criterion benches for the graph substrate: generator throughput and the
//! structural queries the simulator performs on every agent move.

use disp_bench::harness::{BenchmarkId, Criterion};
use disp_bench::{criterion_group, criterion_main};
use disp_graph::prelude::*;
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphgen");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("random_tree", n), &n, |b, &n| {
            b.iter(|| black_box(generators::random_tree(n, 7)))
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            b.iter(|| black_box(generators::erdos_renyi_connected(n, 8.0 / n as f64, 7)))
        });
        group.bench_with_input(BenchmarkId::new("grid", n), &n, |b, &n| {
            let side = (n as f64).sqrt() as usize;
            b.iter(|| black_box(generators::grid2d(side, side)))
        });
    }
    group.finish();
}

fn bench_traverse(c: &mut Criterion) {
    let g = generators::erdos_renyi_connected(1024, 0.01, 3);
    let mut group = c.benchmark_group("traverse");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.bench_function("full_edge_walk", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.nodes() {
                for p in g.ports(v) {
                    let (u, q) = g.traverse(v, p);
                    acc += u.0 as u64 + q.0 as u64;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_traverse);
criterion_main!(benches);
