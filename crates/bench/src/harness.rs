//! A minimal wall-clock bench harness with a criterion-shaped API surface.
//!
//! The build container has no network route to the crates registry, so the
//! workspace cannot depend on `criterion`; this module supplies the small
//! subset the benches use — groups, `BenchmarkId`, warm-up/measurement
//! windows, `Bencher::iter` — over `std::time::Instant`, reporting
//! mean/min/max per benchmark. Swap back to criterion by changing only the
//! imports in `benches/*.rs` if the dependency ever becomes available.

use std::time::{Duration, Instant};

/// Entry point handed to every bench function (mirrors
/// `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n## {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

/// A named benchmark id (mirrors `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

/// Things that can name a benchmark within a group.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

/// A group of related benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up window before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window, split across the samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_text();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, warm-up first, then `sample_size` samples of
    /// adaptively many iterations each.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up, and estimate the per-iteration cost while at it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / per_iter.max(1.0)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples (bencher.iter never called)");
            return;
        }
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{group}/{id}: mean {} (min {}, max {}, {} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            self.samples_ns.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Mirror of `criterion::criterion_group!`: bundles bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("harness-self-test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_200_000_000.0), "3.200 s");
    }
}
