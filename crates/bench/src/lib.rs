//! Shared helpers for the reproduction harness binaries (`table1`,
//! `figures`, `ablations`) and the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use disp_analysis::experiment::{ExperimentPoint, Measurement};
use disp_core::runner::{Algorithm, Schedule};
use disp_graph::generators::GraphFamily;

/// The k values swept by the harness in quick mode.
pub fn quick_ks() -> Vec<usize> {
    vec![16, 32, 64, 128]
}

/// The k values swept by the harness in full mode.
pub fn full_ks() -> Vec<usize> {
    vec![16, 32, 64, 128, 256, 512]
}

/// Build the sweep points for one Table-1 section.
pub fn section_points(
    families: &[GraphFamily],
    ks: &[usize],
    algorithms: &[Algorithm],
    schedule: Schedule,
    repetitions: usize,
) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for &family in families {
        for &k in ks {
            for &algorithm in algorithms {
                points.push(ExperimentPoint {
                    family,
                    k,
                    occupancy: 1.0,
                    algorithm,
                    schedule,
                    repetitions,
                });
            }
        }
    }
    points
}

/// Format a measurement row for the harness tables.
pub fn measurement_row(m: &Measurement) -> Vec<String> {
    vec![
        m.point.family.label(),
        m.point.algorithm.label().to_string(),
        m.point.schedule.label(),
        m.k.to_string(),
        m.n.to_string(),
        m.max_degree.to_string(),
        format!("{:.1}", m.time_mean),
        format!("{:.2}", m.time_mean / m.k as f64),
        format!(
            "{:.2}",
            m.time_mean / (m.k as f64 * (m.k as f64 + 2.0).log2())
        ),
        m.peak_memory_bits.to_string(),
        if m.all_dispersed { "yes" } else { "NO" }.to_string(),
    ]
}

/// Header matching [`measurement_row`].
pub fn measurement_header() -> Vec<&'static str> {
    vec![
        "family",
        "algorithm",
        "schedule",
        "k",
        "n",
        "max_deg",
        "time",
        "time/k",
        "time/(k·log k)",
        "peak_mem_bits",
        "dispersed",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_points_cover_the_grid() {
        let pts = section_points(
            &[GraphFamily::Line, GraphFamily::Star],
            &[16, 32],
            &[Algorithm::KsDfs, Algorithm::ProbeDfs],
            Schedule::Sync,
            1,
        );
        assert_eq!(pts.len(), 2 * 2 * 2);
    }

    #[test]
    fn header_and_row_lengths_match() {
        let pts = section_points(
            &[GraphFamily::Line],
            &[16],
            &[Algorithm::ProbeDfs],
            Schedule::Sync,
            1,
        );
        let m = pts[0].measure();
        assert_eq!(measurement_row(&m).len(), measurement_header().len());
    }
}
