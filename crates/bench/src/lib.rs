//! Shared pieces for the reproduction harness binaries (`table1`,
//! `figures`, `ablations`) and the wall-clock benches.
//!
//! The sweep machinery that used to live here moved into `disp-campaign`
//! (grids, seeds, the work-stealing engine) and `disp-analysis` (row
//! formatting); the re-exports below keep the old call sites working. What
//! remains local is [`harness`], the criterion-shaped bench harness.

// `count-allocs` swaps in a counting global allocator, whose `GlobalAlloc`
// impl has no safe-Rust expression — that build carries the crate's single
// unsafe item (so `deny` + a scoped allow); every other build forbids
// unsafe entirely.
#![cfg_attr(not(feature = "count-allocs"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-allocs", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod gate;
pub mod harness;

/// A counting global allocator (behind the `count-allocs` feature): every
/// heap allocation and reallocation in the process bumps one relaxed
/// counter, which the bench gate samples around a workload run to report
/// allocations-per-trial. Deallocation is deliberately not counted — the
/// gate tracks allocator pressure, and frees mirror allocs.
#[cfg(feature = "count-allocs")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// The system allocator with an allocation counter bolted on.
    pub struct CountingAllocator;

    #[allow(unsafe_code)]
    // SAFETY: pure delegation to `System`; the counter has no effect on
    // the returned pointers or layouts.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Allocations (+ reallocations) since process start.
    pub fn current() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn allocations_are_observed() {
            let before = super::current();
            let v: Vec<u64> = std::hint::black_box((0..4096).collect());
            assert!(super::current() > before);
            drop(v);
        }
    }
}

pub use disp_analysis::report::{measurement_header, measurement_row};
pub use disp_campaign::grid::{full_ks, quick_ks, section_points};

/// Minimal argument helpers shared by the harness binaries (they accept a
/// handful of `--flag value` pairs; anything richer lives in the
/// `disp-campaign` CLI).
pub mod cli {
    /// The value following `--name`, if present.
    pub fn flag_value(args: &[String], name: &str) -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    }

    /// `--threads N` if given and parseable, else the machine's available
    /// parallelism.
    pub fn threads(args: &[String]) -> usize {
        flag_value(args, "--threads")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(4)
            })
    }

    /// `--seed S` if given and parseable, else 1.
    pub fn seed(args: &[String]) -> u64 {
        flag_value(args, "--seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_analysis::experiment::ExperimentPoint;
    use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
    use disp_graph::generators::GraphFamily;
    use disp_sim::Placement;

    #[test]
    fn section_points_cover_the_grid() {
        let pts = section_points(
            &[GraphFamily::Line, GraphFamily::Star],
            &[16, 32],
            &["ks-dfs", "probe-dfs"],
            Placement::Rooted,
            Schedule::Sync,
            1,
        );
        assert_eq!(pts.len(), 2 * 2 * 2);
    }

    #[test]
    fn header_and_row_lengths_match() {
        let m = ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Line, 16, "probe-dfs"), 1)
            .measure(&Registry::builtin());
        assert_eq!(measurement_row(&m).len(), measurement_header().len());
    }

    #[test]
    fn quick_ks_is_a_prefix_of_full_ks() {
        let quick = quick_ks();
        let full = full_ks();
        assert_eq!(&full[..quick.len()], &quick[..]);
    }
}
