//! The bench regression gate: a checked-in wall-clock baseline
//! (`BENCH_baseline.json`) for the hot paths, and a checker that fails CI
//! when any of them regresses by more than the tolerance (default 25%).
//!
//! The gated workloads mirror the ids of the `disp-bench` benches:
//!
//! * `probe_star/doubling_probe/128` — `ProbeDfs` on a rooted star,
//!   the doubling-probe micro-benchmark.
//! * `sync_rooted/complete/ks-dfs` — the scan baseline on the complete
//!   graph through the scenario `run_custom` path.
//! * `scale/line100k/probe-dfs` — the flat-state hot loop itself: a rooted
//!   `k = 10^5` line through the implicit-topology scenario path (cohort
//!   rides + worklist; would take hours, not milliseconds, without them).
//! * `scale/line100k-async-lag4/probe-dfs` — the ASYNC hot path: the same
//!   rooted `k = 10^5` line under the event-driven lagging adversary
//!   (timer wheel + bulk epoch crediting; O(k)-per-step schedule
//!   generation would put this in minutes).
//! * `scale/ring100k/probe-dfs` — the static ring reference for the pair
//!   below.
//! * `scale/ring100k-dyn/probe-dfs` — the same ring under the dynamic
//!   adversary (one edge down per round). Besides the absolute baseline,
//!   the gate enforces a *relative* bound: the dynamic trial must finish
//!   within [`DYN_RING_FACTOR`]× of the static trial measured in the same
//!   run, which caps the cost of the edge-liveness overlay.
//!
//! Measurements are medians of several full runs; wall-clock on shared
//! machines is noisy, which is why the gate uses a generous relative
//! threshold rather than exact numbers.

use disp_analysis::json::Json;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_core::ProbeDfs;
use disp_graph::generators::{self, GraphFamily};
use disp_graph::NodeId;
use disp_sim::{RunConfig, SyncRunner, World};
use std::time::Instant;

/// One gated workload: a stable id and a closure-free runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `probe_star/doubling_probe/128`.
    ProbeStar,
    /// `sync_rooted/complete/ks-dfs`.
    ScanComplete,
    /// `scale/line100k/probe-dfs`.
    ScaleLine,
    /// `scale/line100k-async-lag4/probe-dfs`.
    ScaleLineAsync,
    /// `scale/ring100k/probe-dfs`.
    ScaleRing,
    /// `scale/ring100k-dyn/probe-dfs`.
    ScaleRingDyn,
}

/// The dynamic-ring overhead cap: the `ring100k-dyn` trial must finish
/// within this factor of the static `ring100k` trial *measured in the same
/// gate run* (wall-clock noise cancels in the ratio), bounding the cost of
/// the edge-liveness overlay plus the adversary's per-round edge flips.
pub const DYN_RING_FACTOR: f64 = 2.0;

impl Workload {
    /// All gated workloads, in report order.
    pub fn all() -> [Workload; 6] {
        [
            Workload::ProbeStar,
            Workload::ScanComplete,
            Workload::ScaleLine,
            Workload::ScaleLineAsync,
            Workload::ScaleRing,
            Workload::ScaleRingDyn,
        ]
    }

    /// Stable id (matches the corresponding bench ids where one exists).
    pub fn id(&self) -> &'static str {
        match self {
            Workload::ProbeStar => "probe_star/doubling_probe/128",
            Workload::ScanComplete => "sync_rooted/complete/ks-dfs",
            Workload::ScaleLine => "scale/line100k/probe-dfs",
            Workload::ScaleLineAsync => "scale/line100k-async-lag4/probe-dfs",
            Workload::ScaleRing => "scale/ring100k/probe-dfs",
            Workload::ScaleRingDyn => "scale/ring100k-dyn/probe-dfs",
        }
    }

    /// Execute the workload once, returning a value to keep the optimizer
    /// honest.
    fn run_once(&self, registry: &Registry) -> u64 {
        match self {
            Workload::ProbeStar => {
                let k = 128;
                let g = generators::star(k);
                let mut world = World::new_rooted(g, k, NodeId(0));
                let mut proto = ProbeDfs::new(&world);
                let out = SyncRunner::new(RunConfig::default())
                    .run(&mut world, &mut proto)
                    .expect("probe star terminates");
                out.rounds
            }
            Workload::ScanComplete => {
                let spec = ScenarioSpec::new(GraphFamily::Complete, 96, "ks-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scan complete terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleLine => {
                let spec = ScenarioSpec::new(GraphFamily::Line, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scale line terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleLineAsync => {
                let spec = ScenarioSpec::new(GraphFamily::Line, 100_000, "probe-dfs")
                    .with_schedule(Schedule::AsyncLagging {
                        max_lag: 4,
                        seed: 0,
                    });
                let report = spec.run(registry, 7).expect("scale async line terminates");
                assert!(report.dispersed);
                report.outcome.epochs
            }
            Workload::ScaleRing => {
                let spec = ScenarioSpec::new(GraphFamily::Ring, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scale ring terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleRingDyn => {
                let spec = ScenarioSpec::new(GraphFamily::Ring, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync)
                    .with_dynamic_ring(1);
                let report = spec
                    .run(registry, 7)
                    .expect("scale dynamic ring terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
        }
    }

    /// Median wall-clock nanoseconds over `samples` runs (after one warmup).
    pub fn measure_ns(&self, samples: usize) -> f64 {
        let registry = Registry::builtin();
        std::hint::black_box(self.run_once(&registry));
        let mut times: Vec<f64> = (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(self.run_once(&registry));
                start.elapsed().as_nanos() as f64
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    }

    /// Heap allocations for one run of the workload, or `None` when the
    /// crate was built without the `count-allocs` counting allocator.
    /// Workloads are deterministic, so unlike wall-clock this needs no
    /// multi-sample median — but it does need the warmup (lazy statics,
    /// thread-local growth) that `measure_ns` also performs.
    pub fn measure_allocs(&self) -> Option<u64> {
        #[cfg(feature = "count-allocs")]
        {
            let registry = Registry::builtin();
            std::hint::black_box(self.run_once(&registry));
            let before = crate::alloc_counter::current();
            std::hint::black_box(self.run_once(&registry));
            Some(crate::alloc_counter::current() - before)
        }
        #[cfg(not(feature = "count-allocs"))]
        None
    }
}

/// Measure every gated workload and render the baseline JSON document.
/// Built with `count-allocs`, the document also carries a
/// `workloads_allocs` section (allocations per run); without the feature
/// the section is omitted and `check` skips the allocation comparison.
pub fn record(samples: usize) -> String {
    let entries: Vec<(String, Json)> = Workload::all()
        .iter()
        .map(|w| {
            let ns = w.measure_ns(samples);
            eprintln!("recorded {}: {:.3} ms", w.id(), ns / 1e6);
            (w.id().to_string(), Json::Num(ns))
        })
        .collect();
    let mut fields = vec![
        ("tolerance".into(), Json::Num(0.25)),
        ("samples".into(), Json::Num(samples as f64)),
        ("workloads_ns".into(), Json::Obj(entries)),
    ];
    let allocs: Vec<(String, Json)> = Workload::all()
        .iter()
        .filter_map(|w| {
            w.measure_allocs().map(|allocs| {
                eprintln!("recorded {}: {} alloc(s)", w.id(), allocs);
                (w.id().to_string(), Json::Num(allocs as f64))
            })
        })
        .collect();
    if !allocs.is_empty() {
        fields.push(("workloads_allocs".into(), Json::Obj(allocs)));
    }
    Json::Obj(fields).to_string_compact()
}

/// A single gate comparison result.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Workload id.
    pub id: &'static str,
    /// Baseline nanoseconds.
    pub baseline_ns: f64,
    /// Measured nanoseconds.
    pub measured_ns: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Allocation comparison — `(baseline, measured, ratio)` — present
    /// only when both the baseline and this build carry allocation counts.
    pub allocs: Option<(f64, u64, f64)>,
    /// Whether the wall-clock or allocation ratio exceeds `1 + tolerance`.
    pub regressed: bool,
}

/// Compare fresh measurements against a recorded baseline document.
/// Returns the per-workload rows; any `regressed` row means the gate
/// fails. Allocation counts gate exactly like wall-clock, but only when
/// both sides have them: a baseline recorded without `count-allocs` (or a
/// check built without it) silently skips that comparison rather than
/// failing half the matrix.
pub fn check(baseline_json: &str, samples: usize) -> Result<Vec<GateRow>, String> {
    let doc = Json::parse(baseline_json).map_err(|e| format!("baseline parse error: {e}"))?;
    let tolerance = doc.get("tolerance").and_then(Json::as_f64).unwrap_or(0.25);
    let workloads = doc
        .get("workloads_ns")
        .ok_or("baseline missing workloads_ns")?;
    let baseline_allocs = doc.get("workloads_allocs");
    let mut rows = Vec::new();
    for w in Workload::all() {
        let baseline_ns = workloads
            .get(w.id())
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline missing workload '{}'", w.id()))?;
        let measured_ns = w.measure_ns(samples);
        let ratio = measured_ns / baseline_ns;
        let allocs = match (
            baseline_allocs
                .and_then(|a| a.get(w.id()))
                .and_then(Json::as_f64),
            w.measure_allocs(),
        ) {
            (Some(base), Some(measured)) if base > 0.0 => {
                Some((base, measured, measured as f64 / base))
            }
            _ => None,
        };
        let alloc_regressed = allocs.is_some_and(|(_, _, r)| r > 1.0 + tolerance);
        rows.push(GateRow {
            id: w.id(),
            baseline_ns,
            measured_ns,
            ratio,
            allocs,
            regressed: ratio > 1.0 + tolerance || alloc_regressed,
        });
    }
    apply_dyn_ring_coupling(&mut rows);
    Ok(rows)
}

/// Enforce the [`DYN_RING_FACTOR`] bound between the two ring workloads of
/// one gate run: the dynamic trial regresses when it exceeds the factor
/// times the static trial's *measured* time, regardless of the absolute
/// baseline. Pure arithmetic over the rows, so it is testable without
/// running the 10^5-agent workloads.
fn apply_dyn_ring_coupling(rows: &mut [GateRow]) {
    let static_ns = rows
        .iter()
        .find(|r| r.id == Workload::ScaleRing.id())
        .map(|r| r.measured_ns);
    if let Some(static_ns) = static_ns {
        if let Some(dyn_row) = rows
            .iter_mut()
            .find(|r| r.id == Workload::ScaleRingDyn.id())
        {
            if dyn_row.measured_ns > DYN_RING_FACTOR * static_ns {
                dyn_row.regressed = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_and_ids_are_stable() {
        let registry = Registry::builtin();
        assert!(Workload::ProbeStar.run_once(&registry) > 0);
        assert!(Workload::ScanComplete.run_once(&registry) > 0);
        let ids: Vec<_> = Workload::all().iter().map(|w| w.id()).collect();
        assert_eq!(
            ids,
            vec![
                "probe_star/doubling_probe/128",
                "sync_rooted/complete/ks-dfs",
                "scale/line100k/probe-dfs",
                "scale/line100k-async-lag4/probe-dfs",
                "scale/ring100k/probe-dfs",
                "scale/ring100k-dyn/probe-dfs"
            ]
        );
    }

    #[test]
    fn dyn_ring_coupling_flags_slow_dynamic_rings() {
        let row = |id: &'static str, measured_ns: f64| GateRow {
            id,
            baseline_ns: 1.0,
            measured_ns,
            ratio: 1.0,
            allocs: None,
            regressed: false,
        };
        // Within 2× of the static ring measured in the same run: fine.
        let mut rows = vec![
            row(Workload::ScaleRing.id(), 100.0),
            row(Workload::ScaleRingDyn.id(), 199.0),
        ];
        apply_dyn_ring_coupling(&mut rows);
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        // Beyond 2×: the dynamic row regresses even with a happy baseline.
        let mut rows = vec![
            row(Workload::ScaleRing.id(), 100.0),
            row(Workload::ScaleRingDyn.id(), 201.0),
        ];
        apply_dyn_ring_coupling(&mut rows);
        assert!(!rows[0].regressed);
        assert!(rows[1].regressed, "{rows:?}");
    }

    #[test]
    fn record_then_check_round_trips_and_passes_against_itself() {
        // A baseline recorded with tiny sampling still parses and a check
        // against a generously inflated copy of itself passes, while a
        // deflated copy fails — the gate's arithmetic, without the noise.
        let doc = Json::Obj(vec![
            ("tolerance".into(), Json::Num(0.25)),
            (
                "workloads_ns".into(),
                Json::Obj(
                    Workload::all()
                        .iter()
                        .map(|w| (w.id().to_string(), Json::Num(1e12)))
                        .collect(),
                ),
            ),
        ]);
        let rows = check(&doc.to_string_compact(), 1).unwrap();
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        let tiny = Json::Obj(vec![
            ("tolerance".into(), Json::Num(0.25)),
            (
                "workloads_ns".into(),
                Json::Obj(
                    Workload::all()
                        .iter()
                        .map(|w| (w.id().to_string(), Json::Num(1.0)))
                        .collect(),
                ),
            ),
        ]);
        let rows = check(&tiny.to_string_compact(), 1).unwrap();
        assert!(rows.iter().all(|r| r.regressed), "{rows:?}");
        assert!(check("{}", 1).is_err());
    }
}
