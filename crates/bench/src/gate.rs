//! The bench regression gate: a checked-in wall-clock baseline
//! (`BENCH_baseline.json`) for the hot paths, and a checker that fails CI
//! when any of them regresses by more than the tolerance (default 25%).
//!
//! The gated workloads mirror the ids of the `disp-bench` benches:
//!
//! * `probe_star/doubling_probe/128` — `ProbeDfs` on a rooted star,
//!   the doubling-probe micro-benchmark.
//! * `sync_rooted/complete/ks-dfs` — the scan baseline on the complete
//!   graph through the scenario `run_custom` path.
//! * `scale/line100k/probe-dfs` — the flat-state hot loop itself: a rooted
//!   `k = 10^5` line through the implicit-topology scenario path (cohort
//!   rides + worklist; would take hours, not milliseconds, without them).
//! * `scale/line100k-async-lag4/probe-dfs` — the ASYNC hot path: the same
//!   rooted `k = 10^5` line under the event-driven lagging adversary
//!   (timer wheel + bulk epoch crediting; O(k)-per-step schedule
//!   generation would put this in minutes).
//! * `scale/ring100k/probe-dfs` — the static ring reference for the pair
//!   below.
//! * `scale/ring100k-dyn/probe-dfs` — the same ring under the dynamic
//!   adversary (one edge down per round). Besides the absolute baseline,
//!   the gate enforces a *relative* bound: the dynamic trial must finish
//!   within [`DYN_RING_FACTOR`]× of the static trial measured in the same
//!   run, which caps the cost of the edge-liveness overlay.
//! * `micro/line256x512/probe-dfs` — 512 tiny trials (rooted `k = 256`
//!   line) through the batched campaign engine with a per-batch
//!   `WorldPool`. This is the per-trial-overhead gate: wall clock covers
//!   setup-dominated workloads, and the allocation axis is divided by the
//!   trial count so per-trial churn is visible rather than drowned in a
//!   constant ×512.
//!
//! Measurements are minimums of several full runs — on shared machines
//! the noise is one-sided, so the fastest sample estimates intrinsic cost
//! — and the gate still applies a generous relative threshold on top.

use disp_analysis::json::Json;
use disp_campaign::grid::CampaignSpec;
use disp_campaign::run::run_campaign_batched;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_core::ProbeDfs;
use disp_graph::generators::{self, GraphFamily};
use disp_graph::NodeId;
use disp_sim::{RunConfig, SyncRunner, World};
use std::sync::atomic::AtomicBool;
use std::time::Instant;

/// One gated workload: a stable id and a closure-free runner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `probe_star/doubling_probe/128`.
    ProbeStar,
    /// `sync_rooted/complete/ks-dfs`.
    ScanComplete,
    /// `scale/line100k/probe-dfs`.
    ScaleLine,
    /// `scale/line100k-async-lag4/probe-dfs`.
    ScaleLineAsync,
    /// `scale/ring100k/probe-dfs`.
    ScaleRing,
    /// `scale/ring100k-dyn/probe-dfs`.
    ScaleRingDyn,
    /// `micro/line256x512/probe-dfs`.
    MicroBatch,
}

/// Trials per [`Workload::MicroBatch`] run.
pub const MICRO_TRIALS: usize = 512;

/// Batch size the micro workload hands to the batched campaign engine.
pub const MICRO_BATCH: usize = 32;

/// The micro workload's campaign: [`MICRO_TRIALS`] repetitions of a small
/// rooted `line/k=256` SYNC trial, executed through the *batched*
/// micro-trial engine path ([`run_campaign_batched`]) so each batch of
/// [`MICRO_BATCH`] trials shares one warm world-allocation pool. This is
/// the gate's per-trial-overhead probe: the trials are small enough that
/// setup (graph + world construction, protocol init) is a real fraction of
/// the cost. Shared with the `bench-gate scaling` subcommand, which runs
/// the same campaign across thread counts.
pub fn micro_campaign_spec() -> CampaignSpec {
    CampaignSpec::custom(
        vec![ScenarioSpec::new(GraphFamily::Line, 256, "probe-dfs").with_schedule(Schedule::Sync)],
        MICRO_TRIALS,
        7,
    )
}

/// The dynamic-ring overhead cap: the `ring100k-dyn` trial must finish
/// within this factor of the static `ring100k` trial *measured in the same
/// gate run* (wall-clock noise cancels in the ratio), bounding the cost of
/// the edge-liveness overlay plus the adversary's per-round edge flips.
///
/// Recalibrated from 2.0 when the data-oriented hot-core work cut the
/// static ring's per-round cost by ~25%: the dynamic trial's surplus is
/// mostly *protocol* rounds the cut edges force (waiting out a dead edge),
/// which no overlay optimization removes, so a leaner shared round loop
/// honestly raises the ratio. Measured ~2.2× on the minimum statistic.
pub const DYN_RING_FACTOR: f64 = 2.6;

/// The flight-recorder overhead cap: `scale/line100k` run with a timeline
/// recorder attached must finish within this factor of the same trial
/// without one, *measured in the same gate run* (the ratio cancels
/// wall-clock noise, like the dynamic-ring coupling above). The recorder
/// samples one O(classes) point per round boundary into a fixed budget, so
/// its cost is a constant per round against a Θ(k)-ish round body — the
/// acceptance bound is <5% and in practice the ratio sits at ~1.0.
pub const TIMELINE_FACTOR: f64 = 1.05;

/// Measure [`Workload::ScaleLine`] with and without the flight recorder:
/// `samples` interleaved (plain, recorded) pairs after one warmup of each
/// variant, reporting the pair with the smallest recorded/plain ratio as
/// `(plain_ns, recorded_ns, ratio)`.
///
/// The statistic is the minimum *per-pair* ratio, not the ratio of
/// per-variant minimums: adjacent runs share the host's noise regime (a
/// preemption burst outlasts one ~150 ms pair), so within-pair ratios are
/// far tighter than cross-run minimums on a shared box — the quietest pair
/// estimates the intrinsic overhead, while a real regression shifts every
/// pair and still fails the bound.
pub fn timeline_overhead(samples: usize) -> (f64, f64, f64) {
    let registry = Registry::builtin();
    let spec =
        ScenarioSpec::new(GraphFamily::Line, 100_000, "probe-dfs").with_schedule(Schedule::Sync);
    let plain = |spec: &ScenarioSpec| {
        let report = spec.run(&registry, 7).expect("scale line terminates");
        assert!(report.dispersed);
        report.outcome.rounds
    };
    let recorded = |spec: &ScenarioSpec| {
        let (report, timeline) = spec
            .run_with_timeline(&registry, 7, disp_sim::DEFAULT_TIMELINE_BUDGET)
            .expect("recorded scale line terminates");
        assert!(report.dispersed);
        report.outcome.rounds + timeline.points.len() as u64
    };
    std::hint::black_box(plain(&spec));
    std::hint::black_box(recorded(&spec));
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        std::hint::black_box(plain(&spec));
        let plain_ns = start.elapsed().as_nanos() as f64;
        let start = Instant::now();
        std::hint::black_box(recorded(&spec));
        let recorded_ns = start.elapsed().as_nanos() as f64;
        let ratio = recorded_ns / plain_ns;
        if ratio < best.2 {
            best = (plain_ns, recorded_ns, ratio);
        }
    }
    best
}

impl Workload {
    /// All gated workloads, in report order.
    pub fn all() -> [Workload; 7] {
        [
            Workload::ProbeStar,
            Workload::ScanComplete,
            Workload::ScaleLine,
            Workload::ScaleLineAsync,
            Workload::ScaleRing,
            Workload::ScaleRingDyn,
            Workload::MicroBatch,
        ]
    }

    /// Stable id (matches the corresponding bench ids where one exists).
    pub fn id(&self) -> &'static str {
        match self {
            Workload::ProbeStar => "probe_star/doubling_probe/128",
            Workload::ScanComplete => "sync_rooted/complete/ks-dfs",
            Workload::ScaleLine => "scale/line100k/probe-dfs",
            Workload::ScaleLineAsync => "scale/line100k-async-lag4/probe-dfs",
            Workload::ScaleRing => "scale/ring100k/probe-dfs",
            Workload::ScaleRingDyn => "scale/ring100k-dyn/probe-dfs",
            Workload::MicroBatch => "micro/line256x512/probe-dfs",
        }
    }

    /// How many trials one `run_once` executes. Allocation counts are
    /// reported *per trial* — a 512-trial workload measured per run would
    /// drown per-trial churn in a constant ×512, and the whole point of
    /// the micro workload is catching per-trial setup regressions.
    pub fn trials_per_run(&self) -> u64 {
        match self {
            Workload::MicroBatch => MICRO_TRIALS as u64,
            _ => 1,
        }
    }

    /// Execute the workload once, returning a value to keep the optimizer
    /// honest.
    fn run_once(&self, registry: &Registry) -> u64 {
        match self {
            Workload::ProbeStar => {
                let k = 128;
                let g = generators::star(k);
                let mut world = World::new_rooted(g, k, NodeId(0));
                let mut proto = ProbeDfs::new(&world);
                let out = SyncRunner::new(RunConfig::default())
                    .run(&mut world, &mut proto)
                    .expect("probe star terminates");
                out.rounds
            }
            Workload::ScanComplete => {
                let spec = ScenarioSpec::new(GraphFamily::Complete, 96, "ks-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scan complete terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleLine => {
                let spec = ScenarioSpec::new(GraphFamily::Line, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scale line terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleLineAsync => {
                let spec = ScenarioSpec::new(GraphFamily::Line, 100_000, "probe-dfs")
                    .with_schedule(Schedule::AsyncLagging {
                        max_lag: 4,
                        seed: 0,
                    });
                let report = spec.run(registry, 7).expect("scale async line terminates");
                assert!(report.dispersed);
                report.outcome.epochs
            }
            Workload::ScaleRing => {
                let spec = ScenarioSpec::new(GraphFamily::Ring, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync);
                let report = spec.run(registry, 7).expect("scale ring terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::ScaleRingDyn => {
                let spec = ScenarioSpec::new(GraphFamily::Ring, 100_000, "probe-dfs")
                    .with_schedule(Schedule::Sync)
                    .with_dynamic_ring(1);
                let report = spec
                    .run(registry, 7)
                    .expect("scale dynamic ring terminates");
                assert!(report.dispersed);
                report.outcome.rounds
            }
            Workload::MicroBatch => {
                let spec = micro_campaign_spec();
                let (records, _) = run_campaign_batched(
                    &spec,
                    None,
                    1,
                    MICRO_BATCH,
                    registry,
                    &AtomicBool::new(false),
                    None,
                )
                .expect("micro campaign runs");
                assert_eq!(records.len(), MICRO_TRIALS);
                assert!(records.iter().all(|r| r.dispersed));
                records.iter().map(|r| r.outcome.rounds).sum()
            }
        }
    }

    /// Minimum wall-clock nanoseconds over `samples` runs (after one
    /// warmup). The minimum, not the median: on shared CI hardware the
    /// noise is one-sided (preemption, frequency dips, cache pollution
    /// only ever *add* time), so the fastest sample is the best estimate
    /// of the code's intrinsic cost and the median of a millisecond-scale
    /// workload can read 2× high on a busy host. A genuine regression
    /// shifts the floor itself, which the gate still catches.
    pub fn measure_ns(&self, samples: usize) -> f64 {
        let registry = Registry::builtin();
        std::hint::black_box(self.run_once(&registry));
        (0..samples.max(1))
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(self.run_once(&registry));
                start.elapsed().as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Heap allocations **per trial** of the workload, or `None` when the
    /// crate was built without the `count-allocs` counting allocator.
    /// Workloads are deterministic, so unlike wall-clock this needs no
    /// multi-sample minimum — but it does need the warmup (lazy statics,
    /// thread-local growth) that `measure_ns` also performs. For the
    /// single-trial workloads per-trial equals per-run; the micro workload
    /// divides by [`Workload::trials_per_run`].
    pub fn measure_allocs(&self) -> Option<u64> {
        #[cfg(feature = "count-allocs")]
        {
            let registry = Registry::builtin();
            std::hint::black_box(self.run_once(&registry));
            let before = crate::alloc_counter::current();
            std::hint::black_box(self.run_once(&registry));
            Some((crate::alloc_counter::current() - before) / self.trials_per_run())
        }
        #[cfg(not(feature = "count-allocs"))]
        None
    }
}

/// Measure every gated workload and render the baseline JSON document.
/// Built with `count-allocs`, the document also carries a
/// `workloads_allocs` section (allocations per run); without the feature
/// the section is omitted and `check` skips the allocation comparison.
pub fn record(samples: usize) -> String {
    let entries: Vec<(String, Json)> = Workload::all()
        .iter()
        .map(|w| {
            let ns = w.measure_ns(samples);
            eprintln!("recorded {}: {:.3} ms", w.id(), ns / 1e6);
            (w.id().to_string(), Json::Num(ns))
        })
        .collect();
    let mut fields = vec![
        ("tolerance".into(), Json::Num(0.25)),
        ("samples".into(), Json::Num(samples as f64)),
        ("workloads_ns".into(), Json::Obj(entries)),
    ];
    let allocs: Vec<(String, Json)> = Workload::all()
        .iter()
        .filter_map(|w| {
            w.measure_allocs().map(|allocs| {
                eprintln!("recorded {}: {} alloc(s)", w.id(), allocs);
                (w.id().to_string(), Json::Num(allocs as f64))
            })
        })
        .collect();
    if !allocs.is_empty() {
        fields.push(("workloads_allocs".into(), Json::Obj(allocs)));
    }
    Json::Obj(fields).to_string_compact()
}

/// A single gate comparison result.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Workload id.
    pub id: &'static str,
    /// Baseline nanoseconds.
    pub baseline_ns: f64,
    /// Measured nanoseconds.
    pub measured_ns: f64,
    /// `measured / baseline`.
    pub ratio: f64,
    /// Allocation comparison — `(baseline, measured, ratio)` — present
    /// only when both the baseline and this build carry allocation counts.
    pub allocs: Option<(f64, u64, f64)>,
    /// Whether the wall-clock or allocation ratio exceeds `1 + tolerance`.
    pub regressed: bool,
}

/// Compare fresh measurements against a recorded baseline document.
/// Returns the per-workload rows; any `regressed` row means the gate
/// fails. Allocation counts gate exactly like wall-clock, but only when
/// both sides have them: a baseline recorded without `count-allocs` (or a
/// check built without it) silently skips that comparison rather than
/// failing half the matrix.
pub fn check(baseline_json: &str, samples: usize) -> Result<Vec<GateRow>, String> {
    let doc = Json::parse(baseline_json).map_err(|e| format!("baseline parse error: {e}"))?;
    let tolerance = doc.get("tolerance").and_then(Json::as_f64).unwrap_or(0.25);
    let workloads = doc
        .get("workloads_ns")
        .ok_or("baseline missing workloads_ns")?;
    let baseline_allocs = doc.get("workloads_allocs");
    let mut rows = Vec::new();
    for w in Workload::all() {
        let baseline_ns = workloads
            .get(w.id())
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("baseline missing workload '{}'", w.id()))?;
        let measured_ns = w.measure_ns(samples);
        let ratio = measured_ns / baseline_ns;
        let allocs = match (
            baseline_allocs
                .and_then(|a| a.get(w.id()))
                .and_then(Json::as_f64),
            w.measure_allocs(),
        ) {
            (Some(base), Some(measured)) if base > 0.0 => {
                Some((base, measured, measured as f64 / base))
            }
            _ => None,
        };
        let alloc_regressed = allocs.is_some_and(|(_, _, r)| r > 1.0 + tolerance);
        rows.push(GateRow {
            id: w.id(),
            baseline_ns,
            measured_ns,
            ratio,
            allocs,
            regressed: ratio > 1.0 + tolerance || alloc_regressed,
        });
    }
    apply_dyn_ring_coupling(&mut rows);
    Ok(rows)
}

/// Enforce the [`DYN_RING_FACTOR`] bound between the two ring workloads of
/// one gate run: the dynamic trial regresses when it exceeds the factor
/// times the static trial's *measured* time, regardless of the absolute
/// baseline. Pure arithmetic over the rows, so it is testable without
/// running the 10^5-agent workloads.
fn apply_dyn_ring_coupling(rows: &mut [GateRow]) {
    let static_ns = rows
        .iter()
        .find(|r| r.id == Workload::ScaleRing.id())
        .map(|r| r.measured_ns);
    if let Some(static_ns) = static_ns {
        if let Some(dyn_row) = rows
            .iter_mut()
            .find(|r| r.id == Workload::ScaleRingDyn.id())
        {
            if dyn_row.measured_ns > DYN_RING_FACTOR * static_ns {
                dyn_row.regressed = true;
            }
        }
    }
}

/// One row of the `bench-gate scaling` report: the micro campaign run at
/// one thread count.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Worker thread count handed to the batched campaign engine.
    pub threads: usize,
    /// Wall clock for the full [`MICRO_TRIALS`]-trial campaign.
    pub wall_ns: u64,
    /// Wall clock of the first (reference) row divided by this row's.
    pub speedup: f64,
}

/// Run the micro campaign at each of `thread_counts` through the batched
/// engine and return the wall-clock/speedup table. Every run's *sorted*
/// trial-record JSON lines must be byte-identical to the first run's —
/// that determinism check holds unconditionally and an `Err` is returned
/// on any divergence. Whether to also gate on the speedups is the
/// caller's decision: a single-core box cannot demonstrate speedup but
/// can still prove thread-count independence.
pub fn scaling(thread_counts: &[usize]) -> Result<Vec<ScalingRow>, String> {
    let registry = Registry::builtin();
    let spec = micro_campaign_spec();
    let mut reference: Option<Vec<String>> = None;
    let mut rows: Vec<ScalingRow> = Vec::new();
    for &threads in thread_counts {
        let start = Instant::now();
        let (records, _) = run_campaign_batched(
            &spec,
            None,
            threads,
            MICRO_BATCH,
            &registry,
            &AtomicBool::new(false),
            None,
        )?;
        let wall_ns = start.elapsed().as_nanos() as u64;
        let mut lines: Vec<String> = records
            .iter()
            .map(disp_analysis::TrialRecord::to_json_line)
            .collect();
        lines.sort();
        match &reference {
            None => reference = Some(lines),
            Some(expected) if *expected != lines => {
                return Err(format!(
                    "trial records at threads={threads} differ from threads={}: \
                     the batched engine must be byte-identical across thread counts",
                    thread_counts[0]
                ));
            }
            Some(_) => {}
        }
        let base_ns = rows.first().map_or(wall_ns, |r| r.wall_ns);
        rows.push(ScalingRow {
            threads,
            wall_ns,
            speedup: base_ns as f64 / wall_ns as f64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_run_and_ids_are_stable() {
        let registry = Registry::builtin();
        assert!(Workload::ProbeStar.run_once(&registry) > 0);
        assert!(Workload::ScanComplete.run_once(&registry) > 0);
        let ids: Vec<_> = Workload::all().iter().map(|w| w.id()).collect();
        assert_eq!(
            ids,
            vec![
                "probe_star/doubling_probe/128",
                "sync_rooted/complete/ks-dfs",
                "scale/line100k/probe-dfs",
                "scale/line100k-async-lag4/probe-dfs",
                "scale/ring100k/probe-dfs",
                "scale/ring100k-dyn/probe-dfs",
                "micro/line256x512/probe-dfs"
            ]
        );
    }

    #[test]
    fn micro_workload_runs_all_trials_and_allocs_are_per_trial() {
        let registry = Registry::builtin();
        assert!(Workload::MicroBatch.run_once(&registry) > 0);
        assert_eq!(Workload::MicroBatch.trials_per_run(), MICRO_TRIALS as u64);
        assert_eq!(Workload::ScaleLine.trials_per_run(), 1);
    }

    #[test]
    fn dyn_ring_coupling_flags_slow_dynamic_rings() {
        let row = |id: &'static str, measured_ns: f64| GateRow {
            id,
            baseline_ns: 1.0,
            measured_ns,
            ratio: 1.0,
            allocs: None,
            regressed: false,
        };
        // Within the factor of the static ring measured in the same run:
        // fine.
        let mut rows = vec![
            row(Workload::ScaleRing.id(), 100.0),
            row(Workload::ScaleRingDyn.id(), DYN_RING_FACTOR * 100.0 - 1.0),
        ];
        apply_dyn_ring_coupling(&mut rows);
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        // Beyond it: the dynamic row regresses even with a happy baseline.
        let mut rows = vec![
            row(Workload::ScaleRing.id(), 100.0),
            row(Workload::ScaleRingDyn.id(), DYN_RING_FACTOR * 100.0 + 1.0),
        ];
        apply_dyn_ring_coupling(&mut rows);
        assert!(!rows[0].regressed);
        assert!(rows[1].regressed, "{rows:?}");
    }

    #[test]
    fn record_then_check_round_trips_and_passes_against_itself() {
        // A baseline recorded with tiny sampling still parses and a check
        // against a generously inflated copy of itself passes, while a
        // deflated copy fails — the gate's arithmetic, without the noise.
        let doc = Json::Obj(vec![
            ("tolerance".into(), Json::Num(0.25)),
            (
                "workloads_ns".into(),
                Json::Obj(
                    Workload::all()
                        .iter()
                        .map(|w| (w.id().to_string(), Json::Num(1e12)))
                        .collect(),
                ),
            ),
        ]);
        let rows = check(&doc.to_string_compact(), 1).unwrap();
        assert!(rows.iter().all(|r| !r.regressed), "{rows:?}");
        let tiny = Json::Obj(vec![
            ("tolerance".into(), Json::Num(0.25)),
            (
                "workloads_ns".into(),
                Json::Obj(
                    Workload::all()
                        .iter()
                        .map(|w| (w.id().to_string(), Json::Num(1.0)))
                        .collect(),
                ),
            ),
        ]);
        let rows = check(&tiny.to_string_compact(), 1).unwrap();
        assert!(rows.iter().all(|r| r.regressed), "{rows:?}");
        assert!(check("{}", 1).is_err());
    }
}
