//! Emit the figure-equivalent scaling series as CSV: time vs `k` per graph
//! family, algorithm and schedule. The paper itself has only illustrative
//! figures; these series are what an experimental evaluation of its claims
//! would plot (see `EXPERIMENTS.md`).
//!
//! Usage:
//! ```text
//! cargo run --release -p disp-bench --bin figures -- [--full] [--out DIR]
//! ```

use disp_analysis::experiment::ExperimentSpec;
use disp_analysis::report::csv_table;
use disp_bench::{full_ks, measurement_header, measurement_row, quick_ks, section_points};
use disp_core::runner::{Algorithm, Schedule};
use disp_graph::generators::GraphFamily;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let ks = if full { full_ks() } else { quick_ks() };
    let families = if full {
        GraphFamily::all()
    } else {
        GraphFamily::quick()
    };
    let reps = if full { 3 } else { 1 };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);

    let sections: Vec<(&str, Vec<Algorithm>, Schedule)> = vec![
        (
            "fig_sync_rooted",
            vec![Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker],
            Schedule::Sync,
        ),
        (
            "fig_async_rooted",
            vec![Algorithm::KsDfs, Algorithm::ProbeDfs],
            Schedule::AsyncRandom { prob: 0.7, seed: 11 },
        ),
        (
            "fig_async_lagging",
            vec![Algorithm::KsDfs, Algorithm::ProbeDfs],
            Schedule::AsyncLagging { max_lag: 4, seed: 3 },
        ),
    ];

    for (name, algorithms, schedule) in sections {
        let points = section_points(&families, &ks, &algorithms, schedule, reps);
        let results = ExperimentSpec { points }.run_parallel(threads);
        let rows: Vec<Vec<String>> = results.iter().map(measurement_row).collect();
        let csv = csv_table(&measurement_header(), &rows);
        let path = out_dir.join(format!("{name}.csv"));
        std::fs::write(&path, &csv).expect("write CSV");
        println!("wrote {} ({} rows)", path.display(), rows.len());
    }
    println!("done; plot time vs k per (family, algorithm) series.");
}
