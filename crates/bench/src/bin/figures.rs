//! Emit the figure-equivalent scaling series as CSV: time vs `k` per graph
//! family, algorithm and schedule. The paper itself has only illustrative
//! figures; these series are what an experimental evaluation of its claims
//! would plot (see `EXPERIMENTS.md`).
//!
//! A thin description over the `disp-campaign` engine (see `table1.rs`).
//!
//! Usage:
//! ```text
//! cargo run --release -p disp-bench --bin figures -- \
//!     [--full] [--out DIR] [--threads N] [--seed S]
//! ```

use disp_bench::cli;
use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::report::{render_section_csv, section_measurements};
use disp_campaign::run::run_campaign;
use disp_core::scenario::Registry;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--full") {
        Mode::Full
    } else {
        Mode::Quick
    };
    let out_dir = cli::flag_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    let seed = cli::seed(&args);
    let threads = cli::threads(&args);
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let spec = CampaignSpec::figures(mode, seed);
    let (records, summary) =
        run_campaign(&spec, None, threads, &Registry::builtin()).expect("campaign run");
    eprintln!(
        "({} trials in {:.2?}, {} steals)",
        summary.executed, summary.wall, summary.stats.steals
    );
    for (section, measurements) in section_measurements(&spec, records) {
        let csv = render_section_csv(&measurements);
        let path = out_dir.join(format!("{}.csv", section.name));
        std::fs::write(&path, &csv).expect("write CSV");
        println!("wrote {} ({} rows)", path.display(), measurements.len());
    }
    println!("done; plot time vs k per (family, algorithm) series.");
}
