//! Ablation studies for the design choices the paper motivates:
//!
//! * **seeker-pool size** — how capping the number of parallel seekers (the
//!   paper dedicates ceil(k/3) agents to this) changes probe iterations and
//!   total rounds (`Sync_Probe`, Algorithm 2);
//! * **neighbor wait length** — the paper's 6-round wait at probed neighbors
//!   versus shorter waits (relevant once tree nodes can be empty and are
//!   covered by oscillating settlers).
//!
//! The configuration sweeps run on the `disp-campaign` work-stealing engine
//! (results stay in deterministic sweep order regardless of thread count).
//!
//! Usage:
//! ```text
//! cargo run --release -p disp-bench --bin ablations -- \
//!     [--study <seeker-fraction|wait-length|all>] [--threads N]
//! ```

use disp_analysis::report::markdown_table;
use disp_bench::cli;
use disp_campaign::engine::parallel_map;
use disp_core::rooted_sync::{RootedSyncDisp, SyncConfig};
use disp_core::verify::check_dispersion;
use disp_graph::generators;
use disp_graph::NodeId;
use disp_sim::{RunConfig, SyncRunner, World};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let study = cli::flag_value(&args, "--study").unwrap_or_else(|| "all".to_string());
    let threads = cli::threads(&args);

    if study == "seeker-fraction" || study == "all" {
        seeker_fraction_study(threads);
    }
    if study == "wait-length" || study == "all" {
        wait_length_study(threads);
    }
}

fn run_once(k: usize, config: SyncConfig) -> (u64, u32) {
    let g = generators::star(k);
    let mut world = World::new_rooted(g, k, NodeId(0));
    let mut proto = RootedSyncDisp::with_config(&world, config);
    let out = SyncRunner::new(RunConfig::default())
        .run(&mut world, &mut proto)
        .expect("must terminate");
    check_dispersion(&world).expect("must disperse");
    (out.rounds, proto.max_probe_iterations())
}

fn seeker_fraction_study(threads: usize) {
    println!("## Ablation: seeker-pool cap (star graph, k = 96)\n");
    let k = 96;
    let caps = vec![Some(k / 12), Some(k / 6), Some(k / 3), Some(k / 2), None];
    let (rows, _) = parallel_map(
        caps,
        threads,
        |_, &cap| {
            let config = SyncConfig {
                wait_rounds: 1,
                max_probers: cap,
            };
            let (rounds, iters) = run_once(k, config);
            vec![
                cap.map(|c| c.to_string()).unwrap_or_else(|| "all".into()),
                rounds.to_string(),
                iters.to_string(),
            ]
        },
        |_, _| {},
    );
    println!(
        "{}",
        markdown_table(&["seeker cap", "rounds", "max probe iterations"], &rows)
    );
    println!("The paper reserves ceil(k/3) seekers: enough to keep probe iterations O(1).\n");
}

fn wait_length_study(threads: usize) {
    println!("## Ablation: neighbor wait length (random tree, k = 96)\n");
    let k = 96;
    let waits: Vec<u32> = vec![0, 1, 2, 4, 6, 8];
    let (rows, _) = parallel_map(
        waits,
        threads,
        |_, &wait| {
            let g = generators::random_tree(k, 7);
            let mut world = World::new_rooted(g, k, NodeId(0));
            let mut proto = RootedSyncDisp::with_config(
                &world,
                SyncConfig {
                    wait_rounds: wait,
                    max_probers: None,
                },
            );
            let out = SyncRunner::new(RunConfig::default())
                .run(&mut world, &mut proto)
                .expect("must terminate");
            check_dispersion(&world).expect("must disperse");
            vec![wait.to_string(), out.rounds.to_string()]
        },
        |_, _| {},
    );
    println!("{}", markdown_table(&["wait rounds", "rounds"], &rows));
    println!("The 6-round wait is the price of soundness when tree nodes may be empty");
    println!("(covered by oscillating settlers, Lemma 2); with every node settled it is");
    println!("pure constant-factor overhead - see DESIGN.md section 3.\n");
}
