//! CI bench regression gate.
//!
//! ```text
//! bench-gate record   [--out BENCH_baseline.json] [--samples N]
//! bench-gate check    [--baseline BENCH_baseline.json] [--samples N]
//! bench-gate scaling  [--threads 1,2,4]
//! bench-gate timeline [--samples N]
//! ```
//!
//! `record` measures the gated hot paths (see `disp_bench::gate`) and writes
//! the baseline document; `check` re-measures and exits non-zero when any
//! workload is more than the baseline's tolerance (25%) slower. `scaling`
//! runs the batched micro campaign at each thread count, prints the
//! wall-clock/speedup table, and always asserts that sorted trial records
//! are byte-identical across thread counts; the speedup gate itself is
//! skipped on a single-core box (determinism still proves out there).
//! `timeline` measures the `scale/line100k` trial with and without the
//! flight recorder in the same run and fails when the recorded variant
//! exceeds [`gate::TIMELINE_FACTOR`]× the plain one — the "observation is
//! (almost) free" acceptance bound.

use disp_bench::gate;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bench-gate — wall-clock regression gate for the dispersion hot paths

USAGE:
  bench-gate record   [--out FILE] [--samples N]      (write a fresh baseline)
  bench-gate check    [--baseline FILE] [--samples N] (fail on >25% regression)
  bench-gate scaling  [--threads 1,2,4]               (thread-scaling table + identity check)
  bench-gate timeline [--samples N]                   (flight-recorder overhead bound)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = PathBuf::from("BENCH_baseline.json");
    let mut samples = 5usize;
    let mut threads = vec![1usize, 2, 4];
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "--baseline" => match it.next() {
                Some(v) => path = PathBuf::from(v),
                None => return fail(&format!("{arg} requires a value")),
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => samples = v,
                None => return fail("--samples expects a positive integer"),
            },
            "--threads" => {
                let parsed: Option<Vec<usize>> = it
                    .next()
                    .map(|v| v.split(',').map(|t| t.parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(v) if !v.is_empty() && v.iter().all(|&t| t > 0) => threads = v,
                    _ => {
                        return fail(
                            "--threads expects a comma-separated list of positive integers",
                        )
                    }
                }
            }
            other => return fail(&format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    match args.first().map(String::as_str) {
        Some("record") => {
            let doc = gate::record(samples);
            if let Err(e) = std::fs::write(&path, doc + "\n") {
                return fail(&format!("write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Some("check") => {
            let baseline = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("read {}: {e}", path.display())),
            };
            let rows = match gate::check(&baseline, samples) {
                Ok(rows) => rows,
                Err(e) => return fail(&e),
            };
            let mut regressed = false;
            for row in &rows {
                let allocs = match row.allocs {
                    Some((base, measured, ratio)) => {
                        format!(", allocs {measured} vs {base:.0} (×{ratio:.2})")
                    }
                    None => String::new(),
                };
                println!(
                    "{:<34} baseline {:>9.3} ms, measured {:>9.3} ms, ratio {:.2}{allocs}{}",
                    row.id,
                    row.baseline_ns / 1e6,
                    row.measured_ns / 1e6,
                    row.ratio,
                    if row.regressed { "  ← REGRESSED" } else { "" }
                );
                regressed |= row.regressed;
            }
            if regressed {
                eprintln!("bench-gate: hot-path regression above the tolerance");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("scaling") => {
            let rows = match gate::scaling(&threads) {
                Ok(rows) => rows,
                Err(e) => return fail(&e),
            };
            println!(
                "micro campaign ({} identical sorted-record runs):",
                rows.len()
            );
            for row in &rows {
                println!(
                    "  threads {:>2}: {:>9.3} ms  speedup ×{:.2}",
                    row.threads,
                    row.wall_ns as f64 / 1e6,
                    row.speedup
                );
            }
            let cores = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            if cores == 1 {
                eprintln!(
                    "bench-gate: single-core host — byte-identity verified, speedup gate skipped"
                );
                return ExitCode::SUCCESS;
            }
            // On a multi-core box at least one multi-threaded run must be
            // no slower than threads=1; a lenient bound so CI noise on
            // small runners doesn't flake, but real serialization fails.
            let best = rows
                .iter()
                .filter(|r| r.threads > 1)
                .map(|r| r.speedup)
                .fold(f64::NEG_INFINITY, f64::max);
            if best.is_finite() && best < 1.0 {
                eprintln!(
                    "bench-gate: {cores}-core host but best multi-thread speedup is ×{best:.2}"
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("timeline") => {
            let (plain_ns, recorded_ns, ratio) = gate::timeline_overhead(samples);
            println!(
                "scale/line100k/probe-dfs: plain {:.3} ms, recorded {:.3} ms, ratio {:.3} \
                 (bound {:.2})",
                plain_ns / 1e6,
                recorded_ns / 1e6,
                ratio,
                gate::TIMELINE_FACTOR,
            );
            if ratio > gate::TIMELINE_FACTOR {
                eprintln!(
                    "bench-gate: flight-recorder overhead ×{ratio:.3} exceeds the \
                     ×{:.2} bound",
                    gate::TIMELINE_FACTOR
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("bench-gate: {message}");
    ExitCode::FAILURE
}
