//! CI bench regression gate.
//!
//! ```text
//! bench-gate record [--out BENCH_baseline.json] [--samples N]
//! bench-gate check  [--baseline BENCH_baseline.json] [--samples N]
//! ```
//!
//! `record` measures the gated hot paths (see `disp_bench::gate`) and writes
//! the baseline document; `check` re-measures and exits non-zero when any
//! workload is more than the baseline's tolerance (25%) slower.

use disp_bench::gate;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bench-gate — wall-clock regression gate for the dispersion hot paths

USAGE:
  bench-gate record [--out FILE] [--samples N]     (write a fresh baseline)
  bench-gate check  [--baseline FILE] [--samples N] (fail on >25% regression)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = PathBuf::from("BENCH_baseline.json");
    let mut samples = 5usize;
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "--baseline" => match it.next() {
                Some(v) => path = PathBuf::from(v),
                None => return fail(&format!("{arg} requires a value")),
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => samples = v,
                None => return fail("--samples expects a positive integer"),
            },
            other => return fail(&format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    match args.first().map(String::as_str) {
        Some("record") => {
            let doc = gate::record(samples);
            if let Err(e) = std::fs::write(&path, doc + "\n") {
                return fail(&format!("write {}: {e}", path.display()));
            }
            eprintln!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Some("check") => {
            let baseline = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => return fail(&format!("read {}: {e}", path.display())),
            };
            let rows = match gate::check(&baseline, samples) {
                Ok(rows) => rows,
                Err(e) => return fail(&e),
            };
            let mut regressed = false;
            for row in &rows {
                let allocs = match row.allocs {
                    Some((base, measured, ratio)) => {
                        format!(", allocs {measured} vs {base:.0} (×{ratio:.2})")
                    }
                    None => String::new(),
                };
                println!(
                    "{:<34} baseline {:>9.3} ms, measured {:>9.3} ms, ratio {:.2}{allocs}{}",
                    row.id,
                    row.baseline_ns / 1e6,
                    row.measured_ns / 1e6,
                    row.ratio,
                    if row.regressed { "  ← REGRESSED" } else { "" }
                );
                regressed |= row.regressed;
            }
            if regressed {
                eprintln!("bench-gate: hot-path regression above the tolerance");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn fail(message: &str) -> ExitCode {
    eprintln!("bench-gate: {message}");
    ExitCode::FAILURE
}
