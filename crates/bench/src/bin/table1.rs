//! Reproduce Table 1 of the paper as *measured* rows: time (rounds/epochs),
//! normalized time columns, and peak per-agent memory, for the paper's
//! algorithms and the state-of-the-art baselines, across graph families and
//! agent counts.
//!
//! This binary is a thin description over the `disp-campaign` engine: it
//! names the campaign, picks the mode, and renders — sweeping, seeding,
//! parallelism and (optionally, via the `disp-campaign` CLI) checkpointing
//! all live in the engine.
//!
//! Usage:
//! ```text
//! cargo run --release -p disp-bench --bin table1 -- \
//!     [--full] [--section <sync-rooted|async-rooted|all>] [--threads N] [--seed S]
//! ```

use disp_bench::cli;
use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::report::{render_section_markdown, section_measurements};
use disp_campaign::run::run_campaign;
use disp_core::scenario::Registry;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = if args.iter().any(|a| a == "--full") {
        Mode::Full
    } else {
        Mode::Quick
    };
    let section = cli::flag_value(&args, "--section").unwrap_or_else(|| "all".to_string());
    let seed = cli::seed(&args);
    let threads = cli::threads(&args);

    let spec = CampaignSpec::table1(mode, seed);
    let spec = if section == "all" {
        spec
    } else {
        let filtered = spec.with_sections(&[section.as_str()]);
        if filtered.sections.is_empty() {
            eprintln!("unknown section '{section}' (sync-rooted, async-rooted, all)");
            std::process::exit(1);
        }
        filtered
    };

    println!("# Table 1 (measured)\n");
    println!(
        "Mode: {} | sections: {} | trials: {} | seed: {} | threads: {}\n",
        spec.mode.label(),
        spec.sections.len(),
        spec.trials().len(),
        spec.seed,
        threads
    );

    let (records, summary) =
        run_campaign(&spec, None, threads, &Registry::builtin()).expect("campaign run");
    eprintln!(
        "({} trials in {:.2?}, {} steals)",
        summary.executed, summary.wall, summary.stats.steals
    );
    for (section, measurements) in section_measurements(&spec, records) {
        println!("{}", render_section_markdown(section, &measurements));
    }

    println!("\nInterpretation: `time/k` flat => O(k); `time/(k*log k)` flat => O(k log k);");
    println!("`peak_mem_bits` growing additively with log2(k+max_deg) => O(log(k+D)) memory.");
}
