//! Reproduce Table 1 of the paper as *measured* rows: time (rounds/epochs),
//! normalized time columns, and peak per-agent memory, for the paper's
//! algorithms and the state-of-the-art baselines, across graph families and
//! agent counts.
//!
//! Usage:
//! ```text
//! cargo run --release -p disp-bench --bin table1 -- [--full] [--section <sync-rooted|async-rooted|all>]
//! ```

use disp_analysis::experiment::ExperimentSpec;
use disp_analysis::fit::loglog_fit;
use disp_analysis::report::markdown_table;
use disp_bench::{full_ks, measurement_header, measurement_row, quick_ks, section_points};
use disp_core::runner::{Algorithm, Schedule};
use disp_graph::generators::GraphFamily;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let section = args
        .iter()
        .position(|a| a == "--section")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let ks = if full { full_ks() } else { quick_ks() };
    let families = if full {
        GraphFamily::all()
    } else {
        GraphFamily::quick()
    };
    let reps = if full { 3 } else { 1 };
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);

    println!("# Table 1 (measured)\n");
    println!(
        "Mode: {} | families: {} | k in {:?} | repetitions: {}\n",
        if full { "full" } else { "quick" },
        families.len(),
        ks,
        reps
    );

    if section == "sync-rooted" || section == "all" {
        let points = section_points(
            &families,
            &ks,
            &[Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker],
            Schedule::Sync,
            reps,
        );
        let results = ExperimentSpec { points }.run_parallel(threads);
        println!("## SYNC, rooted configurations (rounds)\n");
        let rows: Vec<Vec<String>> = results.iter().map(measurement_row).collect();
        println!("{}", markdown_table(&measurement_header(), &rows));
        print_fits("sync", &results);
    }

    if section == "async-rooted" || section == "all" {
        let points = section_points(
            &families,
            &ks,
            &[Algorithm::KsDfs, Algorithm::ProbeDfs],
            Schedule::AsyncRandom { prob: 0.7, seed: 11 },
            reps,
        );
        let results = ExperimentSpec { points }.run_parallel(threads);
        println!("## ASYNC, rooted configurations (epochs, random-subset adversary)\n");
        let rows: Vec<Vec<String>> = results.iter().map(measurement_row).collect();
        println!("{}", markdown_table(&measurement_header(), &rows));
        print_fits("async", &results);
    }

    println!("\nInterpretation: `time/k` flat => O(k); `time/(k*log k)` flat => O(k log k);");
    println!("`peak_mem_bits` growing additively with log2(k+max_deg) => O(log(k+D)) memory.");
}

fn print_fits(label: &str, results: &[disp_analysis::experiment::Measurement]) {
    use std::collections::BTreeMap;
    let mut series: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for m in results {
        series
            .entry((m.point.family.label(), m.point.algorithm.label().to_string()))
            .or_default()
            .push((m.k as f64, m.time_mean));
    }
    println!("### Log-log scaling exponents ({label})\n");
    let mut rows = Vec::new();
    for ((family, algo), pts) in series {
        if let Some(fit) = loglog_fit(&pts) {
            rows.push(vec![
                family,
                algo,
                format!("{:.2}", fit.exponent),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(&["family", "algorithm", "exponent", "R^2"], &rows)
    );
}
