//! # disp-rng
//!
//! A small, dependency-free, deterministic PRNG for the dispersion
//! workspace. The generator is **xoshiro256++** seeded through SplitMix64 —
//! fast, well distributed, and (crucially for the experiment harness)
//! *stable*: the stream produced for a given seed is part of this crate's
//! API contract and must never change, because campaign results are
//! reproduced byte-for-byte from recorded seeds.
//!
//! The sampling surface intentionally mirrors the subset of the `rand`
//! crate's API the workspace uses ([`StdRng::seed_from_u64`],
//! [`StdRng::random_range`], [`StdRng::random_bool`],
//! [`SliceRandom::shuffle`]), so algorithm code reads identically to the
//! wider ecosystem's idiom.
//!
//! ```
//! use disp_rng::prelude::*;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.random_range(1..7u64);
//! assert!((1..7).contains(&die));
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert_eq!(StdRng::seed_from_u64(7).next_u64(), StdRng::seed_from_u64(7).next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// SplitMix64 step — used for seeding and for stateless seed derivation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary list of 64-bit words into one well-distributed word.
///
/// This is the workspace's canonical *seed derivation* function: the
/// campaign engine derives every per-trial seed as
/// `mix(&[campaign_seed, point_hash, repetition])`, which makes trial seeds
/// independent of thread count, execution order and grid sharding.
pub fn mix(words: &[u64]) -> u64 {
    let mut state = 0x6A09_E667_F3BC_C909; // fractional bits of sqrt(2)
    let mut acc = 0u64;
    for &w in words {
        state ^= w;
        acc = acc.rotate_left(23) ^ splitmix64(&mut state);
    }
    // One extra scramble so `mix(&[x])` differs from `x` even for tiny inputs.
    let mut fin = acc ^ state;
    splitmix64(&mut fin)
}

/// FNV-1a hash of a byte string — stable across platforms and releases, used
/// to fold string identities (experiment-point ids) into seed material.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A seedable deterministic generator (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Create a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample from a half-open integer range. Panics if the range is
    /// empty.
    #[inline]
    pub fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        let span = hi - lo;
        // Lemire multiply-shift reduction; the tiny modulo bias is irrelevant
        // for simulation workloads and keeps the stream consumption at one
        // word per sample (important for stream stability).
        let v = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + v)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli sample with success probability `p`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.random_f64() < p
    }
}

/// Integer types [`StdRng::random_range`] can sample.
pub trait UniformInt: Copy {
    /// Widen to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrow back (the value is guaranteed to fit).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// In-place shuffling of slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Convenient glob import.
pub mod prelude {
    pub use crate::{fnv1a, mix, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        let mut c = StdRng::seed_from_u64(124);
        let (va, vb): (Vec<u64>, Vec<u64>) = (0..64)
            .map(|_| (a.next_u64(), b.next_u64()))
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();
        assert_eq!(va, vb);
        assert!((0..64).any(|_| c.next_u64() != a.next_u64()));
    }

    #[test]
    fn range_sampling_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.random_range(17..18u64);
            assert_eq!(v, 17);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).random_range(3..3usize);
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");
    }

    #[test]
    fn mix_separates_nearby_inputs_and_is_order_sensitive() {
        assert_ne!(mix(&[0, 0, 0]), mix(&[0, 0, 1]));
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_eq!(mix(&[7, 8, 9]), mix(&[7, 8, 9]));
        assert_ne!(mix(&[5]), 5);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
