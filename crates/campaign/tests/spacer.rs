//! The scenario redesign's open-registry proof: a toy algorithm that lives
//! entirely in its own module (`disp_core::extras::spacer`) runs through
//! the whole campaign stack — grid, engine, JSONL store, resume, report —
//! after exactly ONE registration line. Nothing else anywhere in the
//! workspace knows it exists. (`random-walk` used to play this role before
//! its promotion into the builtin set; `spacer` additionally drags the
//! fault dimensions — dynamic ring, distance-k — through the stack.)

use disp_analysis::TrialRecord;
use disp_campaign::grid::CampaignSpec;
use disp_campaign::report::section_measurements;
use disp_campaign::run::run_campaign;
use disp_campaign::store::CampaignStore;
use disp_core::extras::spacer::SpacerFactory;
use disp_core::scenario::{ParamValue, Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;

fn registry() -> Registry {
    // The one registration line.
    Registry::builtin().with(SpacerFactory)
}

fn spacer_campaign(seed: u64) -> CampaignSpec {
    CampaignSpec::custom(
        vec![
            ScenarioSpec::new(GraphFamily::Ring, 12, "spacer").with_occupancy(0.25),
            ScenarioSpec::new(GraphFamily::Ring, 8, "spacer")
                .with_occupancy(0.5)
                .with_dynamic_ring(1)
                .with_min_distance(2),
            ScenarioSpec::new(GraphFamily::Ring, 6, "spacer")
                .with_occupancy(0.25)
                .with_schedule(Schedule::AsyncRoundRobin)
                .with_param("gap", ParamValue::U64(3))
                .with_min_distance(3),
        ],
        2,
        seed,
    )
}

#[test]
fn registered_extra_runs_through_the_full_campaign_stack() {
    let registry = registry();
    let spec = spacer_campaign(0xA1);

    let dir = std::env::temp_dir().join(format!("disp-spacer-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CampaignStore::create(&dir, &spec, false).unwrap();

    // Run with checkpointing, then resume from the manifest alone — the
    // manifest speaks canonical labels, so the ad-hoc grid rebuilds exactly
    // (fault segments and dist predicate included).
    let (records, summary) = run_campaign(&spec, Some(&store), 2, &registry).unwrap();
    assert_eq!(summary.total, 6);
    assert!(records.iter().all(|r| r.dispersed));
    assert!(records
        .iter()
        .all(|r| r.point.scenario.algorithm == "spacer"));

    let (store2, manifest) = CampaignStore::open(&dir).unwrap();
    let respec = manifest.rebuild_spec().unwrap();
    let (again, summary2) = run_campaign(&respec, Some(&store2), 2, &registry).unwrap();
    assert_eq!(summary2.executed, 0, "resume recomputes nothing");
    let lines =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(lines(&records), lines(&again));

    // Records round-trip the store and feed the report layer unchanged.
    let ingest = store2.read_trials().unwrap();
    assert_eq!(ingest.records.len(), 6);
    assert_eq!(ingest.malformed, 0);
    let sections = section_measurements(&respec, ingest.records);
    assert_eq!(sections.len(), 1);
    assert_eq!(sections[0].1.len(), 3, "one measurement per scenario");
    assert!(sections[0].1.iter().all(|m| m.all_dispersed));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unregistered_extra_is_a_typed_error_not_a_panic() {
    // Without the registration line the same campaign is rejected up front.
    let err = run_campaign(&spacer_campaign(0xA2), None, 1, &Registry::builtin()).unwrap_err();
    assert!(err.contains("unknown algorithm 'spacer'"), "{err}");
}

#[test]
fn thread_count_invariance_holds_for_extras_too() {
    let registry = registry();
    let spec = spacer_campaign(0xA3);
    let (a, _) = run_campaign(&spec, None, 1, &registry).unwrap();
    let (b, _) = run_campaign(&spec, None, 4, &registry).unwrap();
    let lines =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(lines(&a), lines(&b));
}
