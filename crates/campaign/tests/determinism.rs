//! The campaign engine's central promise, tested end to end: results are a
//! pure function of `(campaign seed, point, repetition)` — independent of
//! thread count, scheduling interleavings, and kill/resume splits.

use disp_analysis::TrialRecord;
use disp_campaign::grid::{section_points, CampaignSpec, Mode, Section};
use disp_campaign::run::run_campaign;
use disp_campaign::store::CampaignStore;
use disp_core::runner::{Algorithm, Schedule};
use disp_graph::generators::GraphFamily;
use disp_rng::prelude::*;
use std::path::PathBuf;

/// Every algorithm × schedule combination: two runs with the same seed
/// produce identical outcomes (rounds, epochs, moves, peak bits — the full
/// `Outcome` and the dispersion verdict).
#[test]
fn every_algorithm_schedule_pair_is_seed_deterministic() {
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        },
    ];
    let mut rng = StdRng::seed_from_u64(0xDE7E_0001);
    for algorithm in Algorithm::all() {
        for schedule in schedules {
            // SyncSeeker is a SYNC-only algorithm.
            if algorithm == Algorithm::SyncSeeker && schedule != Schedule::Sync {
                continue;
            }
            for _case in 0..3 {
                let seed = rng.next_u64();
                let point = disp_analysis::ExperimentPoint {
                    family: GraphFamily::RandomTree,
                    k: 24,
                    occupancy: 1.0,
                    algorithm,
                    schedule,
                    repetitions: 1,
                };
                let a = point.run_trial(0, seed);
                let b = point.run_trial(0, seed);
                assert_eq!(
                    a.outcome, b.outcome,
                    "{algorithm:?} under {schedule:?} with seed {seed}"
                );
                assert_eq!(a.dispersed, b.dispersed);
                assert_eq!(a.to_json_line(), b.to_json_line());
            }
        }
    }
}

fn quick_mixed_spec(seed: u64) -> CampaignSpec {
    // A cost-heterogeneous mini campaign: both schedulers, two families,
    // two k values — enough spread to provoke real stealing at 8 threads.
    CampaignSpec {
        name: "table1",
        mode: Mode::Quick,
        seed,
        sections: vec![
            Section {
                name: "sync-mini",
                title: "sync mini",
                points: section_points(
                    &[GraphFamily::Line, GraphFamily::Star],
                    &[16, 48],
                    &[Algorithm::KsDfs, Algorithm::ProbeDfs, Algorithm::SyncSeeker],
                    Schedule::Sync,
                    2,
                ),
            },
            Section {
                name: "async-mini",
                title: "async mini",
                points: section_points(
                    &[GraphFamily::RandomTree],
                    &[16, 48],
                    &[Algorithm::KsDfs, Algorithm::ProbeDfs],
                    Schedule::AsyncRandom { prob: 0.7, seed: 0 },
                    2,
                ),
            },
        ],
    }
}

fn sorted_lines(records: &[TrialRecord]) -> Vec<String> {
    let mut lines: Vec<String> = records.iter().map(TrialRecord::to_json_line).collect();
    lines.sort();
    lines
}

/// A campaign at `--threads 1` and `--threads 8` produces identical sorted
/// JSONL (and, because the engine returns grid order, identical unsorted
/// record sequences too).
#[test]
fn threads_1_and_8_produce_identical_jsonl() {
    let spec = quick_mixed_spec(0xC0FFEE);
    let (one, s1) = run_campaign(&spec, None, 1).unwrap();
    let (eight, s8) = run_campaign(&spec, None, 8).unwrap();
    assert_eq!(s1.total, s8.total);
    assert_eq!(sorted_lines(&one), sorted_lines(&eight));
    // Stronger: grid-ordered output is identical line for line.
    let unsorted =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(unsorted(&one), unsorted(&eight));
}

/// Checkpoint files written at different thread counts are permutations of
/// each other (completion order differs; content does not).
#[test]
fn checkpoint_files_sort_identically_across_thread_counts() {
    let spec = quick_mixed_spec(0xBEEF);
    let base = std::env::temp_dir().join(format!("disp-determinism-{}", std::process::id()));
    let mut all_sorted: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 8] {
        let dir: PathBuf = base.join(format!("t{threads}"));
        std::fs::remove_dir_all(&dir).ok();
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        run_campaign(&spec, Some(&store), threads).unwrap();
        let text = std::fs::read_to_string(store.trials_path()).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines.sort();
        all_sorted.push(lines);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(all_sorted[0], all_sorted[1]);
    assert_eq!(all_sorted[0].len(), spec.trials().len());
}

/// Kill/resume determinism: a run interrupted anywhere and resumed (even at
/// a different thread count) converges to the same byte content as an
/// uninterrupted run.
#[test]
fn resume_after_partial_run_matches_uninterrupted_run() {
    // `mini` is registered in `CampaignSpec::by_name`, so the manifest
    // round-trip below can rebuild it exactly like the CLI would.
    let spec = CampaignSpec::by_name("mini", Mode::Quick, 0xFACADE).unwrap();
    let grid = spec.trials();
    let dir = std::env::temp_dir().join(format!("disp-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // "Kill" after an arbitrary prefix: checkpoint 40% of trials by hand,
    // plus a torn tail to simulate death mid-write.
    let store = CampaignStore::create(&dir, &spec, false).unwrap();
    let writer = store.appender().unwrap();
    let prefix = grid.len() * 2 / 5;
    for t in &grid[..prefix] {
        writer.append(&t.point.run_trial(t.rep, t.seed));
    }
    drop(writer);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(store.trials_path())
            .unwrap();
        write!(f, "{{\"point\":{{\"fam").unwrap();
    }

    // Resume through the manifest path, like the CLI does.
    let (store2, manifest) = CampaignStore::open(&dir).unwrap();
    let respec = manifest.rebuild_spec().unwrap();
    assert_eq!(respec.trials().len(), grid.len());
    let (resumed, summary) = run_campaign(&respec, Some(&store2), 8).unwrap();
    assert_eq!(summary.skipped, prefix);
    assert_eq!(summary.executed, grid.len() - prefix);

    let (clean, _) = run_campaign(&spec, None, 1).unwrap();
    assert_eq!(sorted_lines(&resumed), sorted_lines(&clean));

    // The on-disk log (minus the torn line) matches too.
    let ingest = store2.read_trials().unwrap();
    assert_eq!(ingest.malformed, 1);
    assert_eq!(sorted_lines(&ingest.records), sorted_lines(&clean));

    std::fs::remove_dir_all(&dir).ok();
}
