//! The campaign engine's central promise, tested end to end: results are a
//! pure function of `(campaign seed, canonical scenario label, repetition)`
//! — independent of thread count, scheduling interleavings, and kill/resume
//! splits.

use disp_analysis::{ExperimentPoint, TrialRecord};
use disp_campaign::grid::{section_points, CampaignSpec, Mode, Section};
use disp_campaign::run::run_campaign;
use disp_campaign::store::CampaignStore;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_rng::prelude::*;
use disp_sim::Placement;
use std::path::PathBuf;

/// Every algorithm × schedule combination the registry supports: two runs
/// with the same seed produce identical outcomes (rounds, epochs, moves,
/// peak bits — the full `Outcome` and the dispersion verdict).
#[test]
fn every_algorithm_schedule_pair_is_seed_deterministic() {
    let registry = Registry::builtin();
    let schedules = [
        Schedule::Sync,
        Schedule::AsyncRoundRobin,
        Schedule::AsyncRandom { prob: 0.6, seed: 0 },
        Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        },
    ];
    let mut rng = StdRng::seed_from_u64(0xDE7E_0001);
    for algorithm in registry.labels() {
        for schedule in schedules {
            if schedule.is_async() && !registry.get(algorithm).unwrap().supports_async() {
                continue;
            }
            for _case in 0..3 {
                let seed = rng.next_u64();
                let point = ExperimentPoint::new(
                    ScenarioSpec::new(GraphFamily::RandomTree, 24, algorithm)
                        .with_schedule(schedule),
                    1,
                );
                let a = point.run_trial(&registry, 0, seed);
                let b = point.run_trial(&registry, 0, seed);
                assert_eq!(
                    a.outcome, b.outcome,
                    "{algorithm} under {schedule:?} with seed {seed}"
                );
                assert_eq!(a.dispersed, b.dispersed);
                assert_eq!(a.to_json_line(), b.to_json_line());
            }
        }
    }
}

fn quick_mixed_spec(seed: u64) -> CampaignSpec {
    // A cost-heterogeneous mini campaign: both schedulers, two families,
    // two k values, rooted and scattered starts — enough spread to provoke
    // real stealing at 8 threads.
    let mut mixed = section_points(
        &[GraphFamily::RandomTree],
        &[16, 48],
        &["ks-dfs"],
        Placement::ScatteredUniform,
        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
        2,
    );
    mixed.extend(section_points(
        &[GraphFamily::RandomTree],
        &[16, 48],
        &["ks-dfs", "probe-dfs"],
        Placement::Rooted,
        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
        2,
    ));
    CampaignSpec {
        name: "table1".into(),
        mode: Mode::Quick,
        seed,
        sections: vec![
            Section::new(
                "sync-mini",
                "sync mini",
                section_points(
                    &[GraphFamily::Line, GraphFamily::Star],
                    &[16, 48],
                    &["ks-dfs", "probe-dfs", "sync-seeker"],
                    Placement::Rooted,
                    Schedule::Sync,
                    2,
                ),
            ),
            Section::new("async-mini", "async mini", mixed),
        ],
    }
}

fn sorted_lines(records: &[TrialRecord]) -> Vec<String> {
    let mut lines: Vec<String> = records.iter().map(TrialRecord::to_json_line).collect();
    lines.sort();
    lines
}

/// A campaign at `--threads 1` and `--threads 8` produces identical sorted
/// JSONL (and, because the engine returns grid order, identical unsorted
/// record sequences too).
#[test]
fn threads_1_and_8_produce_identical_jsonl() {
    let registry = Registry::builtin();
    let spec = quick_mixed_spec(0xC0FFEE);
    let (one, s1) = run_campaign(&spec, None, 1, &registry).unwrap();
    let (eight, s8) = run_campaign(&spec, None, 8, &registry).unwrap();
    assert_eq!(s1.total, s8.total);
    assert_eq!(sorted_lines(&one), sorted_lines(&eight));
    // Stronger: grid-ordered output is identical line for line.
    let unsorted =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(unsorted(&one), unsorted(&eight));
}

/// Checkpoint files written at different thread counts are permutations of
/// each other (completion order differs; content does not).
#[test]
fn checkpoint_files_sort_identically_across_thread_counts() {
    let registry = Registry::builtin();
    let spec = quick_mixed_spec(0xBEEF);
    let base = std::env::temp_dir().join(format!("disp-determinism-{}", std::process::id()));
    let mut all_sorted: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 8] {
        let dir: PathBuf = base.join(format!("t{threads}"));
        std::fs::remove_dir_all(&dir).ok();
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        run_campaign(&spec, Some(&store), threads, &registry).unwrap();
        let text = std::fs::read_to_string(store.trials_path()).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines.sort();
        all_sorted.push(lines);
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(all_sorted[0], all_sorted[1]);
    assert_eq!(all_sorted[0].len(), spec.trials().len());
}

/// Kill/resume determinism: a run interrupted anywhere and resumed (even at
/// a different thread count) converges to the same byte content as an
/// uninterrupted run. The manifest round-trip goes through canonical
/// scenario labels, exactly like the CLI.
#[test]
fn resume_after_partial_run_matches_uninterrupted_run() {
    let registry = Registry::builtin();
    let spec = CampaignSpec::by_name("mini", Mode::Quick, 0xFACADE).unwrap();
    let grid = spec.trials();
    let dir = std::env::temp_dir().join(format!("disp-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // "Kill" after an arbitrary prefix: checkpoint 40% of trials by hand,
    // plus a torn tail to simulate death mid-write.
    let store = CampaignStore::create(&dir, &spec, false).unwrap();
    let writer = store.appender().unwrap();
    let prefix = grid.len() * 2 / 5;
    for t in &grid[..prefix] {
        writer.append(&t.point.run_trial(&registry, t.rep, t.seed));
    }
    drop(writer);
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(store.trials_path())
            .unwrap();
        write!(f, "{{\"scenario\":{{\"fam").unwrap();
    }

    // Resume through the manifest path, like the CLI does.
    let (store2, manifest) = CampaignStore::open(&dir).unwrap();
    let respec = manifest.rebuild_spec().unwrap();
    assert_eq!(respec.trials().len(), grid.len());
    let (resumed, summary) = run_campaign(&respec, Some(&store2), 8, &registry).unwrap();
    assert_eq!(summary.skipped, prefix);
    assert_eq!(summary.executed, grid.len() - prefix);

    let (clean, _) = run_campaign(&spec, None, 1, &registry).unwrap();
    assert_eq!(sorted_lines(&resumed), sorted_lines(&clean));

    // The on-disk log (minus the torn line) matches too.
    let ingest = store2.read_trials().unwrap();
    assert_eq!(ingest.malformed, 1);
    assert_eq!(sorted_lines(&ingest.records), sorted_lines(&clean));

    std::fs::remove_dir_all(&dir).ok();
}

/// The new scenario classes (scattered-uniform and clustered placements)
/// run under all three schedule families in the `placements` campaign, and
/// the whole grid is thread-count invariant — the acceptance bar for the
/// scenario redesign.
#[test]
fn placements_campaign_is_thread_count_invariant() {
    let registry = Registry::builtin();
    let mut spec = CampaignSpec::by_name("placements", Mode::Quick, 0x5CA7).unwrap();
    for section in &mut spec.sections {
        section.points.retain(|p| p.scenario.k <= 32);
    }
    assert_eq!(spec.sections.len(), 3);
    let (a, _) = run_campaign(&spec, None, 1, &registry).unwrap();
    let (b, _) = run_campaign(&spec, None, 4, &registry).unwrap();
    assert_eq!(sorted_lines(&a), sorted_lines(&b));
    assert!(a.iter().all(|r| r.dispersed));
    for placement in ["scatter", "cluster4", "spread"] {
        for schedule in ["sync", "async-rand0.7", "async-lag4"] {
            assert!(
                a.iter().any(|r| {
                    let id = r.point.point_id();
                    id.contains(&format!("/{placement}/")) && id.contains(&format!("/{schedule}/"))
                }),
                "no record for {placement} × {schedule}"
            );
        }
    }
}
