//! The scenario redesign's open-registry proof: a toy algorithm that lives
//! entirely in its own module (`disp_core::extras::random_walk`) runs
//! through the whole campaign stack — grid, engine, JSONL store, resume,
//! report — after exactly ONE registration line. Nothing else anywhere in
//! the workspace knows it exists.

use disp_analysis::TrialRecord;
use disp_campaign::grid::CampaignSpec;
use disp_campaign::report::section_measurements;
use disp_campaign::run::run_campaign;
use disp_campaign::store::CampaignStore;
use disp_core::extras::random_walk::RandomWalkFactory;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_sim::Placement;

fn registry() -> Registry {
    // The one registration line.
    Registry::builtin().with(RandomWalkFactory)
}

fn walk_campaign(seed: u64) -> CampaignSpec {
    CampaignSpec::custom(
        vec![
            ScenarioSpec::new(GraphFamily::Star, 12, "random-walk"),
            ScenarioSpec::new(GraphFamily::RandomTree, 12, "random-walk")
                .with_placement(Placement::ScatteredUniform)
                .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 }),
            ScenarioSpec::new(GraphFamily::Grid, 12, "random-walk")
                .with_placement(Placement::Clustered { clusters: 3 }),
        ],
        2,
        seed,
    )
}

#[test]
fn registered_extra_runs_through_the_full_campaign_stack() {
    let registry = registry();
    let spec = walk_campaign(0xA1);

    let dir = std::env::temp_dir().join(format!("disp-random-walk-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = CampaignStore::create(&dir, &spec, false).unwrap();

    // Run with checkpointing, then resume from the manifest alone — the
    // manifest speaks canonical labels, so the ad-hoc grid rebuilds exactly.
    let (records, summary) = run_campaign(&spec, Some(&store), 2, &registry).unwrap();
    assert_eq!(summary.total, 6);
    assert!(records.iter().all(|r| r.dispersed));
    assert!(records
        .iter()
        .all(|r| r.point.scenario.algorithm == "random-walk"));

    let (store2, manifest) = CampaignStore::open(&dir).unwrap();
    let respec = manifest.rebuild_spec().unwrap();
    let (again, summary2) = run_campaign(&respec, Some(&store2), 2, &registry).unwrap();
    assert_eq!(summary2.executed, 0, "resume recomputes nothing");
    let lines =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(lines(&records), lines(&again));

    // Records round-trip the store and feed the report layer unchanged.
    let ingest = store2.read_trials().unwrap();
    assert_eq!(ingest.records.len(), 6);
    assert_eq!(ingest.malformed, 0);
    let sections = section_measurements(&respec, ingest.records);
    assert_eq!(sections.len(), 1);
    assert_eq!(sections[0].1.len(), 3, "one measurement per scenario");
    assert!(sections[0].1.iter().all(|m| m.all_dispersed));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unregistered_extra_is_a_typed_error_not_a_panic() {
    // Without the registration line the same campaign is rejected up front.
    let err = run_campaign(&walk_campaign(0xA2), None, 1, &Registry::builtin()).unwrap_err();
    assert!(err.contains("unknown algorithm 'random-walk'"), "{err}");
}

#[test]
fn thread_count_invariance_holds_for_extras_too() {
    let registry = registry();
    let spec = walk_campaign(0xA3);
    let (a, _) = run_campaign(&spec, None, 1, &registry).unwrap();
    let (b, _) = run_campaign(&spec, None, 4, &registry).unwrap();
    let lines =
        |rs: &[TrialRecord]| -> Vec<String> { rs.iter().map(TrialRecord::to_json_line).collect() };
    assert_eq!(lines(&a), lines(&b));
}
