//! Schedule-fuzz determinism: random adversarial activation sequences
//! (derived from `disp_rng`) replayed twice must produce **byte-identical
//! traces** and identical `Outcome`s — and fuzzed campaigns must survive a
//! mid-run kill/resume through the campaign store with byte-identical
//! results. This is the determinism oracle for the flat-state engine: the
//! worklist, the cohort rides and the intrusive occupancy lists all have to
//! reproduce exactly under replay or checkpoint/resume is fiction.

use disp_analysis::TrialRecord;
use disp_campaign::grid::CampaignSpec;
use disp_campaign::run::run_campaign;
use disp_campaign::store::CampaignStore;
use disp_core::scenario::{Registry, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_rng::mix;
use disp_rng::prelude::*;
use disp_sim::{AsyncRunner, Outcome, Placement, SyncRunner, TraceEvent};

// `random-walk` is builtin now; the fuzzer needs no extras.
fn registry() -> Registry {
    Registry::builtin()
}

/// Draw a random-but-valid scenario from the fuzz RNG.
fn fuzz_spec(rng: &mut StdRng, registry: &Registry) -> ScenarioSpec {
    let families = [
        GraphFamily::Line,
        GraphFamily::Star,
        GraphFamily::RandomTree,
        GraphFamily::ErdosRenyi { avg_degree: 5.0 },
        GraphFamily::Torus,
        GraphFamily::Complete,
        GraphFamily::Hypercube,
        GraphFamily::Ring,
    ];
    loop {
        let family = families[rng.random_range(0..families.len())];
        let algorithm = ["ks-dfs", "probe-dfs", "random-walk"][rng.random_range(0..3usize)];
        let placement = match rng.random_range(0..4u32) {
            0 => Placement::Rooted,
            1 => Placement::ScatteredUniform,
            2 => Placement::Clustered {
                clusters: 1 + rng.random_range(0..4usize),
            },
            _ => Placement::AdversarialSpread,
        };
        // Random *adversarial* activation sequences: random per-step subsets
        // with a fuzzed probability, fuzzed heterogeneous lags, the adaptive
        // targeted starvation adversary, round-robin and plain sync as
        // controls.
        let schedule = match rng.random_range(0..6u32) {
            0 => Schedule::Sync,
            1 => Schedule::AsyncRoundRobin,
            2 | 3 => Schedule::AsyncRandom {
                prob: 0.05 + (rng.random_range(0..90u32) as f64) / 100.0,
                seed: 0,
            },
            4 => Schedule::AsyncTargeted {
                max_lag: 1 + rng.random_range(0..6u64),
            },
            _ => Schedule::AsyncLagging {
                max_lag: 1 + rng.random_range(0..6u64),
                seed: 0,
            },
        };
        let k = 6 + rng.random_range(0..26usize);
        let mut spec = ScenarioSpec::new(family, k, algorithm)
            .with_placement(placement)
            .with_schedule(schedule);
        if !placement.is_rooted() && rng.random_bool(0.5) {
            spec = spec.with_occupancy(0.5);
        }
        // Fault dimensions, drawn blind: `validate` redraws the illegal
        // combinations (dyn-ring off rings, crashes on crash-intolerant
        // algorithms), so faulty worlds enter the fuzz pool organically.
        if rng.random_bool(0.25) {
            spec = spec.with_dynamic_ring(1 + rng.random_range(0..3u64));
        }
        if rng.random_bool(0.25) {
            spec = spec.with_crashes(1 + rng.random_range(0..4u64));
        }
        if spec.validate(registry).is_ok() {
            return spec;
        }
    }
}

/// Run `spec` with tracing enabled, returning the outcome and the full event
/// trace. Built through [`ScenarioSpec::build`], so the fuzzed executions
/// are exactly the instances campaigns run under the same seed.
fn traced_run(spec: &ScenarioSpec, registry: &Registry, seed: u64) -> (Outcome, Vec<TraceEvent>) {
    let (mut world, mut protocol) = spec.build(registry, seed).expect("fuzz specs are valid");
    world.enable_trace();
    let config = spec.run_config(&world);
    let (dynamics, crashes) = spec.build_faults(world.num_agents(), seed);
    let outcome = match spec.build_adversary(world.num_agents(), seed) {
        None => {
            let mut runner = SyncRunner::new(config);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, protocol.as_mut())
                .expect("fuzz runs must terminate")
        }
        Some(adversary) => {
            let mut runner = AsyncRunner::new(config, adversary);
            if let Some(d) = dynamics {
                runner = runner.with_dynamics(d);
            }
            if let Some(c) = crashes {
                runner = runner.with_crashes(c);
            }
            runner
                .run(&mut world, protocol.as_mut())
                .expect("fuzz runs must terminate")
        }
    };
    (outcome, world.trace().events().to_vec())
}

#[test]
fn replayed_adversarial_schedules_are_byte_identical() {
    let registry = registry();
    let mut rng = StdRng::seed_from_u64(0x0F02_2EE0);
    let mut async_specs = 0;
    for case in 0..32u64 {
        let spec = fuzz_spec(&mut rng, &registry);
        if spec.schedule.is_async() {
            async_specs += 1;
        }
        let seed = mix(&[0xD00F, case]);
        let (out_a, trace_a) = traced_run(&spec, &registry, seed);
        let (out_b, trace_b) = traced_run(&spec, &registry, seed);
        assert_eq!(out_a, out_b, "{spec}: outcomes diverged under replay");
        assert_eq!(
            trace_a.len(),
            trace_b.len(),
            "{spec}: trace lengths diverged"
        );
        assert_eq!(trace_a, trace_b, "{spec}: traces diverged under replay");
        // And the serialized (byte) form agrees too — what "byte-identical"
        // means for a checkpointed trace.
        assert_eq!(format!("{trace_a:?}"), format!("{trace_b:?}"), "{spec}");
        // A different seed must not silently reuse the same execution —
        // but only scenarios that consume randomness at all (a seeded
        // adversary, a random graph family, a seeded placement or a
        // randomized algorithm) are required to diverge; e.g.
        // line/rooted/async-rr/probe-dfs is deterministic by construction.
        let randomized = matches!(
            spec.schedule,
            Schedule::AsyncRandom { .. } | Schedule::AsyncLagging { .. }
        ) || matches!(
            spec.family,
            GraphFamily::RandomTree | GraphFamily::ErdosRenyi { .. }
        ) || spec.placement == Placement::ScatteredUniform
            || spec.algorithm == "random-walk";
        if randomized {
            let (out_c, trace_c) = traced_run(&spec, &registry, seed ^ 0x5555);
            assert!(
                out_c != out_a || trace_c != trace_a,
                "{spec}: different seeds produced identical executions"
            );
        }
    }
    assert!(async_specs >= 10, "fuzz drew too few async schedules");
}

#[test]
fn fuzzed_campaigns_survive_kill_and_resume_byte_identically() {
    let registry = registry();
    let mut rng = StdRng::seed_from_u64(0xBADC_0FFE);
    let scenarios: Vec<ScenarioSpec> = (0..6).map(|_| fuzz_spec(&mut rng, &registry)).collect();
    // Duplicate labels would collapse into one checkpoint key; dedup.
    let mut seen = std::collections::HashSet::new();
    let scenarios: Vec<ScenarioSpec> = scenarios
        .into_iter()
        .filter(|s| seen.insert(s.label()))
        .collect();
    let spec = CampaignSpec::custom(scenarios, 2, 0xFEED);

    let dir = std::env::temp_dir().join(format!("disp-schedule-fuzz-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Reference: uninterrupted in-memory run.
    let (reference, _) = run_campaign(&spec, None, 2, &registry).unwrap();
    let reference_lines: Vec<String> = reference.iter().map(TrialRecord::to_json_line).collect();

    // Killed run: checkpoint everything, then tear the log mid-record and
    // resume from the surviving prefix.
    let store = CampaignStore::create(&dir, &spec, false).unwrap();
    let (_, _) = run_campaign(&spec, Some(&store), 2, &registry).unwrap();
    let log = std::fs::read(store.trials_path()).unwrap();
    assert!(log.len() > 120, "campaign log suspiciously small");
    let cut = log.len() / 2 + 17; // deliberately mid-line
    std::fs::write(store.trials_path(), &log[..cut]).unwrap();

    let (resumed, summary) = run_campaign(&spec, Some(&store), 4, &registry).unwrap();
    assert!(summary.skipped > 0, "resume should reuse surviving trials");
    assert!(summary.executed > 0, "the torn tail must be recomputed");
    let resumed_lines: Vec<String> = resumed.iter().map(TrialRecord::to_json_line).collect();
    assert_eq!(
        resumed_lines, reference_lines,
        "kill/resume changed campaign output"
    );

    std::fs::remove_dir_all(&dir).ok();
}
