//! The telemetry pipeline's non-content guarantee, end to end: attaching a
//! live event stream to a campaign — at any thread count — changes *no
//! byte* of the results, while the sidecar accounts for every trial
//! exactly once (started + completed for executed trials, cached for
//! checkpoint hits).

use disp_analysis::json::Json;
use disp_analysis::TrialRecord;
use disp_campaign::grid::CampaignSpec;
use disp_campaign::run::{run_campaign, run_campaign_telemetered};
use disp_campaign::store::CampaignStore;
use disp_campaign::telemetry::{JsonlSink, Telemetry, TrialEvent, VecSink};
use disp_core::scenario::{Registry, ScenarioSpec};
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;

fn mixed_spec(seed: u64) -> CampaignSpec {
    let labels = [
        "star/k12/rooted/sync/probe-dfs",
        "ring/k12/rooted/sync/ks-dfs",
        "rtree/k12/rooted/async-rand0.7/ks-dfs",
    ];
    let scenarios: Vec<ScenarioSpec> = labels
        .iter()
        .map(|l| ScenarioSpec::from_label(l).unwrap())
        .collect();
    CampaignSpec::custom(scenarios, 3, seed)
}

fn lines(records: &[TrialRecord]) -> Vec<String> {
    records.iter().map(TrialRecord::to_json_line).collect()
}

/// Results with telemetry at 1 and 4 threads are byte-identical to results
/// without telemetry, and the event stream accounts for every trial: one
/// `started` and one `completed` per grid trial, no drops on this scale.
#[test]
fn telemetry_on_or_off_and_thread_count_change_no_result_byte() {
    let registry = Registry::builtin();
    let spec = mixed_spec(0xCAFE);
    let total = spec.trials().len();
    let (baseline, _) = run_campaign(&spec, None, 1, &registry).unwrap();
    let baseline = lines(&baseline);

    for threads in [1usize, 4] {
        let (sink, collected) = VecSink::new();
        let telemetry = Telemetry::start(Box::new(sink));
        let handle = telemetry.handle();
        let (records, summary) = run_campaign_telemetered(
            &spec,
            None,
            threads,
            &registry,
            &AtomicBool::new(false),
            Some(&handle),
        )
        .unwrap();
        drop(handle);
        let dropped = telemetry.finish();
        assert_eq!(dropped, 0, "bounded channel must absorb a mini campaign");
        assert_eq!(summary.executed, total);

        assert_eq!(
            lines(&records),
            baseline,
            "telemetry at {threads} thread(s) altered result bytes"
        );

        let events = collected.lock().unwrap();
        let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
        assert_eq!(count("started"), total);
        assert_eq!(count("completed"), total);
        assert_eq!(count("cached"), 0);
        // Every completed event carries a wall-clock that the results
        // stream must not contain: spot-check the rendered JSON.
        for event in events.iter() {
            if let TrialEvent::Completed { .. } = event {
                let json = event.to_json_line();
                assert!(json.contains("\"wall_micros\""), "{json}");
            }
        }
        for line in &baseline {
            assert!(
                !line.contains("wall_micros"),
                "timing leaked into results: {line}"
            );
        }
    }
}

/// With a store: the `events.jsonl` sidecar lands next to the checkpoint,
/// every line parses as an `"event"` object, and `trials.jsonl` is
/// (sorted) byte-identical to a run without telemetry. A re-run over the
/// same store announces every trial as `cached` — nothing re-executes.
#[test]
fn sidecar_accounts_for_runs_and_resumes_without_touching_the_checkpoint() {
    let registry = Registry::builtin();
    let spec = mixed_spec(0xBEEF);
    let total = spec.trials().len();
    let base = std::env::temp_dir().join(format!("disp-telemetry-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Telemetered, multi-threaded, checkpointed run.
    let dir: PathBuf = base.join("telemetered");
    let store = CampaignStore::create(&dir, &spec, false).unwrap();
    let telemetry = Telemetry::start(Box::new(JsonlSink::create(&store.events_path()).unwrap()));
    let handle = telemetry.handle();
    run_campaign_telemetered(
        &spec,
        Some(&store),
        4,
        &registry,
        &AtomicBool::new(false),
        Some(&handle),
    )
    .unwrap();
    drop(handle);
    telemetry.finish();

    // Bare single-threaded run: the checkpoint contents must agree.
    let bare_dir: PathBuf = base.join("bare");
    let bare_store = CampaignStore::create(&bare_dir, &spec, false).unwrap();
    run_campaign(&spec, Some(&bare_store), 1, &registry).unwrap();
    let sorted = |path: &std::path::Path| -> Vec<String> {
        let mut lines: Vec<String> = std::fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines.sort();
        lines
    };
    assert_eq!(
        sorted(&store.trials_path()),
        sorted(&bare_store.trials_path()),
        "sidecar run altered checkpoint bytes"
    );

    // The sidecar is well-formed JSONL with full accounting.
    let sidecar = std::fs::read_to_string(store.events_path()).unwrap();
    let mut started = 0;
    let mut completed = 0;
    for line in sidecar.lines() {
        let json = Json::parse(line).expect("sidecar line parses");
        match json.get("event").and_then(Json::as_str) {
            Some("started") => started += 1,
            Some("completed") => completed += 1,
            other => panic!("unexpected sidecar event {other:?}"),
        }
    }
    assert_eq!(started, total);
    assert_eq!(completed, total);

    // Re-run over the same store: everything is a checkpoint hit, and the
    // stream says so (in grid order) instead of going silent.
    let (sink, collected) = VecSink::new();
    let telemetry = Telemetry::start(Box::new(sink));
    let handle = telemetry.handle();
    let (records, summary) = run_campaign_telemetered(
        &spec,
        Some(&store),
        2,
        &registry,
        &AtomicBool::new(false),
        Some(&handle),
    )
    .unwrap();
    drop(handle);
    telemetry.finish();
    assert_eq!(summary.executed, 0);
    assert_eq!(summary.skipped, total);
    let events = collected.lock().unwrap();
    assert_eq!(events.len(), total);
    let grid_order: Vec<String> = spec.trials().iter().map(|t| t.trial_id()).collect();
    let cached_order: Vec<String> = events
        .iter()
        .map(|e| match e {
            TrialEvent::Cached { trial_id, .. } => trial_id.clone(),
            other => panic!("resume emitted {other:?}"),
        })
        .collect();
    assert_eq!(cached_order, grid_order);
    assert_eq!(records.len(), total);

    std::fs::remove_dir_all(&base).ok();
}
