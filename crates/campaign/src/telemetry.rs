//! Live telemetry for campaign execution: structured per-trial events,
//! emitted by engine workers through a bounded channel to a pluggable sink.
//!
//! ## The non-content sidecar rule
//!
//! Trial *results* are content-addressed: the JSONL a campaign checkpoints
//! is a pure function of `(grid, campaign seed)`, byte-identical across
//! thread counts, cache state and interruptions. Wall-clock timing is not
//! content — it varies run to run — so it must never touch the results
//! stream. Telemetry therefore flows through an entirely separate channel
//! and lands in a *sidecar* (`events.jsonl` next to the store, or the
//! service's in-memory event log), the same discipline as the existing
//! `repetitions` rewrite in the serve cache.
//!
//! ## Backpressure
//!
//! Workers emit through a bounded [`std::sync::mpsc::sync_channel`] with
//! [`try_send`](std::sync::mpsc::SyncSender::try_send): a slow sink never
//! blocks the trial engine. Events dropped on a full channel are counted,
//! and [`Telemetry::finish`] delivers a final [`TrialEvent::Overflow`]
//! marker so consumers know the stream is incomplete rather than silently
//! short.
//!
//! ## Trace export
//!
//! This module also hosts the JSONL encoder for
//! [`disp_sim::TraceEvent`] logs (used by `disp-campaign trace` and the
//! service's `GET /trace`), since both the CLI and `disp-serve` sit above
//! this crate.

use disp_analysis::json::Json;
use disp_analysis::TrialRecord;
use disp_sim::{Trace, TraceEvent};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;

/// Bound on in-flight telemetry events: deep enough to absorb bursts from
/// every worker, small enough that a wedged sink costs bounded memory.
pub const TELEMETRY_CHANNEL_BOUND: usize = 1024;

/// One structured event in a trial's lifecycle. Timing lives here and only
/// here — never in the results stream (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum TrialEvent {
    /// A worker began executing a trial.
    Started {
        /// `label#rN` — the store's trial id.
        trial_id: String,
        /// Canonical scenario label.
        label: String,
        /// Repetition index.
        rep: usize,
    },
    /// A trial finished executing.
    Completed {
        /// `label#rN`.
        trial_id: String,
        /// Canonical scenario label.
        label: String,
        /// Repetition index.
        rep: usize,
        /// Wall-clock execution time in microseconds (non-content!).
        wall_micros: u64,
        /// The paper's time measure: rounds (SYNC) or epochs (ASYNC).
        time: u64,
        /// ASYNC scheduler steps (0 for SYNC).
        steps: u64,
        /// Total edge traversals.
        total_moves: u64,
        /// Whether the final configuration is a valid dispersion.
        dispersed: bool,
        /// Id of the cluster worker that executed the trial (`None` for
        /// local execution). Observability only — never part of the
        /// results stream.
        worker: Option<String>,
    },
    /// A trial was satisfied without execution (checkpoint or trial cache).
    Cached {
        /// `label#rN`.
        trial_id: String,
        /// Canonical scenario label.
        label: String,
        /// Repetition index.
        rep: usize,
        /// Rounds/epochs of the cached outcome.
        time: u64,
        /// Total edge traversals of the cached outcome.
        total_moves: u64,
        /// Whether the cached outcome dispersed.
        dispersed: bool,
    },
    /// Terminal marker: `dropped` events were lost to channel backpressure
    /// (the stream is otherwise complete and in order).
    Overflow {
        /// Number of events dropped on the full channel.
        dropped: u64,
    },
}

impl TrialEvent {
    /// The `Started` event for a trial about to execute.
    pub fn started(label: &str, rep: usize) -> TrialEvent {
        TrialEvent::Started {
            trial_id: format!("{label}#r{rep}"),
            label: label.to_string(),
            rep,
        }
    }

    /// The `Completed` event for a freshly executed record.
    pub fn completed(record: &TrialRecord, wall_micros: u64) -> TrialEvent {
        TrialEvent::Completed {
            trial_id: record.trial_id(),
            label: record.point.point_id(),
            rep: record.rep,
            wall_micros,
            time: record.outcome.time(),
            steps: record.outcome.steps,
            total_moves: record.outcome.total_moves,
            dispersed: record.dispersed,
            worker: None,
        }
    }

    /// [`TrialEvent::completed`] tagged with the cluster worker that
    /// executed the trial, so a coordinator's SSE stream shows where each
    /// trial ran.
    pub fn completed_by(record: &TrialRecord, wall_micros: u64, worker: &str) -> TrialEvent {
        match TrialEvent::completed(record, wall_micros) {
            TrialEvent::Completed {
                trial_id,
                label,
                rep,
                wall_micros,
                time,
                steps,
                total_moves,
                dispersed,
                ..
            } => TrialEvent::Completed {
                trial_id,
                label,
                rep,
                wall_micros,
                time,
                steps,
                total_moves,
                dispersed,
                worker: Some(worker.to_string()),
            },
            other => other,
        }
    }

    /// The `Cached` event for a record satisfied without execution.
    pub fn cached(record: &TrialRecord) -> TrialEvent {
        TrialEvent::Cached {
            trial_id: record.trial_id(),
            label: record.point.point_id(),
            rep: record.rep,
            time: record.outcome.time(),
            total_moves: record.outcome.total_moves,
            dispersed: record.dispersed,
        }
    }

    /// The event kind as a stable lowercase tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TrialEvent::Started { .. } => "started",
            TrialEvent::Completed { .. } => "completed",
            TrialEvent::Cached { .. } => "cached",
            TrialEvent::Overflow { .. } => "overflow",
        }
    }

    /// Render as a JSON object with an `"event"` discriminator.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("event".into(), Json::Str(self.kind().into()))];
        match self {
            TrialEvent::Started {
                trial_id,
                label,
                rep,
            } => {
                fields.push(("trial_id".into(), Json::Str(trial_id.clone())));
                fields.push(("label".into(), Json::Str(label.clone())));
                fields.push(("rep".into(), Json::Num(*rep as f64)));
            }
            TrialEvent::Completed {
                trial_id,
                label,
                rep,
                wall_micros,
                time,
                steps,
                total_moves,
                dispersed,
                worker,
            } => {
                fields.push(("trial_id".into(), Json::Str(trial_id.clone())));
                fields.push(("label".into(), Json::Str(label.clone())));
                fields.push(("rep".into(), Json::Num(*rep as f64)));
                fields.push(("wall_micros".into(), Json::Num(*wall_micros as f64)));
                fields.push(("time".into(), Json::Num(*time as f64)));
                fields.push(("steps".into(), Json::Num(*steps as f64)));
                fields.push(("total_moves".into(), Json::Num(*total_moves as f64)));
                fields.push(("dispersed".into(), Json::Bool(*dispersed)));
                if let Some(worker) = worker {
                    fields.push(("worker".into(), Json::Str(worker.clone())));
                }
            }
            TrialEvent::Cached {
                trial_id,
                label,
                rep,
                time,
                total_moves,
                dispersed,
            } => {
                fields.push(("trial_id".into(), Json::Str(trial_id.clone())));
                fields.push(("label".into(), Json::Str(label.clone())));
                fields.push(("rep".into(), Json::Num(*rep as f64)));
                fields.push(("time".into(), Json::Num(*time as f64)));
                fields.push(("total_moves".into(), Json::Num(*total_moves as f64)));
                fields.push(("dispersed".into(), Json::Bool(*dispersed)));
            }
            TrialEvent::Overflow { dropped } => {
                fields.push(("dropped".into(), Json::Num(*dropped as f64)));
            }
        }
        Json::Obj(fields)
    }

    /// Compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string_compact()
    }
}

/// Where telemetry events go. Implementations run on the collector thread,
/// never on engine workers, so they may do I/O freely.
pub trait TelemetrySink {
    /// Consume one event (delivered in channel order).
    fn emit(&mut self, event: &TrialEvent);
}

/// A sink that appends each event as one JSON line to a sidecar file,
/// flushed per event so a watcher (`tail -f`) sees trials as they finish.
pub struct JsonlSink {
    out: std::io::BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Create (truncate) the sidecar at `path`.
    pub fn create(path: &Path) -> Result<JsonlSink, String> {
        let file =
            std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
        Ok(JsonlSink {
            out: std::io::BufWriter::new(file),
        })
    }
}

impl TelemetrySink for JsonlSink {
    fn emit(&mut self, event: &TrialEvent) {
        // Telemetry must never kill a campaign: sidecar write errors are
        // swallowed (the results stream has its own, stricter writer).
        let _ = writeln!(self.out, "{}", event.to_json_line());
        let _ = self.out.flush();
    }
}

/// A shared, thread-safe sidecar file for flight-recorder timelines
/// (`timelines.jsonl` next to a campaign store). Engine workers append one
/// whole JSONL chunk — header, points, summary — per trial under a mutex,
/// so concurrent trials never interleave lines. Like every sidecar, write
/// errors are swallowed: observability must never kill a campaign, and the
/// results stream has its own stricter writer.
pub struct TimelineSidecar {
    out: std::sync::Mutex<std::io::BufWriter<std::fs::File>>,
}

impl TimelineSidecar {
    /// Create (truncate) the sidecar at `path`.
    pub fn create(path: &Path) -> Result<TimelineSidecar, String> {
        let file =
            std::fs::File::create(path).map_err(|e| format!("create {}: {e}", path.display()))?;
        Ok(TimelineSidecar {
            out: std::sync::Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Append one trial's complete timeline chunk (already JSONL-encoded,
    /// newline-terminated) atomically, flushed so a watcher sees whole
    /// timelines as trials finish.
    pub fn append(&self, chunk: &str) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(chunk.as_bytes());
            let _ = out.flush();
        }
    }
}

/// A sink that collects events into a vector (tests, small in-memory uses).
#[derive(Default)]
pub struct VecSink {
    events: Arc<std::sync::Mutex<Vec<TrialEvent>>>,
}

impl VecSink {
    /// A new empty sink plus the shared handle to read what it collected.
    pub fn new() -> (VecSink, Arc<std::sync::Mutex<Vec<TrialEvent>>>) {
        let sink = VecSink::default();
        let events = Arc::clone(&sink.events);
        (sink, events)
    }
}

impl TelemetrySink for VecSink {
    fn emit(&mut self, event: &TrialEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Channel payload: events, plus an internal close sentinel so
/// [`Telemetry::finish`] can stop the collector even while worker handles
/// are still alive (their later emissions land on a disconnected channel
/// and are counted as dropped).
enum Wire {
    Event(TrialEvent),
    Close,
}

/// Cloneable worker-side handle: non-blocking emission into the bounded
/// channel. Dropped events are counted, never waited on.
#[derive(Clone)]
pub struct TelemetryHandle {
    tx: SyncSender<Wire>,
    dropped: Arc<AtomicU64>,
}

impl TelemetryHandle {
    /// Emit one event; drops (and counts) it if the channel is full or the
    /// collector is gone. Never blocks.
    pub fn emit(&self, event: TrialEvent) {
        match self.tx.try_send(Wire::Event(event)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events dropped so far on the full channel.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The telemetry hub: owns the bounded channel and the collector thread
/// that drains it into the sink.
pub struct Telemetry {
    tx: Option<SyncSender<Wire>>,
    dropped: Arc<AtomicU64>,
    collector: Option<std::thread::JoinHandle<()>>,
}

impl Telemetry {
    /// Start a collector thread draining a bounded channel into `sink`.
    pub fn start(sink: Box<dyn TelemetrySink + Send>) -> Telemetry {
        let (tx, rx) = sync_channel::<Wire>(TELEMETRY_CHANNEL_BOUND);
        let collector = std::thread::spawn(move || {
            let mut sink = sink;
            for wire in rx {
                match wire {
                    Wire::Event(event) => sink.emit(&event),
                    Wire::Close => break,
                }
            }
        });
        Telemetry {
            tx: Some(tx),
            dropped: Arc::new(AtomicU64::new(0)),
            collector: Some(collector),
        }
    }

    /// A worker-side emission handle (clone freely across threads).
    pub fn handle(&self) -> TelemetryHandle {
        TelemetryHandle {
            tx: self.tx.as_ref().expect("telemetry not finished").clone(),
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Flush and shut down: delivers a final [`TrialEvent::Overflow`] if
    /// anything was dropped, closes the channel, joins the collector.
    /// Safe to call while worker handles are still alive — the close
    /// sentinel ends the collector loop without waiting for them to drop.
    /// Returns the number of dropped events.
    pub fn finish(mut self) -> u64 {
        let dropped = self.dropped.load(Ordering::Relaxed);
        if let Some(tx) = self.tx.take() {
            if dropped > 0 {
                // Blocking sends: the collector is still draining, and the
                // marker and sentinel must not themselves be droppable.
                let _ = tx.send(Wire::Event(TrialEvent::Overflow { dropped }));
            }
            let _ = tx.send(Wire::Close);
        }
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
        dropped
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Wire::Close);
        }
        if let Some(collector) = self.collector.take() {
            let _ = collector.join();
        }
    }
}

/// Render one [`TraceEvent`] as a JSON object with an `"event"`
/// discriminator (`move` / `cohort_move` / `milestone`).
pub fn trace_event_json(event: &TraceEvent) -> Json {
    match event {
        TraceEvent::Move {
            agent,
            from,
            to,
            port,
            pin,
            time,
        } => Json::Obj(vec![
            ("event".into(), Json::Str("move".into())),
            ("agent".into(), Json::Num(agent.0 as f64)),
            ("from".into(), Json::Num(from.0 as f64)),
            ("to".into(), Json::Num(to.0 as f64)),
            ("port".into(), Json::Num(port.0 as f64)),
            ("pin".into(), Json::Num(pin.0 as f64)),
            ("time".into(), Json::Num(*time as f64)),
        ]),
        TraceEvent::CohortMove {
            driver,
            from,
            to,
            port,
            members,
            time,
        } => Json::Obj(vec![
            ("event".into(), Json::Str("cohort_move".into())),
            ("driver".into(), Json::Num(driver.0 as f64)),
            ("from".into(), Json::Num(from.0 as f64)),
            ("to".into(), Json::Num(to.0 as f64)),
            ("port".into(), Json::Num(port.0 as f64)),
            ("members".into(), Json::Num(*members as f64)),
            ("time".into(), Json::Num(*time as f64)),
        ]),
        TraceEvent::Milestone {
            agent,
            node,
            code,
            time,
        } => Json::Obj(vec![
            ("event".into(), Json::Str("milestone".into())),
            ("agent".into(), Json::Num(agent.0 as f64)),
            ("node".into(), Json::Num(node.0 as f64)),
            ("code".into(), Json::Num(*code as f64)),
            ("time".into(), Json::Num(*time as f64)),
        ]),
    }
}

/// Render a whole trace as JSONL: one event per line, in recording order,
/// followed by a `{"event":"trace_end",...}` summary line carrying the
/// event count, whether the cap truncated the log, and — when it did — how
/// many events were dropped past the cap. Deterministic for a
/// deterministic run, so two exports of the same seed are byte-identical.
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for event in trace.events() {
        out.push_str(&trace_event_json(event).to_string_compact());
        out.push('\n');
    }
    let end = Json::Obj(vec![
        ("event".into(), Json::Str("trace_end".into())),
        ("events".into(), Json::Num(trace.events().len() as f64)),
        ("truncated".into(), Json::Bool(trace.truncated())),
        ("dropped".into(), Json::Num(trace.dropped() as f64)),
    ]);
    out.push_str(&end.to_string_compact());
    out.push('\n');
    out
}

/// Render one flight-recorder point as a JSON object. The per-role class
/// histogram becomes a nested object in the protocol's canonical class
/// order (field order is preserved by the in-house [`Json`] writer, so the
/// rendering is deterministic).
pub fn timeline_point_json(point: &disp_sim::TimelinePoint) -> Json {
    Json::Obj(vec![
        ("event".into(), Json::Str("point".into())),
        ("time".into(), Json::Num(point.time as f64)),
        ("settled".into(), Json::Num(point.settled as f64)),
        ("active".into(), Json::Num(point.active as f64)),
        ("parked".into(), Json::Num(point.parked as f64)),
        ("crashed".into(), Json::Num(point.crashed as f64)),
        ("moves".into(), Json::Num(point.moves as f64)),
        ("dead_edges".into(), Json::Num(point.dead_edges as f64)),
        ("batch".into(), Json::Num(point.batch as f64)),
        (
            "classes".into(),
            Json::Obj(
                point
                    .classes
                    .iter()
                    .map(|&(name, count)| (name.to_string(), Json::Num(count as f64)))
                    .collect(),
            ),
        ),
    ])
}

/// Render a recorded [`Timeline`](disp_sim::Timeline) as JSONL: a
/// `timeline_start` header naming the scenario and seed, one `point` line
/// per surviving sample, and a `timeline_end` summary with the point
/// count, final stride and decimation level. This single encoder backs
/// both `disp-campaign timeline` and the service's `GET /timeline`, which
/// is what makes the two byte-identical for the same scenario + seed (an
/// acceptance criterion CI pins).
pub fn timeline_to_jsonl(timeline: &disp_sim::Timeline, scenario: &str, seed: u64) -> String {
    let mut out = String::new();
    let start = Json::Obj(vec![
        ("event".into(), Json::Str("timeline_start".into())),
        ("scenario".into(), Json::Str(scenario.to_string())),
        ("seed".into(), Json::Num(seed as f64)),
        ("budget".into(), Json::Num(timeline.budget as f64)),
    ]);
    out.push_str(&start.to_string_compact());
    out.push('\n');
    for point in &timeline.points {
        out.push_str(&timeline_point_json(point).to_string_compact());
        out.push('\n');
    }
    let end = Json::Obj(vec![
        ("event".into(), Json::Str("timeline_end".into())),
        ("points".into(), Json::Num(timeline.points.len() as f64)),
        ("stride".into(), Json::Num(timeline.stride as f64)),
        (
            "decimation_level".into(),
            Json::Num(timeline.decimation_level() as f64),
        ),
    ]);
    out.push_str(&end.to_string_compact());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::{NodeId, Port};
    use disp_sim::AgentId;

    #[test]
    fn events_render_with_discriminators() {
        let ev = TrialEvent::started("line/k4/rooted/sync/probe-dfs", 2);
        let doc = ev.to_json();
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("started"));
        assert_eq!(
            doc.get("trial_id").and_then(Json::as_str),
            Some("line/k4/rooted/sync/probe-dfs#r2")
        );
        let over = TrialEvent::Overflow { dropped: 3 };
        assert_eq!(
            over.to_json().get("dropped").and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(over.kind(), "overflow");
    }

    #[test]
    fn hub_delivers_in_order_and_finish_joins() {
        let (sink, collected) = VecSink::new();
        let telemetry = Telemetry::start(Box::new(sink));
        let handle = telemetry.handle();
        for rep in 0..100 {
            handle.emit(TrialEvent::started("x", rep));
        }
        let dropped = telemetry.finish();
        let events = collected.lock().unwrap();
        // The bound (1024) exceeds 100, so nothing dropped; order preserved.
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 100);
        for (rep, ev) in events.iter().enumerate() {
            assert_eq!(*ev, TrialEvent::started("x", rep));
        }
    }

    #[test]
    fn overflow_is_counted_and_marked() {
        // A sink that blocks until told otherwise, forcing the channel full.
        struct Gate(Arc<std::sync::atomic::AtomicBool>, Arc<AtomicU64>);
        impl TelemetrySink for Gate {
            fn emit(&mut self, event: &TrialEvent) {
                while self.0.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                if let TrialEvent::Overflow { dropped } = event {
                    self.1.store(*dropped, Ordering::SeqCst);
                }
            }
        }
        let hold = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let marker = Arc::new(AtomicU64::new(0));
        let telemetry = Telemetry::start(Box::new(Gate(Arc::clone(&hold), Arc::clone(&marker))));
        let handle = telemetry.handle();
        // Fill the channel (bound + 1 for the event parked in the sink),
        // then some: the rest must drop without blocking.
        for rep in 0..TELEMETRY_CHANNEL_BOUND + 100 {
            handle.emit(TrialEvent::started("x", rep));
        }
        assert!(handle.dropped() > 0);
        let expected = handle.dropped();
        hold.store(false, Ordering::SeqCst);
        let dropped = telemetry.finish();
        assert_eq!(dropped, expected);
        assert_eq!(marker.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn trace_jsonl_round_trips_through_the_json_layer() {
        let mut trace = Trace::enabled();
        trace.record(TraceEvent::Move {
            agent: AgentId(1),
            from: NodeId(0),
            to: NodeId(2),
            port: Port(1),
            pin: Port(0),
            time: 3,
        });
        trace.record(TraceEvent::Milestone {
            agent: AgentId(1),
            node: NodeId(2),
            code: 1,
            time: 4,
        });
        let jsonl = trace_to_jsonl(&trace);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let first = Json::parse(lines[0]).unwrap();
        assert_eq!(first.get("event").and_then(Json::as_str), Some("move"));
        assert_eq!(first.get("to").and_then(Json::as_f64), Some(2.0));
        let last = Json::parse(lines[2]).unwrap();
        assert_eq!(last.get("event").and_then(Json::as_str), Some("trace_end"));
        assert_eq!(last.get("truncated").and_then(Json::as_bool), Some(false));
        assert_eq!(last.get("events").and_then(Json::as_f64), Some(2.0));
        assert_eq!(last.get("dropped").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn truncated_trace_end_reports_the_dropped_count() {
        let mut trace = Trace::enabled_with_cap(2);
        for time in 0..7 {
            trace.record(TraceEvent::Milestone {
                agent: AgentId(0),
                node: NodeId(0),
                code: 1,
                time,
            });
        }
        let jsonl = trace_to_jsonl(&trace);
        let last = Json::parse(jsonl.lines().last().unwrap()).unwrap();
        assert_eq!(last.get("truncated").and_then(Json::as_bool), Some(true));
        assert_eq!(last.get("dropped").and_then(Json::as_f64), Some(5.0));
    }

    #[test]
    fn timeline_jsonl_has_header_points_and_summary() {
        let tl = disp_sim::Timeline {
            points: vec![
                disp_sim::TimelinePoint {
                    time: 0,
                    settled: 0,
                    active: 4,
                    parked: 0,
                    crashed: 0,
                    moves: 0,
                    dead_edges: 0,
                    batch: 0,
                    classes: vec![("follower", 3), ("settled", 0), ("leader", 1)],
                },
                disp_sim::TimelinePoint {
                    time: 8,
                    settled: 4,
                    active: 0,
                    parked: 4,
                    crashed: 0,
                    moves: 12,
                    dead_edges: 0,
                    batch: 0,
                    classes: vec![("follower", 0), ("settled", 4), ("leader", 0)],
                },
            ],
            stride: 2,
            budget: 4096,
        };
        let jsonl = timeline_to_jsonl(&tl, "ring/k4/rooted/sync/ks-dfs", 7);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        let head = Json::parse(lines[0]).unwrap();
        assert_eq!(
            head.get("event").and_then(Json::as_str),
            Some("timeline_start")
        );
        assert_eq!(
            head.get("scenario").and_then(Json::as_str),
            Some("ring/k4/rooted/sync/ks-dfs")
        );
        assert_eq!(head.get("seed").and_then(Json::as_f64), Some(7.0));
        let point = Json::parse(lines[1]).unwrap();
        assert_eq!(point.get("event").and_then(Json::as_str), Some("point"));
        assert_eq!(
            point
                .get("classes")
                .and_then(|c| c.get("follower"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        let end = Json::parse(lines[3]).unwrap();
        assert_eq!(
            end.get("event").and_then(Json::as_str),
            Some("timeline_end")
        );
        assert_eq!(end.get("points").and_then(Json::as_f64), Some(2.0));
        assert_eq!(end.get("stride").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            end.get("decimation_level").and_then(Json::as_f64),
            Some(1.0)
        );
        // Determinism: re-rendering is byte-identical.
        assert_eq!(
            jsonl,
            timeline_to_jsonl(&tl, "ring/k4/rooted/sync/ks-dfs", 7)
        );
    }
}
