//! Campaign descriptions: named grids of experiment points.
//!
//! A [`CampaignSpec`] is pure data — sections of scenario grids
//! (`family × k × placement × schedule × algorithm`, each a canonical
//! [`ScenarioSpec`]) plus a campaign seed. Everything downstream (trial
//! expansion, per-trial seeds, the checkpoint identity of the whole grid)
//! is derived deterministically from the scenarios' canonical labels, which
//! is what makes killed campaigns resumable and `--threads N` output
//! byte-identical — and what lets the manifest rebuild *any* campaign,
//! including ad-hoc `--scenario` grids, without a name lookup.

use disp_analysis::experiment::ExperimentPoint;
use disp_core::scenario::{ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_rng::{fnv1a, mix};
use disp_sim::Placement;

/// Sweep size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized sweep (4 families, k ≤ 128, 1 repetition).
    Quick,
    /// Paper-sized sweep (all families, k ≤ 512, 3 repetitions).
    Full,
}

impl Mode {
    /// Label used in manifests and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }

    /// Inverse of [`Mode::label`].
    pub fn from_label(label: &str) -> Option<Mode> {
        match label {
            "quick" => Some(Mode::Quick),
            "full" => Some(Mode::Full),
            _ => None,
        }
    }
}

/// The k values swept by the harness in quick mode.
pub fn quick_ks() -> Vec<usize> {
    vec![16, 32, 64, 128]
}

/// The k values swept by the harness in full mode.
pub fn full_ks() -> Vec<usize> {
    vec![16, 32, 64, 128, 256, 512]
}

/// Build the sweep points for one campaign section: the cross product of
/// families × ks × algorithms at one placement and schedule.
pub fn section_points(
    families: &[GraphFamily],
    ks: &[usize],
    algorithms: &[&str],
    placement: Placement,
    schedule: Schedule,
    repetitions: usize,
) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for &family in families {
        for &k in ks {
            for algorithm in algorithms {
                points.push(ExperimentPoint::new(
                    ScenarioSpec::new(family, k, algorithm)
                        .with_placement(placement)
                        .with_schedule(schedule),
                    repetitions,
                ));
            }
        }
    }
    points
}

/// A named group of points reported as one table/CSV.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section name (stable; used in report headings and CSV file names).
    pub name: String,
    /// Human description for report headings.
    pub title: String,
    /// The grid of this section.
    pub points: Vec<ExperimentPoint>,
}

impl Section {
    /// Build a section from static grid data.
    pub fn new(name: &str, title: &str, points: Vec<ExperimentPoint>) -> Section {
        Section {
            name: name.to_string(),
            title: title.to_string(),
            points,
        }
    }
}

/// One expanded unit of work: a `(point, repetition)` pair with its derived
/// seed.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// Index of the owning section within the campaign.
    pub section: usize,
    /// The experiment point.
    pub point: ExperimentPoint,
    /// Repetition index.
    pub rep: usize,
    /// The derived per-trial seed (see [`trial_seed`]).
    pub seed: u64,
}

impl TrialSpec {
    /// The checkpoint identity of this trial: the scenario's canonical
    /// label plus the repetition index.
    pub fn trial_id(&self) -> String {
        format!("{}#r{}", self.point.point_id(), self.rep)
    }
}

/// Derive the seed of one trial from the campaign seed, the scenario's
/// canonical label and the repetition index.
///
/// The derivation goes through the *canonical label* (not the point's
/// position in the grid), so inserting or reordering points in a campaign
/// never changes the seeds — and therefore the results — of the points that
/// stayed.
pub fn trial_seed(campaign_seed: u64, point: &ExperimentPoint, rep: usize) -> u64 {
    mix(&[
        campaign_seed,
        fnv1a(point.point_id().as_bytes()),
        rep as u64,
    ])
}

/// A complete, named campaign description.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Campaign name (`table1`, `figures`, …, or `custom` for `--scenario`
    /// grids); recorded in manifests.
    pub name: String,
    /// Sweep size preset.
    pub mode: Mode,
    /// The campaign seed all trial seeds derive from.
    pub seed: u64,
    /// Report sections.
    pub sections: Vec<Section>,
}

impl CampaignSpec {
    /// The Table-1 campaign: SYNC rooted rows + ASYNC rooted rows.
    pub fn table1(mode: Mode, seed: u64) -> CampaignSpec {
        let (families, ks, reps) = preset(mode);
        CampaignSpec {
            name: "table1".into(),
            mode,
            seed,
            sections: vec![
                Section::new(
                    "sync-rooted",
                    "SYNC, rooted configurations (rounds)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs", "sync-seeker"],
                        Placement::Rooted,
                        Schedule::Sync,
                        reps,
                    ),
                ),
                Section::new(
                    "async-rooted",
                    "ASYNC, rooted configurations (epochs, random-subset adversary)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
                        reps,
                    ),
                ),
            ],
        }
    }

    /// The figure-series campaign: the scaling series an experimental
    /// evaluation of the paper's claims would plot.
    pub fn figures(mode: Mode, seed: u64) -> CampaignSpec {
        let (families, ks, reps) = preset(mode);
        CampaignSpec {
            name: "figures".into(),
            mode,
            seed,
            sections: vec![
                Section::new(
                    "fig_sync_rooted",
                    "time vs k, SYNC rooted",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs", "sync-seeker"],
                        Placement::Rooted,
                        Schedule::Sync,
                        reps,
                    ),
                ),
                Section::new(
                    "fig_async_rooted",
                    "time vs k, ASYNC rooted (random-subset adversary)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
                        reps,
                    ),
                ),
                Section::new(
                    "fig_async_lagging",
                    "time vs k, ASYNC rooted (lagging adversary)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncLagging {
                            max_lag: 4,
                            seed: 0,
                        },
                        reps,
                    ),
                ),
            ],
        }
    }

    /// The placement campaign: genuinely non-rooted scenario classes
    /// (scattered-uniform, clustered, adversarial-spread starts) under all
    /// three schedule families, on the general-configuration algorithm.
    pub fn placements(mode: Mode, seed: u64) -> CampaignSpec {
        let (families, ks, reps) = preset(mode);
        let placements = [
            Placement::ScatteredUniform,
            Placement::Clustered { clusters: 4 },
            Placement::AdversarialSpread,
        ];
        let schedules: [(&str, &str, Schedule); 3] = [
            ("placements-sync", "SYNC (rounds)", Schedule::Sync),
            (
                "placements-async-rand",
                "ASYNC, random-subset adversary (epochs)",
                Schedule::AsyncRandom { prob: 0.7, seed: 0 },
            ),
            (
                "placements-async-lag",
                "ASYNC, lagging adversary (epochs)",
                Schedule::AsyncLagging {
                    max_lag: 4,
                    seed: 0,
                },
            ),
        ];
        let sections = schedules
            .into_iter()
            .map(|(name, sched_title, schedule)| {
                let mut points = Vec::new();
                for placement in placements {
                    // Half occupancy: at k = n every scattered/spread start
                    // is one agent per node and dispersion is trivial; with
                    // n ≈ 2k the placements actually have work to do.
                    points.extend(
                        section_points(&families, &ks, &["ks-dfs"], placement, schedule, reps)
                            .into_iter()
                            .map(|mut p| {
                                p.scenario = p.scenario.with_occupancy(0.5);
                                p
                            }),
                    );
                }
                Section::new(
                    name,
                    &format!("Non-rooted placements, {sched_title}"),
                    points,
                )
            })
            .collect();
        CampaignSpec {
            name: "placements".into(),
            mode,
            seed,
            sections,
        }
    }

    /// A deliberately small campaign for smoke tests and kill/resume demos:
    /// covers both schedulers and all three algorithms in a few seconds.
    pub fn mini(mode: Mode, seed: u64) -> CampaignSpec {
        let ks: Vec<usize> = match mode {
            Mode::Quick => vec![12, 24],
            Mode::Full => vec![12, 24, 48],
        };
        let families = [GraphFamily::Star, GraphFamily::RandomTree];
        CampaignSpec {
            name: "mini".into(),
            mode,
            seed,
            sections: vec![
                Section::new(
                    "mini-sync",
                    "mini smoke sweep, SYNC (rounds)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs", "sync-seeker"],
                        Placement::Rooted,
                        Schedule::Sync,
                        2,
                    ),
                ),
                Section::new(
                    "mini-async",
                    "mini smoke sweep, ASYNC (epochs)",
                    section_points(
                        &families,
                        &ks,
                        &["ks-dfs", "probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncRandom { prob: 0.7, seed: 0 },
                        2,
                    ),
                ),
            ],
        }
    }

    /// The million-node scale campaign: the flat-state engine's showcase.
    ///
    /// Rooted SYNC `probe-dfs` on the four structured families the engine
    /// handles at scale — line, ring, torus (implicit), hypercube (implicit)
    /// — at `n ∈ {10^4, 10^5, 10^6}` with `k = n` and `k = n/4`
    /// (`occ0.25`). Hypercube sizes are the realized powers of two. All 24
    /// quick-mode trials complete in well under a minute single-threaded
    /// (the `n = 10^6` line trial alone is ~1.3 s / 143 MB RSS); `complete`
    /// is deliberately absent — `probe-dfs` pays `Θ(k²)` *moves* there, so
    /// no faithful sequential simulation finishes at `k = 10^6`.
    ///
    /// Full mode adds repetitions, the `ks-dfs` scan baseline at `n = 10^4`,
    /// the full ASYNC `async-lag4` grid up to `n = 10^6` on all four
    /// families, the adaptive `async-target4` starvation grid, and an
    /// `async-rr` control at `n = 10^4`. ASYNC at `n = 10^6` is what the
    /// event-driven adversaries (PR 4) bought: schedule generation is
    /// O(active) per step, so the `async-lag` line trial lands within the
    /// same order of magnitude as its SYNC counterpart (seconds, not
    /// hours); quick mode carries an `n = 10^5` async-lag smoke that CI
    /// checks for `--threads 1` vs `4` byte-identity.
    pub fn scale(mode: Mode, seed: u64) -> CampaignSpec {
        let families: [(GraphFamily, [usize; 3]); 4] = [
            (GraphFamily::Line, [10_000, 100_000, 1_000_000]),
            (GraphFamily::Ring, [10_000, 100_000, 1_000_000]),
            (GraphFamily::Torus, [10_000, 100_000, 1_000_000]),
            (GraphFamily::Hypercube, [16_384, 131_072, 1_048_576]),
        ];
        let reps = match mode {
            Mode::Quick => 1,
            Mode::Full => 2,
        };
        let grid = |occupancy: f64, divisor: usize, schedule: Schedule| -> Vec<ExperimentPoint> {
            families
                .iter()
                .flat_map(|&(family, ks)| {
                    ks.into_iter().map(move |k| {
                        let mut spec = ScenarioSpec::new(family, k / divisor, "probe-dfs")
                            .with_schedule(schedule);
                        if occupancy != 1.0 {
                            spec = spec.with_occupancy(occupancy);
                        }
                        ExperimentPoint::new(spec, reps)
                    })
                })
                .collect()
        };
        let lag = Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        };
        let mut sections = vec![
            Section::new(
                "scale-sync-full",
                "SYNC rooted probe-dfs, k = n (rounds)",
                grid(1.0, 1, Schedule::Sync),
            ),
            Section::new(
                "scale-sync-quarter",
                "SYNC rooted probe-dfs, k = n/4 (rounds)",
                grid(0.25, 4, Schedule::Sync),
            ),
        ];
        match mode {
            Mode::Quick => {
                // The async smoke CI leans on: small enough to stay cheap,
                // big enough (n = 10^5) to exercise the timer wheel and the
                // bulk epoch crediting for real.
                sections.push(Section::new(
                    "scale-async-lag",
                    "ASYNC lagging (max_lag 4) probe-dfs at n = 10^5 (epochs)",
                    section_points(
                        &[GraphFamily::Line, GraphFamily::Ring],
                        &[100_000],
                        &["probe-dfs"],
                        Placement::Rooted,
                        lag,
                        reps,
                    ),
                ));
            }
            Mode::Full => {
                let small: Vec<GraphFamily> = families.iter().map(|&(f, _)| f).collect();
                sections.push(Section::new(
                    "scale-baseline",
                    "SYNC rooted ks-dfs scan baseline at n = 10^4 (rounds)",
                    section_points(
                        &small,
                        &[10_000],
                        &["ks-dfs"],
                        Placement::Rooted,
                        Schedule::Sync,
                        reps,
                    ),
                ));
                sections.push(Section::new(
                    "scale-async-lag",
                    "ASYNC lagging (max_lag 4) probe-dfs, k = n up to 10^6 (epochs)",
                    grid(1.0, 1, lag),
                ));
                sections.push(Section::new(
                    "scale-async-target",
                    "ASYNC targeted starvation (max_lag 4) probe-dfs at n ≤ 10^5 (epochs)",
                    section_points(
                        &small,
                        &[10_000, 100_000],
                        &["probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncTargeted { max_lag: 4 },
                        reps,
                    ),
                ));
                sections.push(Section::new(
                    "scale-async-rr",
                    "ASYNC round-robin probe-dfs at n = 10^4 (epochs)",
                    section_points(
                        &small,
                        &[10_000],
                        &["probe-dfs"],
                        Placement::Rooted,
                        Schedule::AsyncRoundRobin,
                        reps,
                    ),
                ));
            }
        }
        CampaignSpec {
            name: "scale".into(),
            mode,
            seed,
            sections,
        }
    }

    /// The fault-worlds campaign: rings under the dynamic edge adversary
    /// (one edge down per round, restored the next — the arXiv 2408.12220
    /// model), crash-fault plans that orphan settled nodes, and both at
    /// once. Ring-only by construction: the dynamic adversary is defined
    /// on rings, and crashes go to `random-walk`, the crash-tolerant
    /// algorithm. Like every campaign it is seed-deterministic, so CI
    /// byte-compares a quick run at `--threads 1` against `--threads 4`.
    pub fn fault_worlds(mode: Mode, seed: u64) -> CampaignSpec {
        let ks: Vec<usize> = match mode {
            Mode::Quick => vec![16, 32, 64],
            Mode::Full => vec![16, 32, 64, 128],
        };
        let reps = match mode {
            Mode::Quick => 1,
            Mode::Full => 3,
        };
        // A fixed fault fraction: k/8 crashes, at least one.
        let crashes_for = |k: usize| (k as u64 / 8).max(1);
        let lag = Schedule::AsyncLagging {
            max_lag: 4,
            seed: 0,
        };
        let dyn_section = |name: &str, title: &str, schedule: Schedule| {
            Section::new(
                name,
                title,
                ks.iter()
                    .flat_map(|&k| {
                        ["probe-dfs", "random-walk"].into_iter().map(move |alg| {
                            ExperimentPoint::new(
                                ScenarioSpec::new(GraphFamily::Ring, k, alg)
                                    .with_occupancy(0.5)
                                    .with_schedule(schedule)
                                    .with_dynamic_ring(1),
                                reps,
                            )
                        })
                    })
                    .collect(),
            )
        };
        let crash_section = |name: &str, title: &str, schedule: Schedule| {
            Section::new(
                name,
                title,
                ks.iter()
                    .map(|&k| {
                        ExperimentPoint::new(
                            ScenarioSpec::new(GraphFamily::Ring, k, "random-walk")
                                .with_occupancy(0.5)
                                .with_placement(Placement::ScatteredUniform)
                                .with_schedule(schedule)
                                .with_crashes(crashes_for(k)),
                            reps,
                        )
                    })
                    .collect(),
            )
        };
        let combined = Section::new(
            "churn-crash",
            "Edge churn and crash faults at once, SYNC (rounds)",
            ks.iter()
                .map(|&k| {
                    ExperimentPoint::new(
                        ScenarioSpec::new(GraphFamily::Ring, k, "random-walk")
                            .with_occupancy(0.5)
                            .with_dynamic_ring(1)
                            .with_crashes(crashes_for(k)),
                        reps,
                    )
                })
                .collect(),
        );
        CampaignSpec {
            name: "fault-worlds".into(),
            mode,
            seed,
            sections: vec![
                dyn_section(
                    "dyn-ring-sync",
                    "Dynamic ring, one edge down per round, SYNC (rounds)",
                    Schedule::Sync,
                ),
                dyn_section(
                    "dyn-ring-async-lag",
                    "Dynamic ring, one edge down per epoch, ASYNC lagging (epochs)",
                    lag,
                ),
                crash_section(
                    "crash-sync",
                    "Crash faults, scattered starts, SYNC (rounds)",
                    Schedule::Sync,
                ),
                crash_section(
                    "crash-async-lag",
                    "Crash faults, scattered starts, ASYNC lagging (epochs)",
                    lag,
                ),
                combined,
            ],
        }
    }

    /// An ad-hoc campaign from explicit scenarios (the CLI's `--scenario`
    /// path): one section, `reps` repetitions per scenario.
    pub fn custom(scenarios: Vec<ScenarioSpec>, reps: usize, seed: u64) -> CampaignSpec {
        CampaignSpec {
            name: "custom".into(),
            mode: Mode::Quick,
            seed,
            sections: vec![Section::new(
                "custom",
                "ad-hoc scenario grid",
                scenarios
                    .into_iter()
                    .map(|s| ExperimentPoint::new(s, reps.max(1)))
                    .collect(),
            )],
        }
    }

    /// Resolve a named campaign.
    pub fn by_name(name: &str, mode: Mode, seed: u64) -> Option<CampaignSpec> {
        match name {
            "table1" => Some(CampaignSpec::table1(mode, seed)),
            "figures" => Some(CampaignSpec::figures(mode, seed)),
            "placements" => Some(CampaignSpec::placements(mode, seed)),
            "scale" => Some(CampaignSpec::scale(mode, seed)),
            "fault-worlds" => Some(CampaignSpec::fault_worlds(mode, seed)),
            "mini" => Some(CampaignSpec::mini(mode, seed)),
            _ => None,
        }
    }

    /// Keep only the named sections (used by `--section`); unknown names
    /// yield an empty campaign, which the CLI reports as an error.
    pub fn with_sections(mut self, names: &[&str]) -> CampaignSpec {
        self.sections.retain(|s| names.contains(&s.name.as_str()));
        self
    }

    /// Expand the grid into trials, in deterministic grid order, with
    /// derived seeds.
    pub fn trials(&self) -> Vec<TrialSpec> {
        let mut out = Vec::new();
        for (si, section) in self.sections.iter().enumerate() {
            for point in &section.points {
                for rep in 0..point.repetitions.max(1) {
                    out.push(TrialSpec {
                        section: si,
                        point: point.clone(),
                        rep,
                        seed: trial_seed(self.seed, point, rep),
                    });
                }
            }
        }
        out
    }

    /// A stable fingerprint of the expanded grid + campaign seed, recorded
    /// in the manifest so `resume` can refuse a mismatched output
    /// directory. Derives purely from the scenarios' canonical labels (via
    /// the trial ids), never from in-memory representation details.
    pub fn grid_hash(&self) -> u64 {
        let ids: Vec<u64> = self
            .trials()
            .iter()
            .map(|t| fnv1a(t.trial_id().as_bytes()))
            .collect();
        let mut words = vec![self.seed];
        words.extend(ids);
        mix(&words)
    }
}

fn preset(mode: Mode) -> (Vec<GraphFamily>, Vec<usize>, usize) {
    match mode {
        Mode::Quick => (GraphFamily::quick(), quick_ks(), 1),
        Mode::Full => (GraphFamily::all(), full_ks(), 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_core::scenario::Registry;

    #[test]
    fn section_points_cover_the_grid() {
        let pts = section_points(
            &[GraphFamily::Line, GraphFamily::Star],
            &[16, 32],
            &["ks-dfs", "probe-dfs"],
            Placement::Rooted,
            Schedule::Sync,
            1,
        );
        assert_eq!(pts.len(), 2 * 2 * 2);
    }

    #[test]
    fn trial_seeds_are_stable_and_distinct() {
        let spec = CampaignSpec::table1(Mode::Quick, 42);
        let a = spec.trials();
        let b = spec.trials();
        assert_eq!(a.len(), b.len());
        let mut seeds: Vec<u64> = a.iter().map(|t| t.seed).collect();
        assert_eq!(seeds, b.iter().map(|t| t.seed).collect::<Vec<_>>());
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len(), "trial seeds must not collide");
    }

    #[test]
    fn trial_seeds_do_not_depend_on_grid_position() {
        let spec = CampaignSpec::table1(Mode::Quick, 42);
        let trials = spec.trials();
        for t in &trials {
            assert_eq!(t.seed, trial_seed(42, &t.point, t.rep));
        }
        // A different campaign seed moves every trial seed.
        let other = CampaignSpec::table1(Mode::Quick, 43).trials();
        assert!(trials.iter().zip(&other).all(|(a, b)| a.seed != b.seed));
    }

    #[test]
    fn grid_hash_detects_mode_seed_and_section_changes() {
        let base = CampaignSpec::table1(Mode::Quick, 1).grid_hash();
        assert_eq!(base, CampaignSpec::table1(Mode::Quick, 1).grid_hash());
        assert_ne!(base, CampaignSpec::table1(Mode::Quick, 2).grid_hash());
        assert_ne!(base, CampaignSpec::table1(Mode::Full, 1).grid_hash());
        assert_ne!(
            base,
            CampaignSpec::table1(Mode::Quick, 1)
                .with_sections(&["sync-rooted"])
                .grid_hash()
        );
        assert_ne!(base, CampaignSpec::figures(Mode::Quick, 1).grid_hash());
        assert_ne!(base, CampaignSpec::placements(Mode::Quick, 1).grid_hash());
    }

    #[test]
    fn by_name_round_trips() {
        for name in [
            "table1",
            "figures",
            "placements",
            "scale",
            "fault-worlds",
            "mini",
        ] {
            let spec = CampaignSpec::by_name(name, Mode::Quick, 7).unwrap();
            assert_eq!(spec.name, name);
        }
        assert!(CampaignSpec::by_name("nope", Mode::Quick, 7).is_none());
    }

    #[test]
    fn every_named_campaign_validates_against_the_builtin_registry() {
        let reg = Registry::builtin();
        for name in [
            "table1",
            "figures",
            "placements",
            "scale",
            "fault-worlds",
            "mini",
        ] {
            let spec = CampaignSpec::by_name(name, Mode::Full, 7).unwrap();
            for trial in spec.trials() {
                trial
                    .point
                    .scenario
                    .validate(&reg)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn placements_campaign_covers_new_scenario_classes_under_all_schedules() {
        let spec = CampaignSpec::placements(Mode::Quick, 1);
        assert_eq!(spec.sections.len(), 3, "one section per schedule family");
        for section in &spec.sections {
            let labels: Vec<String> = section.points.iter().map(|p| p.point_id()).collect();
            for placement in ["scatter", "cluster4", "spread"] {
                assert!(
                    labels.iter().any(|l| l.contains(&format!("/{placement}/"))),
                    "{} misses {placement}",
                    section.name
                );
            }
        }
    }

    #[test]
    fn scale_campaign_carries_the_async_sections() {
        let quick = CampaignSpec::scale(Mode::Quick, 1);
        let quick_labels: Vec<String> = quick.trials().iter().map(|t| t.point.point_id()).collect();
        assert!(
            quick_labels
                .iter()
                .any(|l| l == "line/k100000/rooted/async-lag4/probe-dfs"),
            "quick mode misses the async smoke line: {quick_labels:?}"
        );
        let full = CampaignSpec::scale(Mode::Full, 1);
        let full_labels: Vec<String> = full.trials().iter().map(|t| t.point.point_id()).collect();
        // The paper's adversarial regime at the engine's full scale: every
        // structured family at n = 10^6 under the lagging adversary, plus
        // the adaptive starvation grid.
        for expected in [
            "line/k1000000/rooted/async-lag4/probe-dfs",
            "ring/k1000000/rooted/async-lag4/probe-dfs",
            "torus/k1000000/rooted/async-lag4/probe-dfs",
            "hypercube/k1048576/rooted/async-lag4/probe-dfs",
            "line/k100000/rooted/async-target4/probe-dfs",
        ] {
            assert!(
                full_labels.iter().any(|l| l == expected),
                "full mode misses {expected}"
            );
        }
    }

    #[test]
    fn fault_worlds_campaign_covers_every_fault_dimension() {
        let spec = CampaignSpec::fault_worlds(Mode::Quick, 1);
        assert_eq!(spec.sections.len(), 5);
        let labels: Vec<String> = spec.trials().iter().map(|t| t.point.point_id()).collect();
        for expected in [
            "ring/k64/occ0.5/rooted/sync/dyn-ring1/probe-dfs",
            "ring/k64/occ0.5/rooted/async-lag4/dyn-ring1/random-walk",
            "ring/k64/occ0.5/scatter/sync/crash8/random-walk",
            "ring/k64/occ0.5/scatter/async-lag4/crash8/random-walk",
            "ring/k64/occ0.5/rooted/sync/dyn-ring1/crash8/random-walk",
        ] {
            assert!(
                labels.iter().any(|l| l == expected),
                "fault-worlds misses {expected}: {labels:?}"
            );
        }
    }

    #[test]
    fn custom_campaigns_expand_like_named_ones() {
        let scenarios = vec![
            ScenarioSpec::new(GraphFamily::Star, 8, "probe-dfs"),
            ScenarioSpec::new(GraphFamily::Line, 8, "ks-dfs")
                .with_placement(Placement::ScatteredUniform),
        ];
        let spec = CampaignSpec::custom(scenarios, 2, 5);
        assert_eq!(spec.trials().len(), 4);
        assert_eq!(spec.name, "custom");
        // Seeds still derive from labels, not positions.
        for t in spec.trials() {
            assert_eq!(t.seed, trial_seed(5, &t.point, t.rep));
        }
    }

    #[test]
    fn mode_labels_round_trip() {
        for mode in [Mode::Quick, Mode::Full] {
            assert_eq!(Mode::from_label(mode.label()), Some(mode));
        }
        assert_eq!(Mode::from_label("medium"), None);
    }
}
