//! Campaign orchestration: expand a grid, skip completed trials, execute
//! the rest on the work-stealing engine, stream checkpoints.

use crate::engine::{parallel_map, EngineStats};
use crate::grid::{CampaignSpec, TrialSpec};
use crate::store::CampaignStore;
use crate::telemetry::{timeline_to_jsonl, TelemetryHandle, TimelineSidecar, TrialEvent};
use disp_analysis::jsonl::dedup_trials;
use disp_analysis::TrialRecord;
use disp_core::scenario::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// What a campaign execution did.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Trials in the (possibly section-filtered) grid.
    pub total: usize,
    /// Trials skipped because the store already had them.
    pub skipped: usize,
    /// Trials executed in this call.
    pub executed: usize,
    /// Wall-clock time of the execution phase.
    pub wall: Duration,
    /// Engine execution counters.
    pub stats: EngineStats,
    /// Whether the run was cut short by the cancellation latch — `true`
    /// means some grid trials were neither on disk nor executed (the
    /// checkpoint, if any, is a valid prefix to `resume` from).
    pub cancelled: bool,
}

/// Execute `spec` on `threads` workers, resolving algorithms through
/// `registry` — pass [`Registry::builtin`] for the paper's algorithms, or
/// a registry extended with your own factories.
///
/// Every scenario in the grid is validated against the registry before
/// anything runs, so an illegal combination is a typed error up front, not
/// a mid-campaign panic.
///
/// With a store, completed trials (already on disk) are skipped and every
/// finished trial is appended + flushed before the engine moves on; without
/// one the campaign runs purely in memory. Returns the **complete** record
/// set for the grid — executed this call or recovered from the store — in
/// deterministic grid order, plus a summary.
pub fn run_campaign(
    spec: &CampaignSpec,
    store: Option<&CampaignStore>,
    threads: usize,
    registry: &Registry,
) -> Result<(Vec<TrialRecord>, RunSummary), String> {
    run_campaign_cancellable(spec, store, threads, registry, &AtomicBool::new(false))
}

/// [`run_campaign`] with a cooperative cancellation latch.
///
/// Once `cancel` reads `true`, workers stop *starting* trials; everything
/// already in flight finishes and is checkpointed normally, so the store is
/// left a valid prefix of the grid and `resume` continues exactly where the
/// interrupt landed. The returned summary has `cancelled` set if any grid
/// trial was left unexecuted. This is the path behind Ctrl-C handling in
/// the CLI (`disp_campaign::signal`) and job cancellation in `disp-serve`.
pub fn run_campaign_cancellable(
    spec: &CampaignSpec,
    store: Option<&CampaignStore>,
    threads: usize,
    registry: &Registry,
    cancel: &AtomicBool,
) -> Result<(Vec<TrialRecord>, RunSummary), String> {
    run_campaign_telemetered(spec, store, threads, registry, cancel, None)
}

/// [`run_campaign_cancellable`] with an optional live-telemetry handle.
///
/// With a handle, workers emit [`TrialEvent`]s as trials start and finish
/// (wall-clock micros, moves, rounds), and trials satisfied from the store's
/// checkpoint emit [`TrialEvent::Cached`] up front. Telemetry is pure
/// observation: the returned records — and any store checkpoint — are
/// byte-identical with and without a handle, across thread counts (timing
/// is non-content and never enters the results stream; see
/// [`crate::telemetry`]).
pub fn run_campaign_telemetered(
    spec: &CampaignSpec,
    store: Option<&CampaignStore>,
    threads: usize,
    registry: &Registry,
    cancel: &AtomicBool,
    telemetry: Option<&TelemetryHandle>,
) -> Result<(Vec<TrialRecord>, RunSummary), String> {
    run_campaign_batched(spec, store, threads, 1, registry, cancel, telemetry)
}

/// [`run_campaign_telemetered`] with **batched micro-trials**: work is
/// stolen at the granularity of `batch` contiguous grid trials instead of
/// single trials, and each batch runs its trials sequentially through one
/// [`disp_sim::WorldPool`] — after the batch's first trial, world
/// construction reuses the pooled buffers and allocates nothing new. This
/// is how campaigns of many *small* trials (k ≲ few hundred) amortize
/// per-trial setup; for grids of big trials keep `batch = 1`, which is
/// exactly the unbatched path.
///
/// Semantics are unchanged in every observable way:
///
/// - **Results** are byte-identical to the unbatched path for any thread
///   count (each trial still depends only on its own seed; the pool
///   contract is state identity).
/// - **Checkpointing** appends a batch's records in grid order as each
///   batch completes; a kill loses at most the in-flight batches, and
///   `resume` skips by trial id exactly as before.
/// - **Telemetry** still emits per-trial start/completion events from the
///   worker.
/// - **Cancellation** is still checked per trial, so a set latch drains
///   even a large batch in microseconds.
///
/// The summary's [`EngineStats::per_worker`] counts batches (the stealing
/// unit), not trials, when `batch > 1`.
pub fn run_campaign_batched(
    spec: &CampaignSpec,
    store: Option<&CampaignStore>,
    threads: usize,
    batch: usize,
    registry: &Registry,
    cancel: &AtomicBool,
    telemetry: Option<&TelemetryHandle>,
) -> Result<(Vec<TrialRecord>, RunSummary), String> {
    run_campaign_observed(
        spec, store, threads, batch, registry, cancel, telemetry, None,
    )
}

/// [`run_campaign_batched`] with an optional flight-recorder sidecar.
///
/// With a sidecar, every *executed* trial also records a decimated
/// [`disp_sim::Timeline`] and appends it (as one JSONL chunk) to the
/// sidecar as the trial finishes. Trials satisfied from the checkpoint
/// never re-execute, so they contribute no timeline — the sidecar covers
/// exactly what this call ran. Recording is pure observation: the returned
/// records and any store checkpoint are byte-identical with and without a
/// sidecar, across thread counts and batch sizes (pinned by test and CI).
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_observed(
    spec: &CampaignSpec,
    store: Option<&CampaignStore>,
    threads: usize,
    batch: usize,
    registry: &Registry,
    cancel: &AtomicBool,
    telemetry: Option<&TelemetryHandle>,
    timelines: Option<&TimelineSidecar>,
) -> Result<(Vec<TrialRecord>, RunSummary), String> {
    let grid = spec.trials();
    let total = grid.len();

    for point in spec.sections.iter().flat_map(|s| &s.points) {
        point
            .scenario
            .validate(registry)
            .map_err(|e| format!("scenario '{}': {e}", point.scenario.label()))?;
    }

    let (prior, completed) = match store {
        Some(store) => {
            let prior = if store.trials_path().exists() {
                store.read_trials()?.records
            } else {
                Vec::new()
            };
            let ids: std::collections::HashSet<String> =
                prior.iter().map(TrialRecord::trial_id).collect();
            (prior, ids)
        }
        None => (Vec::new(), Default::default()),
    };

    let todo: Vec<TrialSpec> = grid
        .iter()
        .filter(|t| !completed.contains(&t.trial_id()))
        .cloned()
        .collect();
    let skipped = total - todo.len();

    if let Some(telemetry) = telemetry {
        // Checkpoint hits are announced up front, in grid order: the store
        // already holds their outcomes, nothing will execute for them.
        let by_id: std::collections::HashMap<String, &TrialRecord> =
            prior.iter().map(|r| (r.trial_id(), r)).collect();
        for trial in &grid {
            if let Some(record) = by_id.get(&trial.trial_id()) {
                telemetry.emit(TrialEvent::cached(record));
            }
        }
    }

    let writer = match store {
        Some(store) => Some(store.appender()?),
        None => None,
    };
    let start = Instant::now();
    let todo_len = todo.len();
    // One trial through the latch + telemetry + pool plumbing; shared by
    // both execution shapes below.
    let run_one = |trial: &TrialSpec, pool: &mut disp_sim::WorldPool| -> Option<TrialRecord> {
        // The latch is checked per trial: a set latch makes the
        // remaining queue drain in microseconds while in-flight trials
        // complete and checkpoint normally.
        if cancel.load(Ordering::SeqCst) {
            None
        } else {
            if let Some(telemetry) = telemetry {
                telemetry.emit(TrialEvent::started(&trial.point.point_id(), trial.rep));
            }
            let begun = Instant::now();
            let record = match timelines {
                // Recorded trials skip the pool: pooling is a perf-only
                // contract (state identity), so results are unchanged, and
                // grids big enough to want timelines are not the
                // many-tiny-trials shape the pool exists for.
                Some(sidecar) => {
                    let (record, timeline) = trial.point.run_trial_with_timeline(
                        registry,
                        trial.rep,
                        trial.seed,
                        disp_sim::DEFAULT_TIMELINE_BUDGET,
                    );
                    if let Some(timeline) = timeline {
                        sidecar.append(&timeline_to_jsonl(
                            &timeline,
                            &trial.point.point_id(),
                            trial.seed,
                        ));
                    }
                    record
                }
                None => trial
                    .point
                    .run_trial_pooled(registry, trial.rep, trial.seed, pool),
            };
            if let Some(telemetry) = telemetry {
                let wall_micros = begun.elapsed().as_micros() as u64;
                telemetry.emit(TrialEvent::completed(&record, wall_micros));
            }
            Some(record)
        }
    };
    let (executed, stats) = if batch <= 1 {
        parallel_map(
            todo,
            threads,
            |_, trial: &TrialSpec| run_one(trial, &mut disp_sim::WorldPool::new()),
            |_, record: &Option<TrialRecord>| {
                if let (Some(w), Some(record)) = (&writer, record) {
                    w.append(record);
                }
            },
        )
    } else {
        // Contiguous runs of `batch` trials are the stealing unit; each
        // runs sequentially through one warm pool.
        let batches: Vec<Vec<TrialSpec>> = {
            let mut todo = todo;
            let mut out = Vec::with_capacity(todo.len().div_ceil(batch));
            while !todo.is_empty() {
                let rest = todo.split_off(batch.min(todo.len()));
                out.push(std::mem::replace(&mut todo, rest));
            }
            out
        };
        let (nested, stats) = parallel_map(
            batches,
            threads,
            |_, batch: &Vec<TrialSpec>| {
                let mut pool = disp_sim::WorldPool::new();
                batch
                    .iter()
                    .map(|trial| run_one(trial, &mut pool))
                    .collect::<Vec<Option<TrialRecord>>>()
            },
            |_, records: &Vec<Option<TrialRecord>>| {
                if let Some(w) = &writer {
                    for record in records.iter().flatten() {
                        w.append(record);
                    }
                }
            },
        );
        (nested.into_iter().flatten().collect(), stats)
    };
    let wall = start.elapsed();

    // Merge prior + fresh records and return them in grid order.
    let executed: Vec<TrialRecord> = executed.into_iter().flatten().collect();
    let executed_count = executed.len();
    let cancelled = executed_count < todo_len;
    let mut all = prior;
    all.extend(executed);
    let all = dedup_trials(all);
    let by_id: std::collections::HashMap<String, TrialRecord> =
        all.into_iter().map(|r| (r.trial_id(), r)).collect();
    let ordered: Vec<TrialRecord> = grid
        .iter()
        .filter_map(|t| by_id.get(&t.trial_id()).cloned())
        .collect();

    Ok((
        ordered,
        RunSummary {
            total,
            skipped,
            executed: executed_count,
            wall,
            stats,
            cancelled,
        },
    ))
}

/// Execute an explicit list of trials — a shard batch — on the
/// work-stealing engine, without grid expansion, store, or telemetry.
///
/// This is the batch-granular entry point the cluster worker uses: the
/// coordinator already expanded and deduplicated the grid, so the worker
/// receives bare [`TrialSpec`]s and needs only deterministic execution.
/// Results come back in item order, each paired with its wall-clock
/// micros; a slot is `None` iff the latch was set before it started (the
/// lease was lost — the batch's new owner re-executes it).
///
/// The records are byte-identical to what [`run_campaign`] would produce
/// for the same slots: the trial seed is carried in the spec, and the
/// engine's work stealing never touches result content.
pub fn run_trial_batch(
    trials: Vec<TrialSpec>,
    threads: usize,
    registry: &Registry,
    cancel: &AtomicBool,
) -> Vec<Option<(TrialRecord, u64)>> {
    let (results, _stats) = parallel_map(
        trials,
        threads,
        |_, trial: &TrialSpec| {
            if cancel.load(Ordering::SeqCst) {
                None
            } else {
                let begun = Instant::now();
                let record = trial.point.run_trial(registry, trial.rep, trial.seed);
                Some((record, begun.elapsed().as_micros() as u64))
            }
        },
        |_, _: &Option<(TrialRecord, u64)>| {},
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Mode;
    use disp_core::scenario::{ScenarioSpec, Schedule};
    use disp_graph::generators::GraphFamily;
    use disp_sim::Placement;

    fn reg() -> Registry {
        Registry::builtin()
    }

    fn tiny_spec(seed: u64) -> CampaignSpec {
        let mut spec = CampaignSpec::table1(Mode::Quick, seed);
        // Shrink to a fast subset: one section, small k only.
        spec.sections.truncate(1);
        spec.sections[0].points.retain(|p| p.scenario.k <= 32);
        spec
    }

    #[test]
    fn in_memory_run_covers_the_grid_in_order() {
        let spec = tiny_spec(3);
        let (records, summary) = run_campaign(&spec, None, 2, &reg()).unwrap();
        assert_eq!(records.len(), summary.total);
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.executed, summary.total);
        let expected: Vec<String> = spec.trials().iter().map(|t| t.trial_id()).collect();
        let got: Vec<String> = records.iter().map(TrialRecord::trial_id).collect();
        assert_eq!(got, expected);
        assert!(records.iter().all(|r| r.dispersed));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = tiny_spec(4);
        let (a, _) = run_campaign(&spec, None, 1, &reg()).unwrap();
        let (b, _) = run_campaign(&spec, None, 4, &reg()).unwrap();
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        assert_eq!(lines(&a), lines(&b));
    }

    #[test]
    fn checkpointed_run_resumes_without_recomputing() {
        let dir =
            std::env::temp_dir().join(format!("disp-campaign-run-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_spec(5);
        let grid = spec.trials();
        let registry = reg();

        // Simulate a killed run: checkpoint only the first third by hand.
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        let writer = store.appender().unwrap();
        let prefix = grid.len() / 3;
        for t in &grid[..prefix] {
            writer.append(&t.point.run_trial(&registry, t.rep, t.seed));
        }
        drop(writer);

        let (records, summary) = run_campaign(&spec, Some(&store), 2, &registry).unwrap();
        assert_eq!(summary.total, grid.len());
        assert_eq!(summary.skipped, prefix);
        assert_eq!(summary.executed, grid.len() - prefix);
        assert_eq!(records.len(), grid.len());

        // A second resume has nothing left to do and returns identical data.
        let (again, summary2) = run_campaign(&spec, Some(&store), 2, &registry).unwrap();
        assert_eq!(summary2.executed, 0);
        assert_eq!(summary2.skipped, grid.len());
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        assert_eq!(lines(&records), lines(&again));

        // And the checkpoint file matches an unstored run, line for line.
        let (memory, _) = run_campaign(&spec, None, 1, &registry).unwrap();
        let mut on_disk: Vec<String> = store
            .read_trials()
            .unwrap()
            .records
            .iter()
            .map(TrialRecord::to_json_line)
            .collect();
        let mut in_memory = lines(&memory);
        on_disk.sort();
        in_memory.sort();
        assert_eq!(on_disk, in_memory);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaigns_with_async_schedules_disperse() {
        let spec = CampaignSpec {
            name: "table1".into(),
            mode: Mode::Quick,
            seed: 11,
            sections: vec![crate::grid::Section::new(
                "async-mini",
                "mini async",
                crate::grid::section_points(
                    &[GraphFamily::Star, GraphFamily::RandomTree],
                    &[16],
                    &["ks-dfs", "probe-dfs"],
                    Placement::Rooted,
                    Schedule::AsyncRandom { prob: 0.7, seed: 0 },
                    2,
                ),
            )],
        };
        let (records, _) = run_campaign(&spec, None, 2, &reg()).unwrap();
        assert_eq!(records.len(), 2 * 2 * 2);
        assert!(records.iter().all(|r| r.dispersed));
        assert!(records.iter().all(|r| r.outcome.epochs >= 1));
    }

    #[test]
    fn pre_set_cancel_latch_executes_nothing_and_reports_cancelled() {
        let spec = tiny_spec(6);
        let cancel = AtomicBool::new(true);
        let (records, summary) = run_campaign_cancellable(&spec, None, 2, &reg(), &cancel).unwrap();
        assert!(records.is_empty());
        assert_eq!(summary.executed, 0);
        assert!(summary.cancelled);
        assert_eq!(summary.total, spec.trials().len());
    }

    #[test]
    fn cancelled_checkpoint_is_a_resumable_prefix() {
        let dir =
            std::env::temp_dir().join(format!("disp-campaign-cancel-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_spec(7);
        let registry = reg();
        let store = CampaignStore::create(&dir, &spec, false).unwrap();

        // Latch trips after the third completed trial: the rest of the grid
        // must be skipped, and what is on disk must be a clean prefix.
        let cancel = AtomicBool::new(false);
        let done = std::sync::atomic::AtomicUsize::new(0);
        let latching = {
            let cancel = &cancel;
            let done = &done;
            move || {
                if done.fetch_add(1, Ordering::SeqCst) + 1 >= 3 {
                    cancel.store(true, Ordering::SeqCst);
                }
            }
        };
        // Drive the latch from on_done via a wrapper campaign run: use one
        // thread so exactly 3 trials complete before the latch trips.
        let grid = spec.trials();
        let writer = store.appender().unwrap();
        for t in &grid {
            if cancel.load(Ordering::SeqCst) {
                break;
            }
            writer.append(&t.point.run_trial(&registry, t.rep, t.seed));
            latching();
        }
        drop(writer);
        assert!(cancel.load(Ordering::SeqCst));

        // Resuming through the cancellable API with a clear latch finishes
        // the grid and matches an uninterrupted run record-for-record.
        let clear = AtomicBool::new(false);
        let (records, summary) =
            run_campaign_cancellable(&spec, Some(&store), 2, &registry, &clear).unwrap();
        assert!(!summary.cancelled);
        assert_eq!(summary.skipped, 3);
        let (full, _) = run_campaign(&spec, None, 1, &registry).unwrap();
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        assert_eq!(lines(&records), lines(&full));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_mode_matches_unbatched_across_thread_counts_and_batch_sizes() {
        let spec = tiny_spec(12);
        let none = AtomicBool::new(false);
        let (reference, _) = run_campaign(&spec, None, 1, &reg()).unwrap();
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        for threads in [1, 4] {
            for batch in [2, 7, 1000] {
                let (records, summary) =
                    run_campaign_batched(&spec, None, threads, batch, &reg(), &none, None).unwrap();
                assert_eq!(
                    lines(&records),
                    lines(&reference),
                    "threads={threads} batch={batch}"
                );
                assert_eq!(summary.executed, reference.len());
                assert!(!summary.cancelled);
            }
        }
    }

    #[test]
    fn batched_checkpoint_resumes_into_identical_records() {
        let dir = std::env::temp_dir().join(format!(
            "disp-campaign-batch-resume-test-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let spec = tiny_spec(13);
        let registry = reg();
        let grid = spec.trials();

        // Simulate a mid-batch kill: checkpoint an arbitrary partial subset
        // (not even a prefix — batch completion order is not grid order).
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        let writer = store.appender().unwrap();
        for t in grid.iter().skip(1).step_by(2) {
            writer.append(&t.point.run_trial(&registry, t.rep, t.seed));
        }
        drop(writer);

        let none = AtomicBool::new(false);
        let (records, summary) =
            run_campaign_batched(&spec, Some(&store), 2, 3, &registry, &none, None).unwrap();
        assert_eq!(summary.skipped, grid.len() / 2);
        let (full, _) = run_campaign(&spec, None, 1, &registry).unwrap();
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        assert_eq!(lines(&records), lines(&full));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeline_recording_never_changes_results() {
        // Satellite acceptance: `trials.jsonl` content is byte-identical
        // with the flight recorder on and off, across thread counts and
        // batch sizes.
        let spec = tiny_spec(14);
        let none = AtomicBool::new(false);
        let (reference, _) = run_campaign(&spec, None, 1, &reg()).unwrap();
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        let dir = std::env::temp_dir().join(format!(
            "disp-campaign-timeline-sidecar-test-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for threads in [1, 4] {
            for batch in [1, 32] {
                let path = dir.join(format!("timelines-t{threads}-b{batch}.jsonl"));
                let sidecar = TimelineSidecar::create(&path).unwrap();
                let (records, summary) = run_campaign_observed(
                    &spec,
                    None,
                    threads,
                    batch,
                    &reg(),
                    &none,
                    None,
                    Some(&sidecar),
                )
                .unwrap();
                assert_eq!(
                    lines(&records),
                    lines(&reference),
                    "threads={threads} batch={batch}"
                );
                assert_eq!(summary.executed, reference.len());
                // One whole timeline chunk per executed trial, never
                // interleaved: starts and ends pair up in order.
                let sidecar_text = std::fs::read_to_string(&path).unwrap();
                let starts = sidecar_text
                    .lines()
                    .filter(|l| l.contains("\"timeline_start\""))
                    .count();
                let ends = sidecar_text
                    .lines()
                    .filter(|l| l.contains("\"timeline_end\""))
                    .count();
                assert_eq!(starts, reference.len());
                assert_eq!(ends, reference.len());
                let mut open = false;
                for line in sidecar_text.lines() {
                    if line.contains("\"timeline_start\"") {
                        assert!(!open, "interleaved timeline chunks");
                        open = true;
                    } else if line.contains("\"timeline_end\"") {
                        assert!(open);
                        open = false;
                    }
                }
                assert!(!open);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trial_batches_match_the_campaign_path_across_thread_counts() {
        let spec = tiny_spec(9);
        let grid = spec.trials();
        let (campaign, _) = run_campaign(&spec, None, 1, &reg()).unwrap();
        for threads in [1, 4] {
            let results = run_trial_batch(grid.clone(), threads, &reg(), &AtomicBool::new(false));
            let lines: Vec<String> = results
                .iter()
                .map(|r| r.as_ref().unwrap().0.to_json_line())
                .collect();
            let expected: Vec<String> = campaign.iter().map(TrialRecord::to_json_line).collect();
            assert_eq!(lines, expected, "threads={threads}");
        }
    }

    #[test]
    fn trial_batches_honor_the_cancel_latch() {
        let spec = tiny_spec(10);
        let results = run_trial_batch(spec.trials(), 2, &reg(), &AtomicBool::new(true));
        assert!(results.iter().all(Option::is_none));
    }

    #[test]
    fn invalid_scenarios_fail_before_anything_runs() {
        let spec = CampaignSpec::custom(
            vec![ScenarioSpec::new(GraphFamily::Star, 8, "probe-dfs")
                .with_placement(Placement::ScatteredUniform)],
            1,
            1,
        );
        let err = run_campaign(&spec, None, 1, &reg()).unwrap_err();
        assert!(err.contains("rooted"), "{err}");
    }

    #[test]
    fn placement_campaign_runs_deterministically_across_thread_counts() {
        let mut spec = CampaignSpec::placements(Mode::Quick, 21);
        // Shrink to a fast subset covering every placement × schedule.
        for section in &mut spec.sections {
            section.points.retain(|p| p.scenario.k == 16);
        }
        let (a, _) = run_campaign(&spec, None, 1, &reg()).unwrap();
        let (b, _) = run_campaign(&spec, None, 4, &reg()).unwrap();
        assert!(!a.is_empty());
        assert!(a.iter().all(|r| r.dispersed));
        let lines = |rs: &[TrialRecord]| -> Vec<String> {
            rs.iter().map(TrialRecord::to_json_line).collect()
        };
        assert_eq!(lines(&a), lines(&b));
    }
}
