//! Rendering of campaign results: per-section measurement tables, log–log
//! scaling fits, CSV series, and the machine-readable JSON document.

use crate::grid::{CampaignSpec, Section};
use disp_analysis::experiment::Measurement;
use disp_analysis::fit::loglog_fit;
use disp_analysis::json::Json;
use disp_analysis::jsonl::merge_trials;
use disp_analysis::report::{
    csv_table, markdown_table, measurement_header, measurement_row, measurement_to_json,
};
use disp_analysis::TrialRecord;
use std::collections::BTreeMap;

/// Aggregate `records` into per-point measurements and order them by the
/// campaign's grid order, grouped per section.
///
/// Records that do not belong to the grid (foreign files) are ignored;
/// missing points simply do not appear — `report` works on partial
/// (killed/resumed) campaigns.
pub fn section_measurements(
    spec: &CampaignSpec,
    records: Vec<TrialRecord>,
) -> Vec<(&Section, Vec<Measurement>)> {
    let mut by_id: BTreeMap<String, Measurement> = merge_trials(records)
        .into_iter()
        .map(|m| (m.point.point_id(), m))
        .collect();
    spec.sections
        .iter()
        .map(|section| {
            let ms = section
                .points
                .iter()
                .filter_map(|p| by_id.remove(&p.point_id()))
                .collect();
            (section, ms)
        })
        .collect()
}

/// Render one section as a Markdown table plus its scaling-exponent fits.
pub fn render_section_markdown(section: &Section, measurements: &[Measurement]) -> String {
    let mut out = format!("## {}\n\n", section.title);
    let rows: Vec<Vec<String>> = measurements.iter().map(measurement_row).collect();
    out.push_str(&markdown_table(&measurement_header(), &rows));
    out.push_str(&render_fits(measurements));
    out
}

/// Render one section as CSV (the figure series).
pub fn render_section_csv(measurements: &[Measurement]) -> String {
    let rows: Vec<Vec<String>> = measurements.iter().map(measurement_row).collect();
    csv_table(&measurement_header(), &rows)
}

/// Encode a whole campaign report as one JSON document:
///
/// ```json
/// {"campaign":"mini","mode":"quick","seed":"…","sections":
///   [{"name":"…","title":"…","measurements":[{…}, …]}]}
/// ```
///
/// Measurements use [`disp_analysis::report::measurement_to_json`] — the
/// same encoder behind `disp-serve`'s results-summary endpoint — so
/// `disp-campaign report --format json` and the HTTP API emit one schema.
pub fn campaign_report_json(
    spec: &CampaignSpec,
    sections: &[(&Section, Vec<Measurement>)],
) -> Json {
    Json::Obj(vec![
        ("campaign".into(), Json::Str(spec.name.clone())),
        ("mode".into(), Json::Str(spec.mode.label().to_string())),
        ("seed".into(), Json::from_u64_lossless(spec.seed)),
        (
            "sections".into(),
            Json::Arr(
                sections
                    .iter()
                    .map(|(section, ms)| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(section.name.clone())),
                            ("title".into(), Json::Str(section.title.clone())),
                            (
                                "measurements".into(),
                                Json::Arr(ms.iter().map(measurement_to_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Log–log scaling exponents of time vs k per (family, algorithm,
/// placement) series — placement is part of the key because a section (the
/// `placements` campaign) may sweep several placements of the same
/// algorithm, and mixing their times would fit a meaningless exponent.
pub fn render_fits(measurements: &[Measurement]) -> String {
    let mut series: BTreeMap<(String, String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for m in measurements {
        series
            .entry((
                m.point.scenario.family.label(),
                m.point.scenario.algorithm.clone(),
                m.point.scenario.placement.label(),
            ))
            .or_default()
            .push((m.k as f64, m.time_mean));
    }
    let mut rows = Vec::new();
    for ((family, algo, placement), pts) in series {
        if let Some(fit) = loglog_fit(&pts) {
            rows.push(vec![
                family,
                algo,
                placement,
                format!("{:.2}", fit.exponent),
                format!("{:.3}", fit.r_squared),
            ]);
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    format!(
        "\n### Log-log scaling exponents (time vs k)\n\n{}",
        markdown_table(
            &["family", "algorithm", "placement", "exponent", "R^2"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Mode;
    use crate::run::run_campaign;

    #[test]
    fn partial_records_render_without_panicking() {
        let mut spec = CampaignSpec::table1(Mode::Quick, 2);
        spec.sections.truncate(1);
        spec.sections[0].points.retain(|p| p.scenario.k <= 32);
        let (records, _) =
            run_campaign(&spec, None, 1, &disp_core::scenario::Registry::builtin()).unwrap();
        let total_points = spec.sections[0].points.len();

        // Drop half the records: the report must cover what exists.
        let half: Vec<TrialRecord> = records.into_iter().take(total_points / 2).collect();
        let sections = section_measurements(&spec, half);
        assert_eq!(sections.len(), 1);
        let (section, ms) = &sections[0];
        assert_eq!(ms.len(), total_points / 2);
        let md = render_section_markdown(section, ms);
        assert!(md.contains(&section.title.to_string()));
        assert!(md.contains("| family |"));
        let csv = render_section_csv(ms);
        assert_eq!(csv.lines().count(), ms.len() + 1);
    }

    #[test]
    fn json_report_parses_and_mirrors_the_sections() {
        let mut spec = CampaignSpec::mini(crate::grid::Mode::Quick, 3);
        spec.sections.truncate(1);
        spec.sections[0].points.truncate(2);
        let (records, _) =
            run_campaign(&spec, None, 1, &disp_core::scenario::Registry::builtin()).unwrap();
        let sections = section_measurements(&spec, records);
        let doc = campaign_report_json(&spec, &sections);
        let back = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(back.get("campaign").unwrap().as_str(), Some("mini"));
        assert_eq!(back.get("seed").unwrap().as_u64_lossless(), Some(3));
        match back.get("sections") {
            Some(Json::Arr(items)) => {
                assert_eq!(items.len(), 1);
                match items[0].get("measurements") {
                    Some(Json::Arr(ms)) => assert_eq!(ms.len(), 2),
                    other => panic!("bad measurements: {other:?}"),
                }
            }
            other => panic!("bad sections: {other:?}"),
        }
    }
}
