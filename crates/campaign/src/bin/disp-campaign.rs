//! The campaign CLI: run, resume and report experiment campaigns.
//!
//! ```text
//! disp-campaign run    [--campaign table1|figures] [--quick|--full]
//!                      [--threads N] [--seed S] [--section NAME]...
//!                      [--out DIR] [--force]
//! disp-campaign resume --out DIR [--threads N]
//! disp-campaign report --out DIR [--csv DIR]
//! ```
//!
//! `run` without `--out` executes in memory and prints the report; with
//! `--out` every finished trial is checkpointed to `DIR/trials.jsonl`
//! (flushed per line), so a killed run can be continued with `resume`,
//! which skips completed trials. Results are byte-identical for any
//! `--threads` value with the same `--seed`.

use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::report::{render_section_csv, render_section_markdown, section_measurements};
use disp_campaign::run::{run_campaign, RunSummary};
use disp_campaign::store::CampaignStore;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("resume") => cmd_resume(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("disp-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
disp-campaign — parallel, deterministic experiment campaigns

USAGE:
  disp-campaign run    [--campaign table1|figures] [--quick|--full]
                       [--threads N] [--seed S] [--section NAME]...
                       [--out DIR] [--force]
  disp-campaign resume --out DIR [--threads N]
  disp-campaign report --out DIR [--csv DIR]

Trial seeds derive from (campaign seed, point id, repetition): output is
byte-identical for any --threads value. With --out, finished trials stream
to DIR/trials.jsonl (flushed per line); a killed run resumes with `resume`.
";

struct Flags {
    campaign: String,
    mode: Mode,
    threads: usize,
    seed: u64,
    sections: Vec<String>,
    out: Option<PathBuf>,
    force: bool,
    csv: Option<PathBuf>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        campaign: "table1".into(),
        mode: Mode::Quick,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
        seed: 1,
        sections: Vec::new(),
        out: None,
        force: false,
        csv: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--campaign" => flags.campaign = value("--campaign")?,
            "--quick" => flags.mode = Mode::Quick,
            "--full" => flags.mode = Mode::Full,
            "--threads" => {
                flags.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an unsigned integer".to_string())?
            }
            "--section" => flags.sections.push(value("--section")?),
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--csv" => flags.csv = Some(PathBuf::from(value("--csv")?)),
            "--force" => flags.force = true,
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    Ok(flags)
}

fn build_spec(flags: &Flags) -> Result<CampaignSpec, String> {
    let spec = CampaignSpec::by_name(&flags.campaign, flags.mode, flags.seed)
        .ok_or_else(|| format!("unknown campaign '{}'", flags.campaign))?;
    if flags.sections.is_empty() {
        return Ok(spec);
    }
    let names: Vec<&str> = flags.sections.iter().map(String::as_str).collect();
    let filtered = spec.with_sections(&names);
    if filtered.sections.is_empty() {
        return Err(format!("no section matches {:?}", flags.sections));
    }
    Ok(filtered)
}

fn print_summary(spec: &CampaignSpec, summary: &RunSummary, threads: usize) {
    eprintln!(
        "campaign {} ({}, seed {}): {} trials ({} skipped, {} executed) \
         in {:.2?} on {} thread(s); {} steals, per-worker {:?}",
        spec.name,
        spec.mode.label(),
        spec.seed,
        summary.total,
        summary.skipped,
        summary.executed,
        summary.wall,
        threads,
        summary.stats.steals,
        summary.stats.per_worker,
    );
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let spec = build_spec(&flags)?;
    let store = match &flags.out {
        Some(dir) => Some(CampaignStore::create(dir, &spec, flags.force)?),
        None => None,
    };
    let (records, summary) = run_campaign(&spec, store.as_ref(), flags.threads)?;
    print_summary(&spec, &summary, flags.threads);
    render(&flags, &spec, records)
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dir = flags
        .out
        .as_ref()
        .ok_or("resume requires --out DIR (the directory of the killed run)")?;
    let (store, manifest) = CampaignStore::open(dir)?;
    let spec = manifest.rebuild_spec()?;
    let (records, summary) = run_campaign(&spec, Some(&store), flags.threads)?;
    print_summary(&spec, &summary, flags.threads);
    render(&flags, &spec, records)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dir = flags
        .out
        .as_ref()
        .ok_or("report requires --out DIR (a campaign directory)")?;
    let (store, manifest) = CampaignStore::open(dir)?;
    let spec = manifest.rebuild_spec()?;
    let ingest = store.read_trials()?;
    if ingest.malformed > 0 {
        eprintln!(
            "note: skipped {} malformed line(s) (torn tail of a killed run)",
            ingest.malformed
        );
    }
    let completed = ingest.records.len();
    if completed < manifest.total_trials {
        eprintln!(
            "note: campaign is partial: {completed}/{} trials completed (use `resume` to finish)",
            manifest.total_trials
        );
    }
    render(&flags, &spec, ingest.records)
}

fn render(
    flags: &Flags,
    spec: &CampaignSpec,
    records: Vec<disp_analysis::TrialRecord>,
) -> Result<(), String> {
    let sections = section_measurements(spec, records);
    if let Some(csv_dir) = &flags.csv {
        std::fs::create_dir_all(csv_dir)
            .map_err(|e| format!("create {}: {e}", csv_dir.display()))?;
        for (section, ms) in &sections {
            let path = csv_dir.join(format!("{}.csv", section.name));
            std::fs::write(&path, render_section_csv(ms))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("wrote {} ({} rows)", path.display(), ms.len());
        }
        return Ok(());
    }
    println!("# Campaign {} ({} mode)\n", spec.name, spec.mode.label());
    for (section, ms) in &sections {
        println!("{}", render_section_markdown(section, ms));
    }
    Ok(())
}
