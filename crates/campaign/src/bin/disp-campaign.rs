//! The campaign CLI: run, resume and report experiment campaigns.
//!
//! ```text
//! disp-campaign run    [--campaign table1|figures|placements|scale|fault-worlds|mini]
//!                      [--scenario LABEL]... [--reps N]
//!                      [--quick|--full] [--threads N] [--seed S]
//!                      [--section NAME]... [--out DIR] [--force]
//! disp-campaign resume --out DIR [--threads N]
//! disp-campaign report --out DIR [--csv DIR]
//! disp-campaign scenarios
//! ```
//!
//! A campaign is either named (`--campaign`) or an ad-hoc grid of canonical
//! scenario labels (`--scenario`, repeatable — see `DESIGN.md` §7 for the
//! grammar, e.g. `rtree/k64/scatter/async-rand0.7/ks-dfs`). `run` without
//! `--out` executes in memory and prints the report; with `--out` every
//! finished trial is checkpointed to `DIR/trials.jsonl` (flushed per line),
//! so a killed run can be continued with `resume` — the manifest stores the
//! full grid as canonical labels, so ad-hoc campaigns resume exactly like
//! named ones. Results are byte-identical for any `--threads` value with
//! the same `--seed`.

use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::report::{
    campaign_report_json, render_section_csv, render_section_markdown, section_measurements,
};
use disp_campaign::run::{run_campaign_observed, RunSummary};
use disp_campaign::signal;
use disp_campaign::store::CampaignStore;
use disp_campaign::telemetry::{
    timeline_to_jsonl, trace_to_jsonl, JsonlSink, Telemetry, TimelineSidecar,
};
use disp_core::scenario::{grammar_help, Registry, ScenarioSpec};
use disp_sim::{DEFAULT_TIMELINE_BUDGET, DEFAULT_TRACE_CAP};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = Registry::builtin();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], &registry),
        Some("resume") => cmd_resume(&args[1..], &registry),
        Some("report") => cmd_report(&args[1..]),
        Some("trace") => cmd_trace(&args[1..], &registry),
        Some("timeline") => cmd_timeline(&args[1..], &registry),
        Some("scenarios") => {
            cmd_scenarios(&registry);
            Ok(())
        }
        Some("--help" | "-h" | "help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("disp-campaign: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
disp-campaign — parallel, deterministic experiment campaigns

USAGE:
  disp-campaign run    [--campaign table1|figures|placements|scale|fault-worlds|mini]
                       [--scenario LABEL]... [--reps N]
                       [--quick|--full] [--threads N] [--batch N] [--seed S]
                       [--section NAME]... [--out DIR] [--force] [--events]
                       [--timeline]
  disp-campaign resume --out DIR [--threads N] [--batch N] [--events]
                       [--timeline]
  disp-campaign report --out DIR [--csv DIR | --format text|json] [--timeline]
  disp-campaign trace  --scenario LABEL [--seed S] [--cap N] [--out FILE]
  disp-campaign timeline --scenario LABEL [--seed S] [--budget N] [--out FILE]
  disp-campaign scenarios    (print the scenario-label grammar + vocabulary)

--scenario runs an ad-hoc grid of canonical scenario labels, e.g.
  disp-campaign run --scenario rtree/k64/scatter/async-rand0.7/ks-dfs --reps 3

--format json prints the machine-readable report document (the same schema
disp-serve returns from GET /runs/:id/results?format=summary).

--batch N steals work in runs of N contiguous grid trials, each run reusing
one warm world-allocation pool — the fast path for campaigns of many small
trials. Results, checkpoints and resumes are byte-identical to --batch 1
(the default) for any thread count.

--events (requires --out) streams per-trial telemetry — start/finish with
wall-clock micros — to the DIR/events.jsonl sidecar. Timing is not content:
trials.jsonl stays byte-identical with or without --events.

--timeline on run/resume (requires --out) additionally records a decimated
flight-recorder timeline per executed trial — round-by-round settled /
active / parked counts and the per-role class histogram, within a fixed
point budget — to the DIR/timelines.jsonl sidecar. Recording is pure
observation: trials.jsonl stays byte-identical with or without --timeline.
On report, --timeline renders each recorded trial's settling curve as an
ASCII sparkline.

`trace` runs ONE trial of a scenario with the simulator's event trace
enabled and writes the log as JSONL (stdout, or --out FILE): every agent
move, cohort ride and protocol milestone, capped at --cap events. When the
cap truncates the log, the closing {\"event\":\"trace_end\"} line carries
\"truncated\":true plus a \"dropped\" count of events lost past the cap.

`timeline` runs ONE trial of a scenario with the flight recorder enabled
and writes the decimated timeline as JSONL (stdout, or --out FILE) —
byte-identical to what disp-serve's GET /timeline returns for the same
scenario and seed. --budget caps the number of retained points (default
4096); longer runs are decimated by stride doubling, keeping the first and
final boundaries exact.

Trial seeds derive from (campaign seed, canonical scenario label,
repetition): output is byte-identical for any --threads value. With --out,
finished trials stream to DIR/trials.jsonl (flushed per line); a killed run
resumes with `resume` — the manifest stores the grid as canonical labels,
so ad-hoc --scenario campaigns resume exactly like named ones. SIGINT and
SIGTERM stop a run gracefully: in-flight trials finish and checkpoint, and
the exact resume command is printed before exiting.
";

struct Flags {
    campaign: Option<String>,
    scenarios: Vec<String>,
    reps: Option<usize>,
    mode: Mode,
    threads: usize,
    batch: usize,
    seed: u64,
    sections: Vec<String>,
    out: Option<PathBuf>,
    force: bool,
    csv: Option<PathBuf>,
    format: Format,
    events: bool,
    cap: Option<usize>,
    timeline: bool,
    budget: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        campaign: None,
        scenarios: Vec::new(),
        reps: None,
        mode: Mode::Quick,
        threads: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
        batch: 1,
        seed: 1,
        sections: Vec::new(),
        out: None,
        force: false,
        csv: None,
        format: Format::Text,
        events: false,
        cap: None,
        timeline: false,
        budget: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--campaign" => flags.campaign = Some(value("--campaign")?),
            "--scenario" => flags.scenarios.push(value("--scenario")?),
            "--reps" => {
                flags.reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|_| "--reps expects a positive integer".to_string())?,
                )
            }
            "--quick" => flags.mode = Mode::Quick,
            "--full" => flags.mode = Mode::Full,
            "--threads" => {
                flags.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?
            }
            "--batch" => {
                let batch: usize = value("--batch")?
                    .parse()
                    .map_err(|_| "--batch expects a positive integer".to_string())?;
                if batch == 0 {
                    return Err("--batch expects a positive integer".into());
                }
                flags.batch = batch;
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed expects an unsigned integer".to_string())?
            }
            "--section" => flags.sections.push(value("--section")?),
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--csv" => flags.csv = Some(PathBuf::from(value("--csv")?)),
            "--format" => {
                flags.format = match value("--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("--format expects text|json, got '{other}'")),
                }
            }
            "--force" => flags.force = true,
            "--events" => flags.events = true,
            "--timeline" => flags.timeline = true,
            "--budget" => {
                let budget: usize = value("--budget")?
                    .parse()
                    .map_err(|_| "--budget expects a positive integer".to_string())?;
                if budget == 0 {
                    return Err("--budget expects a positive integer".into());
                }
                flags.budget = Some(budget);
            }
            "--cap" => {
                let cap: usize = value("--cap")?
                    .parse()
                    .map_err(|_| "--cap expects a positive integer".to_string())?;
                if cap == 0 {
                    return Err("--cap expects a positive integer".into());
                }
                flags.cap = Some(cap);
            }
            other => return Err(format!("unknown flag '{other}'\n\n{USAGE}")),
        }
    }
    if flags.csv.is_some() && flags.format != Format::Text {
        return Err("--csv and --format are mutually exclusive".into());
    }
    Ok(flags)
}

fn build_spec(flags: &Flags, registry: &Registry) -> Result<CampaignSpec, String> {
    // Conflicting selectors are errors, not silent precedence: a named
    // campaign carries its own grid and rep counts.
    if !flags.scenarios.is_empty() && flags.campaign.is_some() {
        return Err("--campaign and --scenario are mutually exclusive".into());
    }
    if flags.scenarios.is_empty() && flags.reps.is_some() {
        return Err("--reps only applies to --scenario grids (named campaigns fix their own repetition counts)".into());
    }
    let spec = if flags.scenarios.is_empty() {
        let name = flags.campaign.as_deref().unwrap_or("table1");
        CampaignSpec::by_name(name, flags.mode, flags.seed)
            .ok_or_else(|| format!("unknown campaign '{name}'"))?
    } else {
        let scenarios = flags
            .scenarios
            .iter()
            .map(|label| ScenarioSpec::parse(label, registry).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, String>>()?;
        CampaignSpec::custom(scenarios, flags.reps.unwrap_or(1), flags.seed)
    };
    if flags.sections.is_empty() {
        return Ok(spec);
    }
    let names: Vec<&str> = flags.sections.iter().map(String::as_str).collect();
    let filtered = spec.with_sections(&names);
    if filtered.sections.is_empty() {
        return Err(format!("no section matches {:?}", flags.sections));
    }
    Ok(filtered)
}

fn print_summary(spec: &CampaignSpec, summary: &RunSummary, threads: usize) {
    eprintln!(
        "campaign {} ({}, seed {}): {} trials ({} skipped, {} executed) \
         in {:.2?} on {} thread(s); {} steals, per-worker {:?}",
        spec.name,
        spec.mode.label(),
        spec.seed,
        summary.total,
        summary.skipped,
        summary.executed,
        summary.wall,
        threads,
        summary.stats.steals,
        summary.stats.per_worker,
    );
}

/// On interrupt: the checkpoint (if any) is already flushed per line by the
/// appender, so the only job left is telling the user exactly how to
/// continue.
fn interrupt_error(flags: &Flags, summary: &RunSummary) -> String {
    let completed = summary.skipped + summary.executed;
    match &flags.out {
        Some(dir) => format!(
            "interrupted after {completed}/{} trials; checkpoint flushed — resume with:\n  \
             disp-campaign resume --out {} --threads {}",
            summary.total,
            dir.display(),
            flags.threads,
        ),
        None => format!(
            "interrupted after {completed}/{} trials; no --out was given, so the partial \
             in-memory results are discarded (re-run with --out DIR for a resumable checkpoint)",
            summary.total,
        ),
    }
}

/// Start the events.jsonl sidecar collector when `--events` was given.
/// Returns the hub to finish (flush + join) after the run.
fn start_events(flags: &Flags, store: Option<&CampaignStore>) -> Result<Option<Telemetry>, String> {
    if !flags.events {
        return Ok(None);
    }
    let store = store.ok_or("--events requires --out DIR (the sidecar lives next to the store)")?;
    let sink = JsonlSink::create(&store.events_path())?;
    Ok(Some(Telemetry::start(Box::new(sink))))
}

fn finish_events(telemetry: Option<Telemetry>, store: Option<&CampaignStore>) {
    if let (Some(telemetry), Some(store)) = (telemetry, store) {
        let dropped = telemetry.finish();
        if dropped > 0 {
            eprintln!(
                "note: {dropped} telemetry event(s) dropped on a full channel (see the \
                 overflow marker at the end of {})",
                store.events_path().display()
            );
        }
    }
}

/// Start the timelines.jsonl sidecar when `--timeline` was given on
/// run/resume.
fn start_timelines(
    flags: &Flags,
    store: Option<&CampaignStore>,
) -> Result<Option<TimelineSidecar>, String> {
    if !flags.timeline {
        return Ok(None);
    }
    let store =
        store.ok_or("--timeline requires --out DIR (the sidecar lives next to the store)")?;
    Ok(Some(TimelineSidecar::create(&store.timelines_path())?))
}

fn cmd_run(args: &[String], registry: &Registry) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let spec = build_spec(&flags, registry)?;
    let store = match &flags.out {
        Some(dir) => Some(CampaignStore::create(dir, &spec, flags.force)?),
        None => None,
    };
    let telemetry = start_events(&flags, store.as_ref())?;
    let timelines = start_timelines(&flags, store.as_ref())?;
    let cancel: &AtomicBool = signal::install();
    let (records, summary) = run_campaign_observed(
        &spec,
        store.as_ref(),
        flags.threads,
        flags.batch,
        registry,
        cancel,
        telemetry.as_ref().map(Telemetry::handle).as_ref(),
        timelines.as_ref(),
    )?;
    finish_events(telemetry, store.as_ref());
    print_summary(&spec, &summary, flags.threads);
    if summary.cancelled {
        return Err(interrupt_error(&flags, &summary));
    }
    render(&flags, &spec, records)
}

fn cmd_resume(args: &[String], registry: &Registry) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dir = flags
        .out
        .as_ref()
        .ok_or("resume requires --out DIR (the directory of the killed run)")?;
    let (store, manifest) = CampaignStore::open(dir)?;
    let spec = manifest.rebuild_spec()?;
    let telemetry = start_events(&flags, Some(&store))?;
    let timelines = start_timelines(&flags, Some(&store))?;
    let cancel: &AtomicBool = signal::install();
    let (records, summary) = run_campaign_observed(
        &spec,
        Some(&store),
        flags.threads,
        flags.batch,
        registry,
        cancel,
        telemetry.as_ref().map(Telemetry::handle).as_ref(),
        timelines.as_ref(),
    )?;
    finish_events(telemetry, Some(&store));
    print_summary(&spec, &summary, flags.threads);
    if summary.cancelled {
        return Err(interrupt_error(&flags, &summary));
    }
    render(&flags, &spec, records)
}

/// `trace`: run one trial of one scenario with the simulator's event trace
/// enabled and write the log as JSONL (stdout by default, `--out FILE`).
fn cmd_trace(args: &[String], registry: &Registry) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.campaign.is_some() {
        return Err("trace takes --scenario LABEL, not --campaign".into());
    }
    let label = match flags.scenarios.as_slice() {
        [label] => label,
        [] => return Err("trace requires --scenario LABEL".into()),
        _ => return Err("trace runs exactly one scenario (one --scenario flag)".into()),
    };
    let spec = ScenarioSpec::parse(label, registry).map_err(|e| e.to_string())?;
    let cap = flags.cap.unwrap_or(DEFAULT_TRACE_CAP);
    let (report, trace) = spec
        .run_traced(registry, flags.seed, cap)
        .map_err(|e| e.to_string())?;
    let jsonl = trace_to_jsonl(&trace);
    match &flags.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!(
                "traced {} (seed {}): {} event(s){} → {}",
                spec.label(),
                flags.seed,
                trace.events().len(),
                if trace.truncated() { ", truncated" } else { "" },
                path.display()
            );
        }
        None => print!("{jsonl}"),
    }
    eprintln!(
        "outcome: dispersed={} moves={} time={}",
        report.dispersed,
        report.outcome.total_moves,
        report.outcome.time()
    );
    Ok(())
}

/// `timeline`: run one trial of one scenario with the flight recorder
/// enabled and write the decimated timeline as JSONL (stdout by default,
/// `--out FILE`). Uses the same encoder as disp-serve's `GET /timeline`,
/// so the two are byte-identical for the same scenario + seed.
fn cmd_timeline(args: &[String], registry: &Registry) -> Result<(), String> {
    let flags = parse_flags(args)?;
    if flags.campaign.is_some() {
        return Err("timeline takes --scenario LABEL, not --campaign".into());
    }
    let label = match flags.scenarios.as_slice() {
        [label] => label,
        [] => return Err("timeline requires --scenario LABEL".into()),
        _ => return Err("timeline runs exactly one scenario (one --scenario flag)".into()),
    };
    let spec = ScenarioSpec::parse(label, registry).map_err(|e| e.to_string())?;
    let budget = flags.budget.unwrap_or(DEFAULT_TIMELINE_BUDGET);
    let (report, timeline) = spec
        .run_with_timeline(registry, flags.seed, budget)
        .map_err(|e| e.to_string())?;
    let jsonl = timeline_to_jsonl(&timeline, &spec.label(), flags.seed);
    match &flags.out {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("write {}: {e}", path.display()))?;
            eprintln!(
                "recorded {} (seed {}): {} point(s), decimation level {} → {}",
                spec.label(),
                flags.seed,
                timeline.points.len(),
                timeline.decimation_level(),
                path.display()
            );
        }
        None => print!("{jsonl}"),
    }
    eprintln!(
        "outcome: dispersed={} moves={} time={}",
        report.dispersed,
        report.outcome.total_moves,
        report.outcome.time()
    );
    Ok(())
}

/// The `report --timeline` view: parse `DIR/timelines.jsonl` and render
/// each recorded trial's settling curve as one ASCII sparkline row.
fn render_timelines(store: &CampaignStore) -> Result<(), String> {
    use disp_analysis::Json;
    let path = store.timelines_path();
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "read {}: {e} (record timelines with `run --timeline --out DIR`)",
            path.display()
        )
    })?;
    println!("# Timelines ({})\n", path.display());
    let mut scenario = String::new();
    let mut seed = 0u64;
    let mut settled: Vec<f64> = Vec::new();
    let mut population = 0.0f64;
    let mut last_time = 0.0f64;
    for line in text.lines() {
        let Some(doc) = Json::parse(line).ok() else {
            continue;
        };
        match doc.get("event").and_then(Json::as_str) {
            Some("timeline_start") => {
                scenario = doc
                    .get("scenario")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string();
                seed = doc.get("seed").and_then(Json::as_f64).unwrap_or(0.0) as u64;
                settled.clear();
                population = 0.0;
                last_time = 0.0;
            }
            Some("point") => {
                let s = doc.get("settled").and_then(Json::as_f64).unwrap_or(0.0);
                let active = doc.get("active").and_then(Json::as_f64).unwrap_or(0.0);
                let parked = doc.get("parked").and_then(Json::as_f64).unwrap_or(0.0);
                let crashed = doc.get("crashed").and_then(Json::as_f64).unwrap_or(0.0);
                settled.push(s);
                population = population.max(active + parked + crashed);
                last_time = doc.get("time").and_then(Json::as_f64).unwrap_or(last_time);
            }
            Some("timeline_end") => {
                let spark = disp_analysis::sparkline_scaled(&settled, population, 60);
                let final_settled = settled.last().copied().unwrap_or(0.0);
                println!(
                    "{scenario} seed={seed}\n  [{spark}] settled {}/{} at t={}",
                    final_settled as u64, population as u64, last_time as u64
                );
            }
            _ => {}
        }
    }
    Ok(())
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dir = flags
        .out
        .as_ref()
        .ok_or("report requires --out DIR (a campaign directory)")?;
    let (store, manifest) = CampaignStore::open(dir)?;
    if flags.timeline {
        return render_timelines(&store);
    }
    let spec = manifest.rebuild_spec()?;
    let ingest = store.read_trials()?;
    if ingest.malformed > 0 {
        eprintln!(
            "note: skipped {} malformed line(s) (torn tail of a killed run)",
            ingest.malformed
        );
    }
    let completed = ingest.records.len();
    if completed < manifest.total_trials {
        eprintln!(
            "note: campaign is partial: {completed}/{} trials completed (use `resume` to finish)",
            manifest.total_trials
        );
    }
    render(&flags, &spec, ingest.records)
}

fn cmd_scenarios(registry: &Registry) {
    // One source of truth with the server's GET /scenarios endpoint.
    print!("{}", grammar_help(registry));
}

fn render(
    flags: &Flags,
    spec: &CampaignSpec,
    records: Vec<disp_analysis::TrialRecord>,
) -> Result<(), String> {
    let sections = section_measurements(spec, records);
    if let Some(csv_dir) = &flags.csv {
        std::fs::create_dir_all(csv_dir)
            .map_err(|e| format!("create {}: {e}", csv_dir.display()))?;
        for (section, ms) in &sections {
            let path = csv_dir.join(format!("{}.csv", section.name));
            std::fs::write(&path, render_section_csv(ms))
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("wrote {} ({} rows)", path.display(), ms.len());
        }
        return Ok(());
    }
    if flags.format == Format::Json {
        println!(
            "{}",
            campaign_report_json(spec, &sections).to_string_compact()
        );
        return Ok(());
    }
    println!("# Campaign {} ({} mode)\n", spec.name, spec.mode.label());
    for (section, ms) in &sections {
        println!("{}", render_section_markdown(section, ms));
    }
    Ok(())
}
