//! # disp-campaign
//!
//! The parallel, deterministic experiment-orchestration engine for the
//! dispersion reproduction — the single execution substrate behind the
//! harness binaries (`table1`, `figures`, `ablations`) and the
//! `disp-campaign` CLI.
//!
//! ## Guarantees
//!
//! * **Determinism** — every trial's seed is derived as
//!   `mix(campaign_seed, fnv1a(canonical scenario label), repetition)`
//!   ([`grid::trial_seed`]), so results are byte-identical for any
//!   `--threads` value, any execution interleaving, and any subset/resume
//!   split of the grid.
//! * **Openness** — grids are made of canonical
//!   `disp_core::scenario::ScenarioSpec`s and algorithms resolve through a
//!   `disp_core::scenario::Registry`, so a new algorithm or placement
//!   reaches every campaign without touching this crate.
//! * **Parallelism** — trials are sharded across a work-stealing thread
//!   pool ([`engine::parallel_map`]); stealing rebalances the wildly uneven
//!   trial costs of a dispersion sweep.
//! * **Crash tolerance** — with a [`store::CampaignStore`], each finished
//!   trial is appended to `trials.jsonl` and flushed before the engine
//!   moves on; `resume` re-opens the directory, verifies the grid
//!   fingerprint and skips everything already on disk.
//!
//! ## Layers
//!
//! * [`engine`] — the generic work-stealing parallel map.
//! * [`grid`] — campaign descriptions (named sections of experiment
//!   points), trial expansion and seed derivation.
//! * [`store`] — the manifest + JSONL checkpoint directory.
//! * [`run`] — orchestration: skip-completed, execute, stream.
//! * [`telemetry`] — live per-trial events (bounded channel → pluggable
//!   sink; timing is non-content and lands in a sidecar, never in results).
//! * [`report`] — per-section tables, scaling fits, CSV series.
//!
//! ## Example
//!
//! ```
//! use disp_campaign::grid::{CampaignSpec, Mode};
//! use disp_campaign::run::run_campaign;
//! use disp_core::scenario::Registry;
//!
//! let mut spec = CampaignSpec::table1(Mode::Quick, 42);
//! spec.sections.truncate(1);
//! spec.sections[0].points.retain(|p| p.scenario.k <= 16); // doc-test sized
//! let (records, summary) = run_campaign(&spec, None, 2, &Registry::builtin()).unwrap();
//! assert_eq!(records.len(), summary.total);
//! assert!(records.iter().all(|r| r.dispersed));
//! ```

// `deny` rather than `forbid`: the `signal` module carries the workspace's
// single, documented unsafe block (registering a SIGINT/SIGTERM handler has
// no safe-Rust expression); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod grid;
pub mod report;
pub mod run;
#[allow(unsafe_code)]
pub mod signal;
pub mod store;
pub mod telemetry;

pub use engine::{parallel_map, EngineStats};
pub use grid::{
    full_ks, quick_ks, section_points, trial_seed, CampaignSpec, Mode, Section, TrialSpec,
};
pub use run::{run_campaign, run_campaign_cancellable, run_campaign_telemetered, RunSummary};
pub use store::{CampaignStore, Manifest, TrialWriter};
pub use telemetry::{
    trace_to_jsonl, JsonlSink, Telemetry, TelemetryHandle, TelemetrySink, TrialEvent,
};
