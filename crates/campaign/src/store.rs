//! The on-disk campaign store: a manifest plus an append-only JSONL trial
//! log with per-line flushing, giving crash-tolerant checkpoint/resume.
//!
//! Layout of a campaign directory:
//!
//! ```text
//! out/
//!   manifest.json   — campaign name, mode, seed, grid fingerprint, total
//!   trials.jsonl    — one TrialRecord per line, appended as trials finish
//! ```
//!
//! A killed run leaves a valid prefix of `trials.jsonl` (the final line may
//! be torn; ingestion skips it). `resume` reopens the directory, verifies
//! the manifest fingerprint against the rebuilt grid, and appends only the
//! missing trials.

use crate::grid::{CampaignSpec, Mode, Section};
use disp_analysis::experiment::ExperimentPoint;
use disp_analysis::json::Json;
use disp_analysis::jsonl::{self, Ingest};
use disp_analysis::TrialRecord;
use disp_core::scenario::ScenarioSpec;
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One section of a persisted campaign: its name/title plus every scenario
/// as a canonical label with its repetition count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSection {
    /// Section name.
    pub name: String,
    /// Section title (report heading).
    pub title: String,
    /// `(canonical scenario label, repetitions)` pairs, in grid order.
    pub entries: Vec<(String, usize)>,
}

/// The persisted identity of a campaign run.
///
/// The manifest speaks canonical scenario labels: the full grid is stored,
/// so `resume`/`report` rebuild *exactly* the campaign that was started —
/// named or ad-hoc — without consulting `CampaignSpec::by_name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Campaign name (informational; `custom` for `--scenario` grids).
    pub campaign: String,
    /// Sweep size preset (informational).
    pub mode: Mode,
    /// Campaign seed.
    pub seed: u64,
    /// Fingerprint of the expanded grid (see `CampaignSpec::grid_hash`),
    /// itself derived from the canonical labels below.
    pub grid_hash: u64,
    /// Total number of trials in the grid.
    pub total_trials: usize,
    /// The full grid, as canonical labels.
    pub sections: Vec<ManifestSection>,
}

impl Manifest {
    /// Build the manifest describing `spec`.
    pub fn of(spec: &CampaignSpec) -> Manifest {
        Manifest {
            campaign: spec.name.clone(),
            mode: spec.mode,
            seed: spec.seed,
            grid_hash: spec.grid_hash(),
            total_trials: spec.trials().len(),
            sections: spec
                .sections
                .iter()
                .map(|s| ManifestSection {
                    name: s.name.clone(),
                    title: s.title.clone(),
                    entries: s
                        .points
                        .iter()
                        .map(|p| (p.point_id(), p.repetitions))
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild the campaign spec this manifest describes, by parsing the
    /// stored canonical labels.
    pub fn rebuild_spec(&self) -> Result<CampaignSpec, String> {
        let sections = self
            .sections
            .iter()
            .map(|ms| {
                let points = ms
                    .entries
                    .iter()
                    .map(|(label, reps)| {
                        ScenarioSpec::from_label(label)
                            .map(|scenario| ExperimentPoint::new(scenario, *reps))
                            .map_err(|e| format!("manifest: {e}"))
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Section {
                    name: ms.name.clone(),
                    title: ms.title.clone(),
                    points,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let spec = CampaignSpec {
            name: self.campaign.clone(),
            mode: self.mode,
            seed: self.seed,
            sections,
        };
        if spec.grid_hash() != self.grid_hash {
            return Err(format!(
                "grid fingerprint mismatch: manifest has {:#x}, rebuilt grid has {:#x} \
                 (the stored labels do not reproduce the recorded grid)",
                self.grid_hash,
                spec.grid_hash()
            ));
        }
        Ok(spec)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("campaign".into(), Json::Str(self.campaign.clone())),
            ("mode".into(), Json::Str(self.mode.label().to_string())),
            // Seeds and fingerprints are full-range u64s; JSON numbers are
            // f64 and would round them, so both use the lossless encoding.
            ("seed".into(), Json::from_u64_lossless(self.seed)),
            ("grid_hash".into(), Json::from_u64_lossless(self.grid_hash)),
            ("total_trials".into(), Json::Num(self.total_trials as f64)),
            (
                "sections".into(),
                Json::Arr(
                    self.sections
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                ("title".into(), Json::Str(s.title.clone())),
                                (
                                    "entries".into(),
                                    Json::Arr(
                                        s.entries
                                            .iter()
                                            .map(|(label, reps)| {
                                                Json::Obj(vec![
                                                    ("scenario".into(), Json::Str(label.clone())),
                                                    ("reps".into(), Json::Num(*reps as f64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Manifest, String> {
        let mode_label = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("manifest: missing mode")?;
        let sections = match v.get("sections") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(|item| {
                    if item.as_str().is_some() {
                        // Pre-scenario manifests stored bare section names;
                        // their grids cannot be rebuilt from labels.
                        return Err(
                            "manifest: pre-scenario campaign directory (sections carry no \
                             scenario labels); re-run the campaign with this version"
                                .to_string(),
                        );
                    }
                    let entries = match item.get("entries") {
                        Some(Json::Arr(es)) => es
                            .iter()
                            .map(|e| {
                                let label = e
                                    .get("scenario")
                                    .and_then(Json::as_str)
                                    .ok_or("manifest: entry missing scenario")?
                                    .to_string();
                                let reps = e
                                    .get("reps")
                                    .and_then(Json::as_u64)
                                    .ok_or("manifest: entry missing reps")?
                                    as usize;
                                Ok((label, reps))
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                        _ => return Err("manifest: section missing entries".to_string()),
                    };
                    Ok(ManifestSection {
                        name: item
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("manifest: section missing name")?
                            .to_string(),
                        title: item
                            .get("title")
                            .and_then(Json::as_str)
                            .ok_or("manifest: section missing title")?
                            .to_string(),
                        entries,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => Vec::new(),
        };
        Ok(Manifest {
            campaign: v
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("manifest: missing campaign")?
                .to_string(),
            mode: Mode::from_label(mode_label)
                .ok_or_else(|| format!("manifest: unknown mode '{mode_label}'"))?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64_lossless)
                .ok_or("manifest: missing seed")?,
            grid_hash: v
                .get("grid_hash")
                .and_then(Json::as_u64_lossless)
                .ok_or("manifest: missing grid_hash")?,
            total_trials: v
                .get("total_trials")
                .and_then(Json::as_u64)
                .ok_or("manifest: missing total_trials")? as usize,
            sections,
        })
    }
}

/// Handle to a campaign directory.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
}

impl CampaignStore {
    /// Create a fresh store for `spec` in `dir` (creating the directory).
    ///
    /// Refuses to overwrite an existing manifest unless `force` — a
    /// half-finished campaign is valuable state; clobbering it should be
    /// explicit.
    pub fn create(dir: &Path, spec: &CampaignSpec, force: bool) -> Result<CampaignStore, String> {
        let store = CampaignStore {
            dir: dir.to_path_buf(),
        };
        // Guard on the trial log as well as the manifest: a directory whose
        // manifest was lost but whose log holds completed trials is still a
        // campaign worth protecting from silent truncation.
        if !force && (store.manifest_path().exists() || store.trials_path().exists()) {
            return Err(format!(
                "{} already contains a campaign (use `resume`, or --force to overwrite)",
                dir.display()
            ));
        }
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let manifest = Manifest::of(spec);
        std::fs::write(
            store.manifest_path(),
            manifest.to_json().to_string_compact() + "\n",
        )
        .map_err(|e| format!("write manifest: {e}"))?;
        // Truncate any stale trial log from a --force overwrite.
        File::create(store.trials_path()).map_err(|e| format!("create trial log: {e}"))?;
        Ok(store)
    }

    /// Open an existing store and parse its manifest.
    pub fn open(dir: &Path) -> Result<(CampaignStore, Manifest), String> {
        let store = CampaignStore {
            dir: dir.to_path_buf(),
        };
        let text = std::fs::read_to_string(store.manifest_path())
            .map_err(|e| format!("read {}: {e}", store.manifest_path().display()))?;
        let manifest = Manifest::from_json(&Json::parse(text.trim())?)?;
        Ok((store, manifest))
    }

    /// The campaign directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of the JSONL trial log.
    pub fn trials_path(&self) -> PathBuf {
        self.dir.join("trials.jsonl")
    }

    /// Path of the telemetry *sidecar* (`events.jsonl`). Trial lifecycle
    /// events with wall-clock timing land here — never in `trials.jsonl`,
    /// which stays a pure function of `(grid, seed)`. The sidecar is
    /// informational: `resume` neither reads nor fingerprints it, and each
    /// telemetered run truncates and rewrites it.
    pub fn events_path(&self) -> PathBuf {
        self.dir.join("events.jsonl")
    }

    /// Path of the flight-recorder *sidecar* (`timelines.jsonl`). One
    /// decimated per-trial timeline chunk per executed trial lands here
    /// under `--timeline` — never in `trials.jsonl`, which stays a pure
    /// function of `(grid, seed)`. Like `events.jsonl`, the sidecar is
    /// informational: `resume` neither reads nor fingerprints it.
    pub fn timelines_path(&self) -> PathBuf {
        self.dir.join("timelines.jsonl")
    }

    /// Stream the trial log (tolerating a torn tail).
    pub fn read_trials(&self) -> Result<Ingest, String> {
        let file = File::open(self.trials_path())
            .map_err(|e| format!("read {}: {e}", self.trials_path().display()))?;
        jsonl::read_trials(BufReader::new(file)).map_err(|e| e.to_string())
    }

    /// The ids of trials already completed on disk.
    pub fn completed_ids(&self) -> Result<HashSet<String>, String> {
        if !self.trials_path().exists() {
            return Ok(HashSet::new());
        }
        Ok(self
            .read_trials()?
            .records
            .iter()
            .map(TrialRecord::trial_id)
            .collect())
    }

    /// An appending, per-line-flushing trial writer (shareable across
    /// worker threads).
    ///
    /// If the log ends in a torn line (a kill mid-write leaves no trailing
    /// newline), a newline is emitted first so the next record starts on a
    /// fresh line instead of merging into — and thereby corrupting — the
    /// torn one.
    pub fn appender(&self) -> Result<TrialWriter, String> {
        let path = self.trials_path();
        let file = jsonl::open_append_with_repair(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(TrialWriter {
            inner: Mutex::new(BufWriter::new(file)),
        })
    }
}

/// Thread-safe appending writer for trial records.
#[derive(Debug)]
pub struct TrialWriter {
    inner: Mutex<BufWriter<File>>,
}

impl TrialWriter {
    /// Append one record and flush, so a kill loses at most in-flight
    /// trials.
    pub fn append(&self, record: &TrialRecord) {
        let mut w = self.inner.lock().unwrap();
        // An I/O failure mid-campaign should abort loudly, not silently
        // drop checkpoints.
        writeln!(w, "{}", record.to_json_line()).expect("append trial record");
        w.flush().expect("flush trial record");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_core::scenario::Registry;
    use disp_graph::generators::GraphFamily;
    use disp_sim::Placement;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "disp-campaign-test-{}-{tag}-{id}",
            std::process::id()
        ))
    }

    #[test]
    fn manifest_round_trips() {
        let spec = CampaignSpec::table1(Mode::Quick, 9);
        let m = Manifest::of(&spec);
        let back =
            Manifest::from_json(&Json::parse(&m.to_json().to_string_compact()).unwrap()).unwrap();
        assert_eq!(back, m);
        let rebuilt = back.rebuild_spec().unwrap();
        assert_eq!(rebuilt.grid_hash(), spec.grid_hash());
    }

    #[test]
    fn create_open_append_and_resume_scan() {
        let dir = tmp_dir("store");
        let spec = CampaignSpec::table1(Mode::Quick, 5);
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        // Second create without force refuses; with force succeeds.
        assert!(CampaignStore::create(&dir, &spec, false).is_err());

        let trials = spec.trials();
        let writer = store.appender().unwrap();
        let rec = trials[0]
            .point
            .run_trial(&Registry::builtin(), trials[0].rep, trials[0].seed);
        writer.append(&rec);
        drop(writer);

        let (store2, manifest) = CampaignStore::open(&dir).unwrap();
        assert_eq!(manifest.campaign, "table1");
        assert_eq!(manifest.total_trials, trials.len());
        let done = store2.completed_ids().unwrap();
        assert_eq!(done.len(), 1);
        assert!(done.contains(&trials[0].trial_id()));

        // A torn tail is tolerated.
        use std::fs::OpenOptions;
        use std::io::Write as _;
        let mut f = OpenOptions::new()
            .append(true)
            .open(store2.trials_path())
            .unwrap();
        write!(f, "{{\"point\":").unwrap();
        drop(f);
        let ingest = store2.read_trials().unwrap();
        assert_eq!(ingest.records.len(), 1);
        assert_eq!(ingest.malformed, 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_preserves_seeds_above_2_pow_53() {
        let spec = CampaignSpec::mini(Mode::Quick, u64::MAX - 77);
        let m = Manifest::of(&spec);
        let back =
            Manifest::from_json(&Json::parse(&m.to_json().to_string_compact()).unwrap()).unwrap();
        assert_eq!(back.seed, u64::MAX - 77);
        // The fingerprint check passes, so such a campaign is resumable.
        back.rebuild_spec().unwrap();
    }

    #[test]
    fn create_refuses_an_orphaned_trial_log() {
        let dir = tmp_dir("orphan");
        let spec = CampaignSpec::mini(Mode::Quick, 3);
        let store = CampaignStore::create(&dir, &spec, false).unwrap();
        let t = &spec.trials()[0];
        store
            .appender()
            .unwrap()
            .append(&t.point.run_trial(&Registry::builtin(), t.rep, t.seed));
        // Lose the manifest but keep the checkpointed trials.
        std::fs::remove_file(store.manifest_path()).unwrap();
        let err = CampaignStore::create(&dir, &spec, false).unwrap_err();
        assert!(err.contains("already contains a campaign"), "{err}");
        // The log was not truncated by the refused create.
        assert_eq!(store.read_trials().unwrap().records.len(), 1);
        // --force still clobbers explicitly.
        CampaignStore::create(&dir, &spec, true).unwrap();
        assert_eq!(store.read_trials().unwrap().records.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_spec_rejects_fingerprint_mismatch() {
        let spec = CampaignSpec::table1(Mode::Quick, 5);
        let mut m = Manifest::of(&spec);
        m.grid_hash ^= 1;
        let err = m.rebuild_spec().unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn custom_campaigns_rebuild_from_stored_labels_alone() {
        use disp_core::scenario::{ScenarioSpec, Schedule};
        let spec = CampaignSpec::custom(
            vec![
                ScenarioSpec::new(GraphFamily::Star, 8, "probe-dfs"),
                ScenarioSpec::new(GraphFamily::Grid, 12, "ks-dfs")
                    .with_placement(Placement::Clustered { clusters: 3 })
                    .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 }),
            ],
            2,
            9,
        );
        let m = Manifest::of(&spec);
        let text = m.to_json().to_string_compact();
        let back = Manifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        let rebuilt = back.rebuild_spec().unwrap();
        assert_eq!(rebuilt.grid_hash(), spec.grid_hash());
        let ids =
            |s: &CampaignSpec| -> Vec<String> { s.trials().iter().map(|t| t.trial_id()).collect() };
        assert_eq!(ids(&rebuilt), ids(&spec));
    }

    #[test]
    fn pre_scenario_manifests_are_rejected_with_a_clear_message() {
        let legacy = r#"{"campaign":"mini","mode":"quick","seed":"0000000000000007","grid_hash":"0000000000000001","total_trials":40,"sections":["mini-sync","mini-async"]}"#;
        let err = Manifest::from_json(&Json::parse(legacy).unwrap()).unwrap_err();
        assert!(err.contains("pre-scenario"), "{err}");
    }
}
