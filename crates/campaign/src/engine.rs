//! The work-stealing parallel map at the heart of the campaign engine.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism** — the value computed for item `i` must depend only on
//!    item `i` (the caller guarantees this; trials carry their own derived
//!    seeds), and results are returned in item order. Thread count and
//!    stealing pattern can change *when* an item runs, never *what* it
//!    computes, so campaign output is byte-identical for any `--threads`.
//! 2. **Load balance** — dispersion trials vary by orders of magnitude in
//!    cost (k=16 line vs k=512 async complete graph), so static sharding
//!    leaves workers idle. Each worker owns a deque, pops locally from the
//!    front, and steals the *back half* of a victim's deque when it runs
//!    dry — the classic work-stealing discipline, here with simple mutexed
//!    deques (trials are milliseconds-to-seconds; lock traffic is noise).
//! 3. **No dependencies** — built on `std::thread::scope` only.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Counters describing how a [`parallel_map`] call executed (for logs and
/// the PR-facing speedup reports; they never influence results).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Items processed per worker.
    pub per_worker: Vec<usize>,
    /// Number of successful steal operations.
    pub steals: usize,
}

/// Map `f` over `items` on `threads` workers with work stealing.
///
/// `f(i, &items[i])` is called exactly once per item; `on_done(i, &result)`
/// is called from the worker thread immediately after (this is where the
/// campaign store appends its JSONL line, so a kill can lose at most the
/// in-flight trials). Results are returned in item order.
pub fn parallel_map<T, R, F, S>(
    items: Vec<T>,
    threads: usize,
    f: F,
    on_done: S,
) -> (Vec<R>, EngineStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: Fn(usize, &R) + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        let count = items.len();
        let results = items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(i, item);
                on_done(i, &r);
                r
            })
            .collect();
        return (
            results,
            EngineStats {
                per_worker: vec![count],
                steals: 0,
            },
        );
    }

    let n = items.len();
    // Shard round-robin so every worker starts with a cross-section of the
    // grid (adjacent trials tend to have similar cost).
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = {
        let mut shards: Vec<VecDeque<(usize, T)>> = (0..threads).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            shards[i % threads].push_back((i, item));
        }
        shards.into_iter().map(Mutex::new).collect()
    };
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let steals = AtomicUsize::new(0);
    let per_worker: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

    thread::scope(|scope| {
        for worker in 0..threads {
            let deques = &deques;
            let results = &results;
            let steals = &steals;
            let per_worker = &per_worker;
            let f = &f;
            let on_done = &on_done;
            scope.spawn(move || {
                loop {
                    // Local work first.
                    let local = deques[worker].lock().unwrap().pop_front();
                    let (i, item) = match local {
                        Some(job) => job,
                        None => {
                            // Steal the back half of the first non-empty
                            // victim; give up when everyone is dry (no new
                            // work is ever produced, so that is terminal).
                            let mut stolen = None;
                            for offset in 1..threads {
                                let victim = (worker + offset) % threads;
                                let mut q = deques[victim].lock().unwrap();
                                let len = q.len();
                                if len == 0 {
                                    continue;
                                }
                                let take = len.div_ceil(2);
                                let mut batch = q.split_off(len - take);
                                drop(q);
                                let first = batch.pop_front();
                                if !batch.is_empty() {
                                    deques[worker].lock().unwrap().extend(batch);
                                }
                                stolen = first;
                                steals.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            match stolen {
                                Some(job) => job,
                                None => return,
                            }
                        }
                    };
                    let r = f(i, &item);
                    on_done(i, &r);
                    *results[i].lock().unwrap() = Some(r);
                    per_worker[worker].fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let results = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("work-stealing pool dropped an item")
        })
        .collect();
    (
        results,
        EngineStats {
            per_worker: per_worker
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_item_exactly_once_in_order() {
        for threads in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..257).collect();
            let calls = AtomicUsize::new(0);
            let (out, stats) = parallel_map(
                items,
                threads,
                |i, &x| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    x * 2 + i as u64
                },
                |_, _| {},
            );
            assert_eq!(calls.load(Ordering::Relaxed), 257, "threads={threads}");
            assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<u64>>());
            assert_eq!(stats.per_worker.iter().sum::<usize>(), 257);
        }
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let work = |i: usize, x: &u64| -> u64 {
            // Uneven cost to provoke stealing.
            let mut acc = *x;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let items: Vec<u64> = (0..100).collect();
        let (seq, _) = parallel_map(items.clone(), 1, work, |_, _| {});
        let (par, _) = parallel_map(items, 8, work, |_, _| {});
        assert_eq!(seq, par);
    }

    #[test]
    fn on_done_sees_every_completion() {
        let done = Mutex::new(Vec::new());
        let (_, _) = parallel_map(
            (0..50).collect::<Vec<usize>>(),
            4,
            |_, &x| x,
            |i, &r| done.lock().unwrap().push((i, r)),
        );
        let mut seen = done.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let (out, _) = parallel_map(Vec::<u8>::new(), 4, |_, &x| x, |_, _| {});
        assert!(out.is_empty());
        let (out, stats) = parallel_map(vec![9u8], 4, |_, &x| x + 1, |_, _| {});
        assert_eq!(out, vec![10]);
        assert_eq!(stats.steals, 0);
    }
}
