//! A SIGINT/SIGTERM latch for long-running campaign processes.
//!
//! Long `disp-campaign run`s and the `disp-serve` daemon both want the same
//! thing from a signal: *stop scheduling new work, finish what is in
//! flight, flush, and say how to continue* — not an abrupt `process::exit`
//! that relies on torn-tail repair. The standard library exposes no signal
//! API, and this workspace is dependency-free by constraint, so this module
//! registers a handler through the C runtime's `signal(2)` wrapper (the one
//! symbol every libc the workspace links against provides). The handler
//! body is a single atomic store — the only thing that is async-signal-safe
//! anyway — and everything else polls the latch from normal code.
//!
//! This is the workspace's sole `unsafe` block (the crate is `deny`, not
//! `forbid`, for exactly this module): registering a foreign handler cannot
//! be expressed in safe Rust.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler on the first SIGINT/SIGTERM; never cleared.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn latch_handler(_signum: i32) {
    // Only an atomic store: allocation, locking and I/O are all forbidden
    // in a signal handler.
    INTERRUPTED.store(true, Ordering::SeqCst);
}

extern "C" {
    // `sighandler_t signal(int signum, sighandler_t handler)` from the C
    // runtime std already links. Handlers are passed as raw addresses; the
    // return value (the previous handler) is deliberately ignored.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Install the latch for SIGINT and SIGTERM and return it.
///
/// Idempotent: calling twice re-registers the same handler. After the first
/// signal, [`interrupted`] (and the returned latch) reads `true`; a second
/// signal has no further effect — cooperative shutdown is the only mode, so
/// a stuck process still dies to SIGKILL, never to silent data loss.
pub fn install() -> &'static AtomicBool {
    unsafe {
        signal(SIGINT, latch_handler as *const () as usize);
        signal(SIGTERM, latch_handler as *const () as usize);
    }
    &INTERRUPTED
}

/// Whether a SIGINT/SIGTERM has been received since [`install`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_starts_clear_and_install_is_idempotent() {
        let latch = install();
        let again = install();
        assert!(std::ptr::eq(latch, again));
        // The latch is process-global; other tests in this binary do not
        // raise signals, so it must still be clear here.
        assert!(!interrupted() || latch.load(Ordering::SeqCst));
    }
}
