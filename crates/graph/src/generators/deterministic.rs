//! Deterministic graph families.

use crate::builder::GraphBuilder;
use crate::graph::PortGraph;
use crate::ids::NodeId;

fn must_build(b: GraphBuilder) -> PortGraph {
    b.build().expect("generator produced an invalid graph")
}

/// Path (line) graph on `n ≥ 1` nodes: `0 - 1 - 2 - … - (n-1)`.
///
/// The line graph is the canonical `Ω(k)` lower-bound instance for
/// dispersion time: agents starting at one end must travel distance `k - 1`.
pub fn line(n: usize) -> PortGraph {
    assert!(n >= 1, "line graph needs at least one node");
    let mut b = GraphBuilder::new(n).name(format!("line-{n}"));
    for i in 1..n {
        b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32)).unwrap();
    }
    must_build(b)
}

/// Cycle (ring) on `n ≥ 3` nodes.
pub fn ring(n: usize) -> PortGraph {
    assert!(n >= 3, "ring needs at least three nodes");
    let mut b = GraphBuilder::new(n).name(format!("ring-{n}"));
    for i in 0..n {
        b.add_edge(NodeId(i as u32), NodeId(((i + 1) % n) as u32))
            .unwrap();
    }
    must_build(b)
}

/// Complete graph `K_n` on `n ≥ 1` nodes. Maximum-degree stress test:
/// `Δ = n - 1`, `m = n(n-1)/2`.
pub fn complete(n: usize) -> PortGraph {
    assert!(n >= 1, "complete graph needs at least one node");
    let mut b = GraphBuilder::new(n).name(format!("complete-{n}"));
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId(i as u32), NodeId(j as u32)).unwrap();
        }
    }
    must_build(b)
}

/// Star on `n ≥ 2` nodes: node 0 is the center, nodes `1..n` are leaves.
///
/// High-degree hub: the classic instance separating `O(k)`/`O(k log k)`
/// probing from the `O(kΔ)` neighbor-scanning baseline.
pub fn star(n: usize) -> PortGraph {
    assert!(n >= 2, "star needs at least two nodes");
    let mut b = GraphBuilder::new(n).name(format!("star-{n}"));
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId(i as u32)).unwrap();
    }
    must_build(b)
}

/// Complete binary tree on `n ≥ 1` nodes (heap-shaped: node `i` has children
/// `2i+1`, `2i+2` when they exist).
pub fn binary_tree(n: usize) -> PortGraph {
    assert!(n >= 1, "binary tree needs at least one node");
    let mut b = GraphBuilder::new(n).name(format!("bintree-{n}"));
    for i in 1..n {
        let parent = (i - 1) / 2;
        b.add_edge(NodeId(parent as u32), NodeId(i as u32)).unwrap();
    }
    must_build(b)
}

/// Caterpillar tree: a spine of `spine` nodes, each carrying `legs` leaf
/// children. Total nodes: `spine * (1 + legs)`.
///
/// Caterpillars exercise the paper's branching-node cases (Algorithm 1,
/// Cases A and B) heavily: every spine node is a branching node.
pub fn caterpillar(spine: usize, legs: usize) -> PortGraph {
    assert!(spine >= 1, "caterpillar needs at least one spine node");
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n).name(format!("caterpillar-{spine}x{legs}"));
    for s in 1..spine {
        b.add_edge(NodeId(s as u32 - 1), NodeId(s as u32)).unwrap();
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(NodeId(s as u32), NodeId(next as u32)).unwrap();
            next += 1;
        }
    }
    must_build(b)
}

/// 2-D grid (mesh) with `rows × cols` nodes and no wraparound.
pub fn grid2d(rows: usize, cols: usize) -> PortGraph {
    assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
    let idx = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let mut b = GraphBuilder::new(rows * cols).name(format!("grid-{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1)).unwrap();
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c)).unwrap();
            }
        }
    }
    must_build(b)
}

/// 2-D torus with `rows × cols` nodes (wraparound in both dimensions).
///
/// Requires `rows ≥ 3` and `cols ≥ 3` so that wraparound edges do not create
/// parallel edges.
pub fn torus2d(rows: usize, cols: usize) -> PortGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
    let idx = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    let mut b = GraphBuilder::new(rows * cols).name(format!("torus-{rows}x{cols}"));
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols)).unwrap();
            b.add_edge(idx(r, c), idx((r + 1) % rows, c)).unwrap();
        }
    }
    must_build(b)
}

/// Hypercube on `2^dim` nodes (`dim ≥ 1`).
pub fn hypercube(dim: usize) -> PortGraph {
    assert!(dim >= 1, "hypercube dimension must be at least 1");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n).name(format!("hypercube-{dim}"));
    for v in 0..n {
        for bit in 0..dim {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(NodeId(v as u32), NodeId(u as u32)).unwrap();
            }
        }
    }
    must_build(b)
}

/// Barbell graph: two cliques of size `clique` joined by a path of `path`
/// intermediate nodes. Total nodes: `2*clique + path`.
///
/// Combines the high-degree cliques with a long low-degree bridge; good for
/// observing crossovers between probing-based and scanning-based algorithms.
pub fn barbell(clique: usize, path: usize) -> PortGraph {
    assert!(clique >= 2, "barbell cliques need at least two nodes");
    let n = 2 * clique + path;
    let mut b = GraphBuilder::new(n).name(format!("barbell-{clique}-{path}"));
    let add_clique = |b: &mut GraphBuilder, start: usize| {
        for i in 0..clique {
            for j in (i + 1)..clique {
                b.add_edge(NodeId((start + i) as u32), NodeId((start + j) as u32))
                    .unwrap();
            }
        }
    };
    add_clique(&mut b, 0);
    add_clique(&mut b, clique + path);
    // Bridge: last node of left clique - path nodes - first node of right clique.
    let mut prev = clique - 1;
    for p in 0..path {
        let cur = clique + p;
        b.add_edge(NodeId(prev as u32), NodeId(cur as u32)).unwrap();
        prev = cur;
    }
    b.add_edge(NodeId(prev as u32), NodeId((clique + path) as u32))
        .unwrap();
    must_build(b)
}

/// Lollipop graph: a clique of size `clique` attached to a path of `path`
/// nodes. Total nodes: `clique + path`.
pub fn lollipop(clique: usize, path: usize) -> PortGraph {
    assert!(clique >= 2, "lollipop clique needs at least two nodes");
    let n = clique + path;
    let mut b = GraphBuilder::new(n).name(format!("lollipop-{clique}-{path}"));
    for i in 0..clique {
        for j in (i + 1)..clique {
            b.add_edge(NodeId(i as u32), NodeId(j as u32)).unwrap();
        }
    }
    let mut prev = clique - 1;
    for p in 0..path {
        let cur = clique + p;
        b.add_edge(NodeId(prev as u32), NodeId(cur as u32)).unwrap();
        prev = cur;
    }
    must_build(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use crate::validate;

    fn check(g: &PortGraph) {
        validate::check_port_labeling(g).unwrap();
        assert!(properties::is_connected(g));
    }

    #[test]
    fn line_counts() {
        let g = line(17);
        check(&g);
        assert_eq!(g.num_nodes(), 17);
        assert_eq!(g.num_edges(), 16);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn single_node_line() {
        let g = line(1);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ring_counts() {
        let g = ring(9);
        check(&g);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn complete_counts() {
        let g = complete(7);
        check(&g);
        assert_eq!(g.num_edges(), 21);
        assert_eq!(g.max_degree(), 6);
    }

    #[test]
    fn star_counts() {
        let g = star(12);
        check(&g);
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.degree(NodeId(0)), 11);
        assert_eq!(g.degree(NodeId(5)), 1);
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(15);
        check(&g);
        assert!(properties::is_tree(&g));
        assert_eq!(g.degree(NodeId(0)), 2);
        // Internal nodes have degree 3, leaves degree 1.
        assert_eq!(g.degree(NodeId(3)), 3);
        assert_eq!(g.degree(NodeId(14)), 1);
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(5, 3);
        check(&g);
        assert!(properties::is_tree(&g));
        assert_eq!(g.num_nodes(), 20);
        // Interior spine nodes: 2 spine neighbors + 3 legs.
        assert_eq!(g.degree(NodeId(2)), 5);
    }

    #[test]
    fn grid_counts() {
        let g = grid2d(4, 5);
        check(&g);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus2d(4, 5);
        check(&g);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.num_edges(), 2 * 20);
    }

    #[test]
    fn hypercube_is_dim_regular() {
        let g = hypercube(4);
        check(&g);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.num_edges(), 32);
        assert_eq!(properties::diameter(&g), Some(4));
    }

    #[test]
    fn barbell_structure() {
        let g = barbell(5, 3);
        check(&g);
        assert_eq!(g.num_nodes(), 13);
        assert_eq!(g.max_degree(), 5);
        assert!(properties::diameter(&g).unwrap() >= 5);
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(6, 4);
        check(&g);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.max_degree(), 6);
    }
}
