//! Randomized graph families and port-label permutation.

use crate::builder::GraphBuilder;
use crate::graph::PortGraph;
use crate::ids::{NodeId, Port};
use disp_rng::prelude::*;

/// Uniform random labeled tree on `n ≥ 1` nodes (via a random Prüfer
/// sequence), deterministic for a given `seed`.
pub fn random_tree(n: usize, seed: u64) -> PortGraph {
    assert!(n >= 1, "random tree needs at least one node");
    let mut b = GraphBuilder::new(n).name(format!("rtree-{n}-s{seed}"));
    if n == 1 {
        return b.build().unwrap();
    }
    if n == 2 {
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        return b.build().unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    // Standard Prüfer decoding.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &p in &prufer {
        b.add_edge(NodeId(leaf as u32), NodeId(p as u32)).unwrap();
        degree[p] -= 1;
        if degree[p] == 1 && p < ptr {
            leaf = p;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(NodeId(leaf as u32), NodeId((n - 1) as u32))
        .unwrap();
    b.build().unwrap()
}

/// Connected Erdős–Rényi graph `G(n, p)`: sample `G(n, p)`, then add a uniform
/// random spanning-tree edge set to guarantee connectivity. Deterministic for
/// a given `seed`.
pub fn erdos_renyi_connected(n: usize, p: f64, seed: u64) -> PortGraph {
    assert!(n >= 1, "Erdős–Rényi graph needs at least one node");
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).name(format!("er-{n}-p{p}-s{seed}"));
    // Random spanning tree first (random permutation + random attachment)
    // guarantees connectivity without skewing the degree distribution much.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.random_range(0..i);
        let (u, v) = (order[i], order[j]);
        b.add_edge(NodeId(u as u32), NodeId(v as u32)).unwrap();
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !b.has_edge(NodeId(u as u32), NodeId(v as u32)) && rng.random_bool(p) {
                b.add_edge(NodeId(u as u32), NodeId(v as u32)).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// Random `d`-regular simple connected graph on `n` nodes via the
/// configuration model with rejection and retry. Requires `n·d` even,
/// `d < n`, and `d ≥ 2`. Deterministic for a given `seed`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> PortGraph {
    assert!(d >= 2, "random regular graph needs degree ≥ 2");
    assert!(d < n, "degree must be smaller than node count");
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    // Configuration model with edge-switch repair of self loops / parallel
    // edges, retried if the repaired graph ends up disconnected (rare for
    // d ≥ 2 on the sizes we use).
    for _attempt in 0..200u32 {
        if let Some(g) = try_random_regular(n, d, &mut rng, seed) {
            return g;
        }
    }
    panic!("failed to sample a simple connected {d}-regular graph on {n} nodes after 200 attempts");
}

fn try_random_regular(n: usize, d: usize, rng: &mut StdRng, seed: u64) -> Option<PortGraph> {
    let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
    stubs.shuffle(rng);
    let mut edges: Vec<(usize, usize)> = stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let edge_key = |u: usize, v: usize| if u <= v { (u, v) } else { (v, u) };
    // Repair pass: repeatedly swap a bad edge with a random other edge.
    for _ in 0..(20 * edges.len() + 100) {
        let mut seen = std::collections::HashSet::new();
        let bad = edges
            .iter()
            .position(|&(u, v)| u == v || !seen.insert(edge_key(u, v)));
        let Some(i) = bad else { break };
        let j = rng.random_range(0..edges.len());
        if i == j {
            continue;
        }
        // Swap one endpoint of edge i with one endpoint of edge j.
        let (a, b) = edges[i];
        let (c, dd) = edges[j];
        edges[i] = (a, c);
        edges[j] = (b, dd);
    }
    let mut b = GraphBuilder::new(n).name(format!("rreg-{n}-d{d}-s{seed}"));
    for &(u, v) in &edges {
        if u == v || b.has_edge(NodeId(u as u32), NodeId(v as u32)) {
            return None; // repair did not converge; retry with a fresh pairing
        }
        b.add_edge(NodeId(u as u32), NodeId(v as u32)).ok()?;
    }
    b.build().ok()
}

/// Return a copy of `g` with the port labels at every node permuted by a
/// seeded random permutation.
///
/// The structure (node set, edge set) is unchanged; only the local labels
/// move. Algorithms that are correct on anonymous port-labeled graphs must
/// behave identically (up to which node each agent ends on) on the permuted
/// graph; tests use this to catch accidental dependence on construction
/// order.
pub fn permute_ports(g: &PortGraph, seed: u64) -> PortGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.num_nodes();
    // For each node, a permutation of its ports: perm[v][old_offset] = new_offset.
    let mut perms: Vec<Vec<usize>> = Vec::with_capacity(n);
    for v in g.nodes() {
        let d = g.degree(v);
        let mut p: Vec<usize> = (0..d).collect();
        p.shuffle(&mut rng);
        perms.push(p);
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + g.degree(NodeId(v as u32));
    }
    let total = offsets[n];
    let mut neighbors = vec![NodeId(0); total];
    let mut back_ports = vec![Port(1); total];
    for v in g.nodes() {
        for p in g.ports(v) {
            let (u, q) = g.traverse(v, p);
            let new_p = perms[v.index()][p.offset()];
            let new_q = perms[u.index()][q.offset()];
            neighbors[offsets[v.index()] + new_p] = u;
            back_ports[offsets[v.index()] + new_p] = Port::from_offset(new_q);
        }
    }
    PortGraph {
        offsets,
        neighbors,
        back_ports,
        name: format!("{}-permuted-s{}", g.name(), seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::deterministic;
    use crate::properties;
    use crate::validate;

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_tree(50, seed);
            validate::check_port_labeling(&g).unwrap();
            assert!(properties::is_tree(&g), "seed {seed} produced a non-tree");
        }
    }

    #[test]
    fn random_tree_small_sizes() {
        assert_eq!(random_tree(1, 0).num_nodes(), 1);
        let g2 = random_tree(2, 0);
        assert_eq!(g2.num_edges(), 1);
        let g3 = random_tree(3, 1);
        assert!(properties::is_tree(&g3));
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = random_tree(40, 9);
        let b = random_tree(40, 9);
        let c = random_tree(40, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_is_connected_and_valid() {
        for seed in 0..5 {
            let g = erdos_renyi_connected(60, 0.05, seed);
            validate::check_port_labeling(&g).unwrap();
            assert!(properties::is_connected(&g));
            assert!(g.num_edges() >= 59);
        }
    }

    #[test]
    fn erdos_renyi_p_zero_is_a_tree() {
        let g = erdos_renyi_connected(30, 0.0, 3);
        assert!(properties::is_tree(&g));
    }

    #[test]
    fn erdos_renyi_p_one_is_complete() {
        let g = erdos_renyi_connected(12, 1.0, 3);
        assert_eq!(g.num_edges(), 12 * 11 / 2);
    }

    #[test]
    fn random_regular_degrees() {
        for &(n, d) in &[(20usize, 3usize), (24, 4), (30, 5)] {
            let g = random_regular(n, d, 11);
            validate::check_port_labeling(&g).unwrap();
            assert!(properties::is_connected(&g));
            assert_eq!(g.min_degree(), d);
            assert_eq!(g.max_degree(), d);
        }
    }

    #[test]
    fn permuted_ports_preserve_structure() {
        let g = deterministic::grid2d(5, 5);
        let h = permute_ports(&g, 99);
        validate::check_port_labeling(&h).unwrap();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        for v in g.nodes() {
            assert_eq!(g.degree(v), h.degree(v));
            let mut gn: Vec<_> = g.neighbors_of(v).to_vec();
            let mut hn: Vec<_> = h.neighbors_of(v).to_vec();
            gn.sort();
            hn.sort();
            assert_eq!(gn, hn, "neighbor sets must be preserved at {v}");
        }
    }

    #[test]
    fn permuted_ports_traverse_is_still_involutive() {
        let g = erdos_renyi_connected(25, 0.2, 5);
        let h = permute_ports(&g, 7);
        for v in h.nodes() {
            for p in h.ports(v) {
                let (u, pin) = h.traverse(v, p);
                assert_eq!(h.traverse(u, pin), (v, p));
            }
        }
    }
}
