//! Serializable descriptors of graph families for the experiment harness.

use crate::generators::{deterministic, random};
use crate::graph::PortGraph;
use crate::topology::Topology;
use std::fmt;

/// A named, parameterized graph family that the experiment harness can
/// instantiate at a requested size.
///
/// `instantiate(n, seed)` produces a graph with **approximately** `n` nodes
/// (exactly `n` for most families; grid/torus/hypercube round to the nearest
/// realizable size ≥ the request where necessary). The realized node count is
/// always `graph.num_nodes()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// Path graph — the Ω(k) time lower-bound instance.
    Line,
    /// Cycle.
    Ring,
    /// Star (one hub of degree n-1).
    Star,
    /// Complete graph.
    Complete,
    /// Complete binary tree.
    BinaryTree,
    /// Uniform random labeled tree.
    RandomTree,
    /// 2-D square grid (no wraparound).
    Grid,
    /// 2-D square torus.
    Torus,
    /// Hypercube (n rounded up to a power of two).
    Hypercube,
    /// Random d-regular graph.
    RandomRegular {
        /// Degree of every node.
        degree: usize,
    },
    /// Connected Erdős–Rényi graph.
    ErdosRenyi {
        /// Expected average degree (p = avg_degree / (n-1)).
        avg_degree: f64,
    },
    /// Two cliques joined by a path (cliques of size n/4, path n/2).
    Barbell,
    /// Clique with a path tail (clique n/2, tail n/2).
    Lollipop,
    /// Caterpillar tree with the given number of legs per spine node.
    Caterpillar {
        /// Leaves attached to each spine node.
        legs: usize,
    },
}

impl GraphFamily {
    /// All families exercised by the reproduction harness, in report order.
    pub fn all() -> Vec<GraphFamily> {
        vec![
            GraphFamily::Line,
            GraphFamily::Ring,
            GraphFamily::Star,
            GraphFamily::BinaryTree,
            GraphFamily::RandomTree,
            GraphFamily::Grid,
            GraphFamily::Torus,
            GraphFamily::Hypercube,
            GraphFamily::RandomRegular { degree: 4 },
            GraphFamily::ErdosRenyi { avg_degree: 6.0 },
            GraphFamily::Complete,
            GraphFamily::Barbell,
            GraphFamily::Lollipop,
            GraphFamily::Caterpillar { legs: 3 },
        ]
    }

    /// A compact subset suitable for quick runs and CI.
    pub fn quick() -> Vec<GraphFamily> {
        vec![
            GraphFamily::Line,
            GraphFamily::Star,
            GraphFamily::RandomTree,
            GraphFamily::ErdosRenyi { avg_degree: 6.0 },
        ]
    }

    /// Instantiate a graph with approximately `n` nodes.
    pub fn instantiate(&self, n: usize, seed: u64) -> PortGraph {
        let n = n.max(4);
        match *self {
            GraphFamily::Line => deterministic::line(n),
            GraphFamily::Ring => deterministic::ring(n.max(3)),
            GraphFamily::Star => deterministic::star(n.max(2)),
            GraphFamily::Complete => deterministic::complete(n),
            GraphFamily::BinaryTree => deterministic::binary_tree(n),
            GraphFamily::RandomTree => random::random_tree(n, seed),
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().ceil() as usize;
                deterministic::grid2d(side, side)
            }
            GraphFamily::Torus => {
                let side = (n as f64).sqrt().ceil().max(3.0) as usize;
                deterministic::torus2d(side, side)
            }
            GraphFamily::Hypercube => {
                let dim = (n.max(2) as f64).log2().ceil() as usize;
                deterministic::hypercube(dim.max(1))
            }
            GraphFamily::RandomRegular { degree } => {
                let d = degree.min(n - 1).max(2);
                // n·d must be even.
                let n = if (n * d).is_multiple_of(2) { n } else { n + 1 };
                random::random_regular(n, d, seed)
            }
            GraphFamily::ErdosRenyi { avg_degree } => {
                let p = (avg_degree / (n.saturating_sub(1)).max(1) as f64).clamp(0.0, 1.0);
                random::erdos_renyi_connected(n, p, seed)
            }
            GraphFamily::Barbell => {
                let clique = (n / 4).max(2);
                let path = n.saturating_sub(2 * clique);
                deterministic::barbell(clique, path)
            }
            GraphFamily::Lollipop => {
                let clique = (n / 2).max(2);
                let path = n.saturating_sub(clique);
                deterministic::lollipop(clique, path)
            }
            GraphFamily::Caterpillar { legs } => {
                let spine = (n / (legs + 1)).max(1);
                deterministic::caterpillar(spine, legs)
            }
        }
    }

    /// Instantiate a [`Topology`] with approximately `n` nodes.
    ///
    /// The dense structured families (complete, hypercube, torus) come back
    /// *implicit* — a few integers instead of `Θ(m)` materialized edge slots
    /// — which is what makes `n ≈ 10^6` runs fit in memory. All other
    /// families materialize through [`GraphFamily::instantiate`]. The sizing
    /// rules are identical to `instantiate`'s, so for every family the two
    /// entry points describe the same graph (checked by
    /// `tests/proptest_csr.rs`).
    pub fn instantiate_topology(&self, n: usize, seed: u64) -> Topology {
        let n = n.max(4);
        match *self {
            GraphFamily::Complete => Topology::complete(n),
            GraphFamily::Hypercube => {
                let dim = (n.max(2) as f64).log2().ceil() as usize;
                Topology::hypercube(dim.max(1))
            }
            GraphFamily::Torus => {
                let side = (n as f64).sqrt().ceil().max(3.0) as usize;
                Topology::torus(side, side)
            }
            _ => Topology::Csr(self.instantiate(n, seed)),
        }
    }

    /// An **upper bound** on the maximum degree a size-`n` instance of this
    /// family can realize (exact for the deterministic families, `n - 1`
    /// for the random ones). Validation uses it to reject runner limits
    /// that are below the placement's trivial lower bound *before* any
    /// trial runs — an upper bound on `Δ` gives a sound (if weaker) lower
    /// bound on the time needed.
    pub fn max_degree_upper_bound(&self, n: usize) -> usize {
        let n = n.max(4);
        match *self {
            GraphFamily::Line | GraphFamily::Ring => 2,
            GraphFamily::BinaryTree => 3,
            GraphFamily::Grid | GraphFamily::Torus => 4,
            GraphFamily::Hypercube => (n.max(2) as f64).log2().ceil() as usize,
            GraphFamily::RandomRegular { degree } => degree.max(2),
            GraphFamily::Caterpillar { legs } => legs + 2,
            GraphFamily::Star
            | GraphFamily::Complete
            | GraphFamily::RandomTree
            | GraphFamily::ErdosRenyi { .. }
            | GraphFamily::Barbell
            | GraphFamily::Lollipop => n.saturating_sub(1),
        }
    }

    /// Inverse of [`GraphFamily::label`]: parse a label back into a family
    /// (used by record ingestion and the campaign CLI). Parameterized labels
    /// carry their parameter inline (`rreg4`, `er6`, `caterpillar3`).
    pub fn from_label(label: &str) -> Option<GraphFamily> {
        let fixed = match label {
            "line" => Some(GraphFamily::Line),
            "ring" => Some(GraphFamily::Ring),
            "star" => Some(GraphFamily::Star),
            "complete" => Some(GraphFamily::Complete),
            "bintree" => Some(GraphFamily::BinaryTree),
            "rtree" => Some(GraphFamily::RandomTree),
            "grid" => Some(GraphFamily::Grid),
            "torus" => Some(GraphFamily::Torus),
            "hypercube" => Some(GraphFamily::Hypercube),
            "barbell" => Some(GraphFamily::Barbell),
            "lollipop" => Some(GraphFamily::Lollipop),
            _ => None,
        };
        if fixed.is_some() {
            return fixed;
        }
        // Parameterized labels must be canonical: re-rendering the parsed
        // family must reproduce the input byte for byte ("rreg04" and
        // "er3." are rejected, not silently normalized), so labels stay a
        // bijection — which downstream scenario labels rely on.
        let parsed = if let Some(rest) = label.strip_prefix("rreg") {
            rest.parse()
                .ok()
                .map(|degree| GraphFamily::RandomRegular { degree })
        } else if let Some(rest) = label.strip_prefix("caterpillar") {
            rest.parse()
                .ok()
                .map(|legs| GraphFamily::Caterpillar { legs })
        } else if let Some(rest) = label.strip_prefix("er") {
            rest.parse()
                .ok()
                .map(|avg_degree| GraphFamily::ErdosRenyi { avg_degree })
        } else {
            None
        };
        parsed.filter(|family| family.label() == label)
    }

    /// Short machine-friendly label (used in CSV headers and bench ids).
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::Line => "line".into(),
            GraphFamily::Ring => "ring".into(),
            GraphFamily::Star => "star".into(),
            GraphFamily::Complete => "complete".into(),
            GraphFamily::BinaryTree => "bintree".into(),
            GraphFamily::RandomTree => "rtree".into(),
            GraphFamily::Grid => "grid".into(),
            GraphFamily::Torus => "torus".into(),
            GraphFamily::Hypercube => "hypercube".into(),
            GraphFamily::RandomRegular { degree } => format!("rreg{degree}"),
            GraphFamily::ErdosRenyi { avg_degree } => format!("er{avg_degree}"),
            GraphFamily::Barbell => "barbell".into(),
            GraphFamily::Lollipop => "lollipop".into(),
            GraphFamily::Caterpillar { legs } => format!("caterpillar{legs}"),
        }
    }
}

impl fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use crate::validate;

    #[test]
    fn every_family_instantiates_a_valid_graph() {
        for fam in GraphFamily::all() {
            for &n in &[8usize, 33, 64] {
                let g = fam.instantiate(n, 7);
                validate::check_port_labeling(&g)
                    .unwrap_or_else(|e| panic!("{fam}: invalid port labeling: {e}"));
                assert!(
                    properties::is_connected(&g),
                    "{fam} at n={n} is disconnected"
                );
                assert!(g.num_nodes() >= 4, "{fam} at n={n} too small");
            }
        }
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for fam in GraphFamily::all() {
            assert_eq!(GraphFamily::from_label(&fam.label()), Some(fam), "{fam}");
        }
        assert_eq!(GraphFamily::from_label("unknown"), None);
        assert_eq!(GraphFamily::from_label("rregx"), None);
    }

    #[test]
    fn non_canonical_parameterized_labels_are_rejected() {
        assert_eq!(GraphFamily::from_label("er3."), None);
        assert_eq!(GraphFamily::from_label("er06"), None);
        assert_eq!(GraphFamily::from_label("rreg04"), None);
        assert_eq!(GraphFamily::from_label("caterpillar+3"), None);
        assert_eq!(
            GraphFamily::from_label("er3.5"),
            Some(GraphFamily::ErdosRenyi { avg_degree: 3.5 })
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<_> = GraphFamily::all().iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn quick_is_subset_of_all() {
        let all: Vec<_> = GraphFamily::all().iter().map(|f| f.label()).collect();
        for f in GraphFamily::quick() {
            assert!(all.contains(&f.label()));
        }
    }

    #[test]
    fn line_instantiates_exact_size() {
        let g = GraphFamily::Line.instantiate(57, 0);
        assert_eq!(g.num_nodes(), 57);
    }

    #[test]
    fn hypercube_rounds_up_to_power_of_two() {
        let g = GraphFamily::Hypercube.instantiate(20, 0);
        assert_eq!(g.num_nodes(), 32);
    }
}
