//! Graph families used throughout the dispersion literature.
//!
//! Deterministic families live in [`deterministic`], randomized families in
//! [`random`], and [`family`] provides a serializable [`GraphFamily`]
//! descriptor used by the experiment harness to name and instantiate
//! workloads.
//!
//! All generators produce **validated** [`crate::PortGraph`]s: simple,
//! undirected, connected, with proper 1-based port labels at every node. The
//! port labels at the two endpoints of an edge are deliberately uncorrelated;
//! use [`permute_ports`] to apply an additional random relabeling when a test
//! needs to confirm that an algorithm does not secretly depend on the labels
//! produced by a particular construction order.

pub mod deterministic;
pub mod family;
pub mod random;

pub use deterministic::{
    barbell, binary_tree, caterpillar, complete, grid2d, hypercube, line, lollipop, ring, star,
    torus2d,
};
pub use family::GraphFamily;
pub use random::{erdos_renyi_connected, permute_ports, random_regular, random_tree};
