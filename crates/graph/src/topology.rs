//! The run-time graph backend: CSR-packed adjacency *or* an implicit
//! generator that computes neighbors on the fly.
//!
//! A materialized [`PortGraph`] stores `Θ(m)` words, which caps the dense
//! families far below the `n ≈ 10^6` regime the scale campaigns target: a
//! complete graph needs `Θ(n²)` edge slots, a hypercube `Θ(n log n)`. A
//! [`Topology`] closes that gap: sparse and irregular families stay CSR
//! ([`Topology::Csr`]), while the dense *structured* families (complete,
//! hypercube, torus) are stored as a few integers and answer
//! [`Topology::degree`] / [`Topology::traverse`] with O(1) arithmetic and
//! zero allocation — the same port-labeled contract (`traverse` is an
//! involution, ports are `1..=δ_v`) the CSR backend provides, which the
//! property tests in `tests/proptest_csr.rs` verify against the materialized
//! builders at small `n`.
//!
//! The simulator's `World` holds a `Topology`; everything that only ever
//! *queries* adjacency (runners, placements, protocols) works against this
//! type. Construction-time tooling (validation, DOT export, properties)
//! keeps operating on [`PortGraph`]; use [`Topology::to_port_graph`] to
//! materialize an implicit family when one of those is needed.

use crate::graph::PortGraph;
use crate::ids::{NodeId, Port};
use std::fmt;

/// A graph backend: materialized CSR adjacency or an implicit generator.
///
/// All variants expose the same O(1) queries; see the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// A materialized, validated CSR port-labeled graph.
    Csr(PortGraph),
    /// Complete graph `K_n`, with the **builder-compatible** labeling of
    /// `generators::complete`: at node `v`, ports `1..=v` lead to nodes
    /// `0..v-1` and ports `v+1..n-1` lead to nodes `v+1..n-1`. This keeps
    /// `K_n` the paper's *hard* instance for the scan baseline (every scan
    /// starts at the long-settled low nodes); a rotation labeling like
    /// `(v + p) mod n` would accidentally hand the scan a fresh node on
    /// port 1 and erase the `Θ(m)` vs `O(k log k)` separation.
    Complete {
        /// Number of nodes (`≥ 1`).
        n: usize,
    },
    /// Hypercube on `2^dim` nodes: port `p ∈ 1..=dim` flips bit `p - 1`, and
    /// the incoming port equals the outgoing port.
    Hypercube {
        /// Dimension (`≥ 1`).
        dim: usize,
    },
    /// 2-D torus with wraparound in both dimensions (`rows, cols ≥ 3` so no
    /// parallel edges arise). Ports: 1 = east, 2 = west, 3 = south, 4 = north;
    /// east/west and south/north are mutual inverses.
    Torus {
        /// Number of rows (`≥ 3`).
        rows: usize,
        /// Number of columns (`≥ 3`).
        cols: usize,
    },
}

impl From<PortGraph> for Topology {
    fn from(g: PortGraph) -> Self {
        Topology::Csr(g)
    }
}

impl Topology {
    /// An implicit complete graph `K_n`.
    pub fn complete(n: usize) -> Topology {
        assert!(n >= 1, "complete graph needs at least one node");
        Topology::Complete { n }
    }

    /// An implicit hypercube of the given dimension.
    pub fn hypercube(dim: usize) -> Topology {
        assert!(dim >= 1, "hypercube dimension must be at least 1");
        assert!(dim < 32, "hypercube dimension must fit u32 node ids");
        Topology::Hypercube { dim }
    }

    /// An implicit 2-D torus.
    pub fn torus(rows: usize, cols: usize) -> Topology {
        assert!(rows >= 3 && cols >= 3, "torus needs both dimensions ≥ 3");
        Topology::Torus { rows, cols }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        match *self {
            Topology::Csr(ref g) => g.num_nodes(),
            Topology::Complete { n } => n,
            Topology::Hypercube { dim } => 1usize << dim,
            Topology::Torus { rows, cols } => rows * cols,
        }
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        match *self {
            Topology::Csr(ref g) => g.num_edges(),
            Topology::Complete { n } => n * (n - 1) / 2,
            Topology::Hypercube { dim } => dim * (1usize << dim) / 2,
            Topology::Torus { rows, cols } => 2 * rows * cols,
        }
    }

    /// Degree `δ_v` of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        match *self {
            Topology::Csr(ref g) => g.degree(v),
            Topology::Complete { n } => n - 1,
            Topology::Hypercube { dim } => dim,
            Topology::Torus { .. } => 4,
        }
    }

    /// Maximum degree `Δ`. O(1) for the implicit families, O(n) for CSR.
    pub fn max_degree(&self) -> usize {
        match *self {
            Topology::Csr(ref g) => g.max_degree(),
            Topology::Complete { n } => n - 1,
            Topology::Hypercube { dim } => dim,
            Topology::Torus { .. } => 4,
        }
    }

    /// Minimum degree. O(1) for the implicit families, O(n) for CSR.
    pub fn min_degree(&self) -> usize {
        match *self {
            Topology::Csr(ref g) => g.min_degree(),
            // The implicit families are all regular.
            _ => self.max_degree(),
        }
    }

    /// Traverse the edge leaving `v` through port `p`; returns the node
    /// reached and the incoming port observed there (an agent's `pin`).
    ///
    /// # Panics
    /// Panics if `p` is not a valid port at `v`.
    #[inline]
    pub fn traverse(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        match *self {
            Topology::Csr(ref g) => g.traverse(v, p),
            Topology::Complete { n } => {
                let n = n as u32;
                assert!(
                    p.0 >= 1 && p.0 < n,
                    "port {p} out of range at node {v} (degree {})",
                    n - 1
                );
                if p.0 <= v.0 {
                    (NodeId(p.0 - 1), Port(v.0))
                } else {
                    (NodeId(p.0), Port(v.0 + 1))
                }
            }
            Topology::Hypercube { dim } => {
                assert!(
                    p.0 >= 1 && p.0 as usize <= dim,
                    "port {p} out of range at node {v} (degree {dim})"
                );
                (NodeId(v.0 ^ (1 << (p.0 - 1))), p)
            }
            Topology::Torus { rows, cols } => {
                let (rows, cols) = (rows as u32, cols as u32);
                let (r, c) = (v.0 / cols, v.0 % cols);
                let ((nr, nc), pin) = match p.0 {
                    1 => ((r, (c + 1) % cols), Port(2)),
                    2 => ((r, (c + cols - 1) % cols), Port(1)),
                    3 => (((r + 1) % rows, c), Port(4)),
                    4 => (((r + rows - 1) % rows, c), Port(3)),
                    _ => panic!("port {p} out of range at node {v} (degree 4)"),
                };
                (NodeId(nr * cols + nc), pin)
            }
        }
    }

    /// Hot-path [`traverse`](Topology::traverse): identical results for
    /// every valid `(v, p)`, but validity is the *caller's* contract (checked
    /// only by `debug_assert!`) and the per-family arithmetic is branch-free —
    /// no panicking range tests, no internal port `match` on the torus, and
    /// the torus wraparound is a conditional subtract instead of a `%`
    /// division. The simulator's movement path validates the port once
    /// against [`degree`](Topology::degree) and then calls this; the
    /// `fast_agrees_with_checked_traverse` test pins the equivalence over
    /// every family.
    #[inline]
    pub fn traverse_fast(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        debug_assert!(
            p.0 >= 1 && p.offset() < self.degree(v),
            "port {p} out of range at node {v} (degree {})",
            self.degree(v)
        );
        match *self {
            Topology::Csr(ref g) => g.traverse_fast(v, p),
            Topology::Complete { .. } => {
                // `le` selects between the two halves of the builder labeling
                // without a data-dependent jump.
                let le = u32::from(p.0 <= v.0);
                (NodeId(p.0 - le), Port(v.0 + 1 - le))
            }
            Topology::Hypercube { .. } => (NodeId(v.0 ^ (1 << (p.0 - 1))), p),
            Topology::Torus { rows, cols } => {
                let (rows, cols) = (rows as u32, cols as u32);
                let (r, c) = (v.0 / cols, v.0 % cols);
                // Ports 1..=4 are (east, west, south, north): bit 1 of
                // `p - 1` picks the axis, bit 0 the direction, and the
                // reverse port flips bit 0.
                let e = p.0 - 1;
                let axis = ((e >> 1) & 1) as usize;
                let back = (e & 1) as usize;
                let dim = [cols, rows][axis];
                // +1 forward, dim-1 backward — both mod `dim`.
                let along = [c, r][axis] + [1, dim - 1][back];
                let wrapped = along - dim * u32::from(along >= dim);
                let (nr, nc) = [(r, wrapped), (wrapped, c)][axis];
                (NodeId(nr * cols + nc), Port((e ^ 1) + 1))
            }
        }
    }

    /// The neighbor reached by leaving `v` through port `p`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, p: Port) -> NodeId {
        self.traverse(v, p).0
    }

    /// Iterator over the valid ports `1..=δ_v` at node `v` — the zero-alloc
    /// port iteration the hot loops use.
    #[inline]
    pub fn ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        (1..=self.degree(v) as u32).map(Port)
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// A short human-readable label describing the topology.
    pub fn name(&self) -> String {
        match *self {
            Topology::Csr(ref g) => g.name().to_string(),
            Topology::Complete { n } => format!("complete~{n}"),
            Topology::Hypercube { dim } => format!("hypercube~{dim}"),
            Topology::Torus { rows, cols } => format!("torus~{rows}x{cols}"),
        }
    }

    /// Whether this is an implicit (non-materialized) family.
    pub fn is_implicit(&self) -> bool {
        !matches!(self, Topology::Csr(_))
    }

    /// Materialize into a CSR [`PortGraph`] with **identical** port labels
    /// (every `(v, p)` traversal agrees between `self` and the result).
    ///
    /// Intended for tests and tooling (validation, DOT export); costs
    /// `Θ(n + m)` memory, so don't call it on million-node dense families.
    pub fn to_port_graph(&self) -> PortGraph {
        if let Topology::Csr(g) = self {
            return g.clone();
        }
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * self.num_edges());
        let mut back_ports = Vec::with_capacity(2 * self.num_edges());
        offsets.push(0usize);
        for v in self.nodes() {
            for p in self.ports(v) {
                let (u, pin) = self.traverse(v, p);
                neighbors.push(u);
                back_ports.push(pin);
            }
            offsets.push(neighbors.len());
        }
        let g = PortGraph::from_csr_parts(offsets, neighbors, back_ports, self.name());
        debug_assert!(crate::validate::check_port_labeling(&g).is_ok());
        g
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;
    use crate::validate;

    fn implicit_families() -> Vec<Topology> {
        vec![
            Topology::complete(7),
            Topology::complete(1),
            Topology::hypercube(4),
            Topology::torus(3, 5),
            Topology::torus(4, 4),
        ]
    }

    #[test]
    fn traverse_is_involutive_on_every_implicit_family() {
        for t in implicit_families() {
            for v in t.nodes() {
                for p in t.ports(v) {
                    let (u, pin) = t.traverse(v, p);
                    assert_ne!(u, v, "{t}: self loop at {v}");
                    assert_eq!(t.traverse(u, pin), (v, p), "{t}: not involutive");
                }
            }
        }
    }

    #[test]
    fn materialization_is_valid_and_label_preserving() {
        for t in implicit_families() {
            let g = t.to_port_graph();
            validate::check_port_labeling(&g).unwrap_or_else(|e| panic!("{t}: {e}"));
            assert!(properties::is_connected(&g), "{t} disconnected");
            assert_eq!(g.num_nodes(), t.num_nodes());
            assert_eq!(g.num_edges(), t.num_edges());
            assert_eq!(g.max_degree(), t.max_degree());
            for v in t.nodes() {
                assert_eq!(g.degree(v), t.degree(v), "{t}: degree at {v}");
                for p in t.ports(v) {
                    assert_eq!(g.traverse(v, p), t.traverse(v, p), "{t}: ({v}, {p})");
                }
            }
        }
    }

    #[test]
    fn implicit_complete_matches_the_materialized_labeling_exactly() {
        // Not just the same graph — the same *ports*: K_n must stay the hard
        // instance for port-order scans (see the variant docs).
        for n in [1usize, 2, 3, 7, 12] {
            let implicit = Topology::complete(n);
            let built = crate::generators::complete(n);
            for v in implicit.nodes() {
                assert_eq!(implicit.degree(v), built.degree(v));
                for p in implicit.ports(v) {
                    assert_eq!(
                        implicit.traverse(v, p),
                        built.traverse(v, p),
                        "n={n} {v} {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn fast_agrees_with_checked_traverse() {
        let mut families = implicit_families();
        families.push(Topology::from(crate::generators::ring(9)));
        families.push(Topology::from(crate::generators::line(6)));
        for t in families {
            for v in t.nodes() {
                for p in t.ports(v) {
                    assert_eq!(t.traverse_fast(v, p), t.traverse(v, p), "{t}: ({v}, {p})");
                }
            }
        }
    }

    #[test]
    fn counts_match_the_closed_forms() {
        assert_eq!(Topology::complete(10).num_edges(), 45);
        assert_eq!(Topology::hypercube(5).num_nodes(), 32);
        assert_eq!(Topology::hypercube(5).num_edges(), 80);
        assert_eq!(Topology::torus(4, 6).num_edges(), 48);
        assert_eq!(Topology::torus(4, 6).min_degree(), 4);
    }

    #[test]
    fn million_node_families_answer_queries_without_materializing() {
        let t = Topology::complete(1_000_000);
        assert_eq!(t.degree(NodeId(0)), 999_999);
        let (u, pin) = t.traverse(NodeId(17), Port(999_999));
        assert_eq!(t.traverse(u, pin), (NodeId(17), Port(999_999)));
        let h = Topology::hypercube(20);
        assert_eq!(h.num_nodes(), 1 << 20);
        assert_eq!(h.traverse(NodeId(0), Port(20)).0, NodeId(1 << 19));
        let torus = Topology::torus(1000, 1000);
        assert_eq!(torus.num_nodes(), 1_000_000);
        assert_eq!(torus.traverse(NodeId(0), Port(4)).0, NodeId(999_000));
    }

    #[test]
    fn csr_variant_delegates() {
        let g = crate::generators::ring(8);
        let t = Topology::from(g.clone());
        assert!(!t.is_implicit());
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.num_edges(), 8);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.min_degree(), 2);
        for v in t.nodes() {
            for p in t.ports(v) {
                assert_eq!(t.traverse(v, p), g.traverse(v, p));
            }
        }
        assert_eq!(t.to_port_graph(), g);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn implicit_invalid_port_panics() {
        let _ = Topology::complete(5).traverse(NodeId(0), Port(5));
    }
}
