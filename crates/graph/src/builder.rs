//! Incremental construction of [`PortGraph`]s with validation.

use crate::graph::PortGraph;
use crate::ids::{NodeId, Port};
use std::collections::HashSet;
use std::fmt;

/// Errors reported while building or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node index was out of range for the declared node count.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes declared at construction.
        num_nodes: usize,
    },
    /// A self loop `{v, v}` was added; the model forbids them.
    SelfLoop(NodeId),
    /// The same undirected edge was added twice; the model forbids
    /// parallel edges.
    DuplicateEdge(NodeId, NodeId),
    /// The built graph is not connected (required by the dispersion model).
    Disconnected {
        /// Number of nodes reachable from node 0.
        reachable: usize,
        /// Total number of nodes.
        num_nodes: usize,
    },
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::SelfLoop(v) => write!(f, "self loop at node {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "duplicate edge {{{u}, {v}}} is not allowed")
            }
            GraphError::Disconnected {
                reachable,
                num_nodes,
            } => write!(
                f,
                "graph is disconnected: only {reachable} of {num_nodes} nodes reachable from node 0"
            ),
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Hash state for the duplicate-edge set. The keys are canonicalized
/// `(min, max)` node pairs — already unique, well-distributed u64s — so one
/// splitmix64 finalizer round replaces SipHash, which profiles as the hot
/// spot of building 10^5-edge graphs.
#[derive(Debug, Clone, Copy, Default)]
struct EdgeKeyHash;

#[derive(Debug, Clone, Copy, Default)]
struct EdgeKeyHasher(u64);

impl std::hash::Hasher for EdgeKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u32 writes (tuple layout changes, prefixes):
        // FNV-1a, correct for any byte stream.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u32(&mut self, v: u32) {
        // Two writes pack the (u32, u32) key into one u64.
        self.0 = self.0.rotate_left(32) ^ u64::from(v);
    }

    fn finish(&self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl std::hash::BuildHasher for EdgeKeyHash {
    type Hasher = EdgeKeyHasher;

    fn build_hasher(&self) -> EdgeKeyHasher {
        EdgeKeyHasher(0)
    }
}

/// Builder for [`PortGraph`].
///
/// Ports are assigned per node in edge-insertion order: the first edge
/// incident to `v` gets port 1 at `v`, the second port 2, and so on. Use
/// [`crate::generators::permute_ports`] to randomize the labeling afterwards
/// (the model makes no promise about any correlation between the two labels
/// of an edge).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Undirected edges in insertion order. The CSR arrays are produced by a
    /// counting sort over this list in [`GraphBuilder::build`]; a flat list
    /// keeps construction at O(1) heap allocations instead of one small
    /// `Vec` per node.
    edges: Vec<(NodeId, NodeId)>,
    /// Running degree of each node; doubles as the port counter (ports are
    /// assigned per node in edge-insertion order).
    degrees: Vec<u32>,
    edge_set: HashSet<(u32, u32), EdgeKeyHash>,
    name: String,
    check_connectivity: bool,
}

impl GraphBuilder {
    /// Start a builder for a graph on `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            // Most families are sparse (m = Θ(n)); reserving n slots up
            // front spares the dense-growth reallocation cascade without
            // hurting small builders. Dense families still grow amortized.
            edges: Vec::with_capacity(num_nodes),
            degrees: vec![0; num_nodes],
            edge_set: HashSet::with_capacity_and_hasher(num_nodes, EdgeKeyHash),
            name: String::from("custom"),
            check_connectivity: true,
        }
    }

    /// Set the human-readable name recorded on the built graph.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Disable the connectivity check in [`GraphBuilder::build`] (useful for
    /// tests that construct deliberately broken graphs).
    pub fn allow_disconnected(mut self) -> Self {
        self.check_connectivity = false;
        self
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edge_set.len()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.degrees[v.index()] as usize
    }

    /// Whether the undirected edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edge_set.contains(&key)
    }

    /// Add the undirected edge `{u, v}`.
    ///
    /// Returns the ports assigned at `u` and at `v` respectively.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(Port, Port), GraphError> {
        if u.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v.index() >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = if u.0 <= v.0 { (u.0, v.0) } else { (v.0, u.0) };
        if !self.edge_set.insert(key) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let pu = Port::from_offset(self.degrees[u.index()] as usize);
        let pv = Port::from_offset(self.degrees[v.index()] as usize);
        self.degrees[u.index()] += 1;
        self.degrees[v.index()] += 1;
        self.edges.push((u, v));
        Ok((pu, pv))
    }

    /// Finalize into an immutable [`PortGraph`].
    pub fn build(self) -> Result<PortGraph, GraphError> {
        if self.num_nodes == 0 {
            return Err(GraphError::Empty);
        }
        // Counting-sort the flat edge list into CSR form. Replaying edges in
        // insertion order reproduces the per-node port order that add_edge
        // promised, and each entry's local slot at the far endpoint is
        // exactly the far node's fill cursor at that moment — which is the
        // back-port add_edge assigned.
        let mut offsets = Vec::with_capacity(self.num_nodes + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for &d in &self.degrees {
            total += d as usize;
            offsets.push(total);
        }
        let mut neighbors = vec![NodeId(0); total];
        let mut back_ports = vec![Port::from_offset(0); total];
        let mut fill = vec![0u32; self.num_nodes];
        for &(u, v) in &self.edges {
            let (ui, vi) = (u.index(), v.index());
            let (lu, lv) = (fill[ui] as usize, fill[vi] as usize);
            neighbors[offsets[ui] + lu] = v;
            back_ports[offsets[ui] + lu] = Port::from_offset(lv);
            neighbors[offsets[vi] + lv] = u;
            back_ports[offsets[vi] + lv] = Port::from_offset(lu);
            fill[ui] += 1;
            fill[vi] += 1;
        }
        let graph = PortGraph {
            offsets,
            neighbors,
            back_ports,
            name: self.name,
        };
        if self.check_connectivity {
            let reachable = crate::properties::reachable_from(&graph, NodeId(0));
            if reachable != graph.num_nodes() {
                return Err(GraphError::Disconnected {
                    reachable,
                    num_nodes: graph.num_nodes(),
                });
            }
        }
        debug_assert!(crate::validate::check_port_labeling(&graph).is_ok());
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_assigned_in_insertion_order() {
        let mut b = GraphBuilder::new(4).name("path4");
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(1)).unwrap(),
            (Port(1), Port(1))
        );
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(2)).unwrap(),
            (Port(2), Port(1))
        );
        assert_eq!(
            b.add_edge(NodeId(2), NodeId(3)).unwrap(),
            (Port(2), Port(1))
        );
        let g = b.build().unwrap();
        assert_eq!(g.name(), "path4");
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.traverse(NodeId(0), Port(1)), (NodeId(1), Port(1)));
        assert_eq!(g.traverse(NodeId(1), Port(2)), (NodeId(2), Port(1)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(
            b.add_edge(NodeId(0), NodeId(0)),
            Err(GraphError::SelfLoop(NodeId(0)))
        );
    }

    #[test]
    fn rejects_duplicate_edge_in_either_direction() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(
            b.add_edge(NodeId(1), NodeId(0)),
            Err(GraphError::DuplicateEdge(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn rejects_out_of_range_node() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(NodeId(0), NodeId(5)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_disconnected_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(matches!(
            b.build(),
            Err(GraphError::Disconnected {
                reachable: 2,
                num_nodes: 4
            })
        ));
    }

    #[test]
    fn allow_disconnected_skips_check() {
        let mut b = GraphBuilder::new(4).allow_disconnected();
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(GraphBuilder::new(0).build(), Err(GraphError::Empty));
    }

    #[test]
    fn single_node_graph_is_fine() {
        let g = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(NodeId(0)), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = GraphError::DuplicateEdge(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("duplicate edge"));
        let e = GraphError::Disconnected {
            reachable: 1,
            num_nodes: 3,
        };
        assert!(e.to_string().contains("disconnected"));
    }
}
