//! Strongly-typed identifiers for nodes and local ports.

use std::fmt;

/// Index of a node in a [`crate::PortGraph`].
///
/// Nodes are *anonymous* in the dispersion model: algorithms must never use
/// the numeric value for decisions (it exists only so the simulator and the
/// test/verification code can refer to nodes). The algorithm crates uphold
/// this convention; the type keeps accidental arithmetic at bay.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The underlying index as `usize` (for slice indexing).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A local port number at a node.
///
/// Ports are **1-based**, matching the paper: the edges incident to a node
/// `v` are labeled `1..=δ_v`. `Port(0)` is never a valid label; the sentinel
/// "no port" (the paper's `⊥`) is represented by `Option<Port>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u32);

impl Port {
    /// Zero-based offset for indexing into adjacency slices.
    #[inline]
    pub fn offset(self) -> usize {
        debug_assert!(self.0 >= 1, "ports are 1-based");
        (self.0 - 1) as usize
    }

    /// Construct from a zero-based offset.
    #[inline]
    pub fn from_offset(offset: usize) -> Self {
        Port(offset as u32 + 1)
    }
}

impl fmt::Debug for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_index_roundtrip() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{}", NodeId(7)), "7");
    }

    #[test]
    fn port_offset_roundtrip() {
        for i in 0..100usize {
            let p = Port::from_offset(i);
            assert_eq!(p.offset(), i);
            assert_eq!(p.0 as usize, i + 1);
        }
        assert_eq!(format!("{:?}", Port(3)), "p3");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Port(1) < Port(2));
        assert!(NodeId(1) < NodeId(10));
    }
}
