//! # disp-graph
//!
//! Anonymous, port-labeled graph substrate for mobile-agent dispersion.
//!
//! The dispersion literature (and the reproduced paper, *"Dispersion is
//! (Almost) Optimal under (A)synchrony"*, SPAA 2025) models the environment
//! as a simple, undirected, connected graph `G = (V, E)` whose nodes are
//! **anonymous** (no identifiers, no memory) but whose edges are **port
//! labeled**: the `δ_v` edges incident to a node `v` carry distinct local
//! labels `1..=δ_v`, and the two endpoints of an edge label it independently.
//!
//! This crate provides:
//!
//! * [`PortGraph`] — an immutable, validated, CSR-packed port-labeled graph,
//!   with O(1) "follow port `p` out of node `v`" and O(1) "incoming port at
//!   the other endpoint" queries (the latter is what an agent's `pin`
//!   variable is set to after a move).
//! * [`GraphBuilder`] — incremental construction with validation.
//! * [`generators`] — the graph families used throughout the dispersion
//!   literature and by the reproduction harness: lines, rings, stars, trees,
//!   grids, tori, hypercubes, random regular graphs, connected Erdős–Rényi
//!   graphs, complete graphs, barbells, lollipops.
//! * [`liveness`] — the [`EdgeLiveness`] overlay for dynamic worlds: O(1)
//!   per-edge kill/revive with live-degree counters, base port numbering
//!   preserved.
//! * [`properties`] — degrees, BFS distances, eccentricity, diameter,
//!   connectivity.
//! * [`validate`] — the structural invariants of the model, including the
//!   §8.2 ASYNC port restriction needed by the general asynchronous
//!   algorithm.
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! ## Quick example
//!
//! ```
//! use disp_graph::prelude::*;
//!
//! let g = generators::ring(8);
//! assert_eq!(g.num_nodes(), 8);
//! assert_eq!(g.num_edges(), 8);
//! assert_eq!(g.max_degree(), 2);
//!
//! // Follow port 1 out of node 0, then come straight back.
//! let v = NodeId(0);
//! let (u, pin) = g.traverse(v, Port(1));
//! assert_eq!(g.traverse(u, pin).0, v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod liveness;
pub mod properties;
pub mod topology;
pub mod validate;

pub use builder::GraphBuilder;
pub use graph::PortGraph;
pub use ids::{NodeId, Port};
pub use liveness::EdgeLiveness;
pub use topology::Topology;

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::generators;
    pub use crate::graph::PortGraph;
    pub use crate::ids::{NodeId, Port};
    pub use crate::liveness::EdgeLiveness;
    pub use crate::properties;
    pub use crate::topology::Topology;
    pub use crate::validate;
}
