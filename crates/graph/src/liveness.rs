//! Edge-liveness overlay: dynamic worlds without touching the base graph.
//!
//! The dynamic-graph models of the dispersion literature (e.g. the dynamic
//! ring of arXiv 2408.12220, where an adversary removes one edge per round
//! and restores it the next) need a topology whose edge set changes every
//! round. Rebuilding a CSR graph per round is `Θ(m)` — hopeless at the
//! `n = 10^5..10^6` scale the campaigns run — and renumbering ports would
//! invalidate every port an agent has memorized.
//!
//! [`EdgeLiveness`] solves both: the immutable [`Topology`] base stays
//! untouched (port numbering included), while a compact overlay records
//! which edges are currently *dead*. [`EdgeLiveness::kill`] and
//! [`EdgeLiveness::revive`] flip both half-edges of an undirected edge in
//! O(1), and "is port `p` usable" is an O(1) read. "How many usable ports
//! does `v` have right now" is computed on demand — a popcount over the
//! node's slot range (dense) or a scan of the tiny dead set (sparse) —
//! rather than maintained as a counter array: kill/revive run at *every
//! round boundary* of a dynamic run, so they must stay pure bit flips,
//! while live-degree reads come from verifiers and tests only.
//!
//! Two representations back the same API:
//!
//! * **Dense** (CSR bases): one bit per half-edge — `2m` bits, indexed by
//!   the base CSR's own prefix-sum offsets (no duplicate table).
//! * **Sparse** (implicit bases — complete/hypercube/torus): a hash set of
//!   *dead* half-edges. Implicit families exist precisely because `Θ(m)`
//!   storage is unaffordable there, and at any instant only a handful of
//!   edges are dead, so the overlay must be proportional to the *dead* set.
//!   The set is probed on the movement path and only ever *counted* (an
//!   order-independent scan) for live-degree reads, so determinism is
//!   unaffected by hash order.
//!
//! The differential suite in `tests/proptest_liveness.rs` proves the
//! overlay equivalent to a naive freshly-rebuilt CSR of the surviving
//! edges after arbitrary kill/revive sequences, on all graph families.

use crate::ids::{NodeId, Port};
use crate::topology::Topology;
use std::collections::HashSet;

/// Compact liveness overlay over an immutable [`Topology`].
///
/// All methods take the base topology as an argument (rather than holding a
/// reference) so the overlay can live alongside the topology inside one
/// owning struct (the simulator's `World`) without self-references.
#[derive(Clone, Debug)]
pub struct EdgeLiveness {
    repr: Repr,
    /// Count of dead *half*-edges (always even).
    dead_half_edges: usize,
}

#[derive(Clone, Debug)]
enum Repr {
    /// One bit per half-edge (set = dead). Slots are indexed by the base
    /// CSR's *own* prefix-sum table (`offsets[v] + (p-1)`), not a private
    /// copy: the movement path and the fault adversaries have the graph's
    /// offsets line in cache already, so sharing it keeps the overlay's
    /// per-probe cost to one extra bit load.
    Dense { bits: Vec<u64> },
    /// Encoded dead half-edges (`v << 32 | p`).
    Sparse(HashSet<u64>),
}

#[inline]
fn encode(v: NodeId, p: Port) -> u64 {
    ((v.0 as u64) << 32) | p.0 as u64
}

/// Slot of half-edge `(v, p)` in the dense bitvec: the base CSR's own
/// prefix-sum offset plus the port offset.
#[inline]
fn dense_slot(topo: &Topology, v: NodeId, p: Port) -> usize {
    match topo {
        Topology::Csr(g) => g.offsets[v.index()] + p.offset(),
        _ => unreachable!("dense liveness overlays only back CSR topologies"),
    }
}

impl EdgeLiveness {
    /// A fully-alive overlay for `topo`. `Θ(m)` *bits* for CSR bases,
    /// `O(1)` for implicit bases (dead-edge storage grows with the dead
    /// set only).
    pub fn new(topo: &Topology) -> EdgeLiveness {
        let repr = match topo {
            Topology::Csr(g) => Repr::Dense {
                bits: vec![0u64; g.degree_sum().div_ceil(64)],
            },
            _ => Repr::Sparse(HashSet::new()),
        };
        EdgeLiveness {
            repr,
            dead_half_edges: 0,
        }
    }

    #[inline]
    fn slot_dead(&self, topo: &Topology, v: NodeId, p: Port) -> bool {
        match &self.repr {
            Repr::Dense { bits } => {
                let slot = dense_slot(topo, v, p);
                bits[slot / 64] & (1u64 << (slot % 64)) != 0
            }
            Repr::Sparse(dead) => dead.contains(&encode(v, p)),
        }
    }

    /// Mark half-edge `(v, p)` dead; returns whether it was alive before.
    fn set_dead(&mut self, topo: &Topology, v: NodeId, p: Port) -> bool {
        match &mut self.repr {
            Repr::Dense { bits } => {
                let slot = dense_slot(topo, v, p);
                let (word, mask) = (slot / 64, 1u64 << (slot % 64));
                let was_alive = bits[word] & mask == 0;
                bits[word] |= mask;
                was_alive
            }
            Repr::Sparse(dead) => dead.insert(encode(v, p)),
        }
    }

    /// Mark half-edge `(v, p)` alive; returns whether it was dead before.
    fn set_alive(&mut self, topo: &Topology, v: NodeId, p: Port) -> bool {
        match &mut self.repr {
            Repr::Dense { bits } => {
                let slot = dense_slot(topo, v, p);
                let (word, mask) = (slot / 64, 1u64 << (slot % 64));
                let was_dead = bits[word] & mask != 0;
                bits[word] &= !mask;
                was_dead
            }
            Repr::Sparse(dead) => dead.remove(&encode(v, p)),
        }
    }

    /// Whether the edge behind port `p` at node `v` is currently alive.
    ///
    /// # Panics
    /// Panics if `p` is not a valid port at `v` in the base topology
    /// (liveness never changes the port universe, only its usability).
    #[inline]
    pub fn is_alive(&self, topo: &Topology, v: NodeId, p: Port) -> bool {
        assert!(
            p.0 >= 1 && p.offset() < topo.degree(v),
            "port {p} out of range at node {v} (degree {})",
            topo.degree(v)
        );
        !self.slot_dead(topo, v, p)
    }

    /// Kill the undirected edge leaving `v` through port `p` (both
    /// half-edges flip, both endpoints' live degrees drop). Returns `true`
    /// if the edge was alive, `false` if it was already dead (a no-op).
    ///
    /// # Panics
    /// Panics if `p` is not a valid port at `v` in the base topology.
    pub fn kill(&mut self, topo: &Topology, v: NodeId, p: Port) -> bool {
        let (u, pin) = topo.traverse(v, p);
        if !self.set_dead(topo, v, p) {
            return false;
        }
        let flipped = self.set_dead(topo, u, pin);
        debug_assert!(flipped, "half-edges out of sync at ({v},{p})↔({u},{pin})");
        self.dead_half_edges += 2;
        true
    }

    /// Restore the undirected edge leaving `v` through port `p`. Returns
    /// `true` if the edge was dead, `false` if it was already alive (a
    /// no-op).
    ///
    /// # Panics
    /// Panics if `p` is not a valid port at `v` in the base topology.
    pub fn revive(&mut self, topo: &Topology, v: NodeId, p: Port) -> bool {
        let (u, pin) = topo.traverse(v, p);
        if !self.set_alive(topo, v, p) {
            return false;
        }
        let flipped = self.set_alive(topo, u, pin);
        debug_assert!(flipped, "half-edges out of sync at ({v},{p})↔({u},{pin})");
        self.dead_half_edges -= 2;
        true
    }

    /// Current live degree of `v`: base degree minus incident dead edges.
    /// Computed on demand — `O(δ_v / 64)` for dense bases (a popcount over
    /// the node's slot range), `O(dead)` for sparse ones (a scan of the
    /// dead set, whose size the fault models keep tiny) — so the per-round
    /// kill/revive path never maintains a counter array.
    pub fn live_degree(&self, topo: &Topology, v: NodeId) -> usize {
        let degree = topo.degree(v);
        let dead_here = match &self.repr {
            Repr::Dense { bits } => {
                let start = dense_slot(topo, v, Port(1));
                let end = start + degree;
                let mut count = 0usize;
                let mut slot = start;
                while slot < end {
                    let word = slot / 64;
                    let lo = slot % 64;
                    let span = (end - slot).min(64 - lo);
                    let mask = if span == 64 {
                        u64::MAX
                    } else {
                        ((1u64 << span) - 1) << lo
                    };
                    count += (bits[word] & mask).count_ones() as usize;
                    slot += span;
                }
                count
            }
            // Order-independent count, so hash iteration order is harmless.
            Repr::Sparse(dead) => dead.iter().filter(|&&e| (e >> 32) == v.0 as u64).count(),
        };
        degree - dead_here
    }

    /// Number of currently-dead undirected edges.
    #[inline]
    pub fn dead_edges(&self) -> usize {
        self.dead_half_edges / 2
    }

    /// Whether every edge of the base is currently alive.
    #[inline]
    pub fn all_alive(&self) -> bool {
        self.dead_half_edges == 0
    }

    /// Iterator over the currently-live ports at `v`, in base port order.
    /// Port numbers are the *base* labels (they never renumber); the `i`-th
    /// yielded port corresponds to port `i+1` of a compacted rebuild of the
    /// surviving graph.
    pub fn live_ports<'a>(
        &'a self,
        topo: &'a Topology,
        v: NodeId,
    ) -> impl Iterator<Item = Port> + 'a {
        topo.ports(v).filter(move |&p| !self.slot_dead(topo, v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn kill_and_revive_flip_both_half_edges_and_degrees() {
        let topo = Topology::from(generators::ring(6));
        let mut live = EdgeLiveness::new(&topo);
        assert!(live.all_alive());
        let (v, p) = (NodeId(2), Port(2)); // edge 2–3
        let (u, pin) = topo.traverse(v, p);
        assert!(live.kill(&topo, v, p));
        assert!(!live.is_alive(&topo, v, p));
        assert!(!live.is_alive(&topo, u, pin));
        assert_eq!(live.live_degree(&topo, v), 1);
        assert_eq!(live.live_degree(&topo, u), 1);
        assert_eq!(live.dead_edges(), 1);
        // Idempotent kill, then revive from the *other* endpoint.
        assert!(!live.kill(&topo, v, p));
        assert!(live.revive(&topo, u, pin));
        assert!(live.is_alive(&topo, v, p));
        assert_eq!(live.live_degree(&topo, v), 2);
        assert!(live.all_alive());
        assert!(!live.revive(&topo, v, p));
    }

    #[test]
    fn implicit_families_use_the_sparse_overlay() {
        let topo = Topology::complete(1_000_000);
        // Θ(m) storage would OOM here; construction must stay O(n).
        let mut live = EdgeLiveness::new(&topo);
        let (v, p) = (NodeId(17), Port(123));
        assert!(live.kill(&topo, v, p));
        assert!(!live.is_alive(&topo, v, p));
        assert_eq!(live.live_degree(&topo, v), 999_998);
        let (u, pin) = topo.traverse(v, p);
        assert!(!live.is_alive(&topo, u, pin));
        assert!(live.revive(&topo, v, p));
        assert!(live.all_alive());
    }

    #[test]
    fn live_ports_preserve_base_numbering() {
        let topo = Topology::from(generators::star(5));
        let mut live = EdgeLiveness::new(&topo);
        live.kill(&topo, NodeId(0), Port(2));
        let ports: Vec<Port> = live.live_ports(&topo, NodeId(0)).collect();
        assert_eq!(ports, vec![Port(1), Port(3), Port(4)]);
        assert_eq!(live.live_degree(&topo, NodeId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn liveness_rejects_invalid_ports() {
        let topo = Topology::from(generators::ring(4));
        let live = EdgeLiveness::new(&topo);
        let _ = live.is_alive(&topo, NodeId(0), Port(3));
    }
}
