//! Graphviz (DOT) export, mainly for debugging and documentation figures.

use crate::graph::PortGraph;
use std::fmt::Write as _;

/// Render the graph in Graphviz DOT format.
///
/// Each undirected edge is emitted once, annotated with its two port labels
/// as `taillabel`/`headlabel`, so the anonymized, port-labeled structure can
/// be inspected visually.
pub fn to_dot(g: &PortGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", g.name());
    let _ = writeln!(out, "  node [shape=circle];");
    for v in g.nodes() {
        let _ = writeln!(out, "  {};", v.0);
    }
    for (u, p, v, q) in g.edges() {
        let _ = writeln!(
            out,
            "  {} -- {} [taillabel=\"{}\", headlabel=\"{}\"];",
            u.0, v.0, p.0, q.0
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_every_edge_once() {
        let g = generators::ring(5);
        let dot = to_dot(&g);
        assert!(dot.starts_with("graph"));
        assert_eq!(dot.matches(" -- ").count(), g.num_edges());
        assert!(dot.contains("taillabel"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_lists_every_node() {
        let g = generators::line(7);
        let dot = to_dot(&g);
        for v in g.nodes() {
            assert!(dot.contains(&format!("  {};", v.0)));
        }
    }
}
