//! Structural properties: BFS distances, connectivity, diameter, degree
//! statistics.

use crate::graph::PortGraph;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// Number of nodes reachable from `start` (including `start`).
///
/// Runs on every `GraphBuilder::build`, so it traverses with a flat seen
/// bitmap and a grow-only visit stack instead of paying for the per-node
/// `Option<usize>` distances that [`bfs_distances`] materializes.
pub fn reachable_from(g: &PortGraph, start: NodeId) -> usize {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for &u in g.neighbors_of(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                count += 1;
                stack.push(u);
            }
        }
    }
    count
}

/// Whether the graph is connected.
pub fn is_connected(g: &PortGraph) -> bool {
    g.num_nodes() > 0 && reachable_from(g, NodeId(0)) == g.num_nodes()
}

/// BFS distances from `start`; `None` for unreachable nodes.
pub fn bfs_distances(g: &PortGraph, start: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()].expect("queued nodes have a distance");
        for &u in g.neighbors_of(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(dv + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of `v`: the largest BFS distance from `v` to any node.
///
/// Returns `None` if some node is unreachable from `v`.
pub fn eccentricity(g: &PortGraph, v: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, v);
    dist.iter()
        .copied()
        .collect::<Option<Vec<_>>>()
        .map(|ds| ds.into_iter().max().unwrap_or(0))
}

/// Exact diameter by running a BFS from every node. `O(n·m)`; intended for
/// the graph sizes used in tests and experiments.
pub fn diameter(g: &PortGraph) -> Option<usize> {
    let mut best = 0usize;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Fast diameter *lower bound* via a double BFS sweep (exact on trees).
pub fn diameter_double_sweep(g: &PortGraph) -> Option<usize> {
    if g.num_nodes() == 0 {
        return None;
    }
    let d0 = bfs_distances(g, NodeId(0));
    let far = argmax(&d0)?;
    let d1 = bfs_distances(g, far);
    let far2 = argmax(&d1)?;
    d1[far2.index()]
}

fn argmax(dist: &[Option<usize>]) -> Option<NodeId> {
    let mut best: Option<(usize, usize)> = None;
    for (i, d) in dist.iter().enumerate() {
        let d = (*d)?;
        if best.map(|(_, bd)| d > bd).unwrap_or(true) {
            best = Some((i, d));
        }
    }
    best.map(|(i, _)| NodeId(i as u32))
}

/// Summary of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree (`Δ`).
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
}

/// Compute [`DegreeStats`] for the graph.
pub fn degree_stats(g: &PortGraph) -> DegreeStats {
    DegreeStats {
        min: g.min_degree(),
        max: g.max_degree(),
        mean: if g.num_nodes() == 0 {
            0.0
        } else {
            g.degree_sum() as f64 / g.num_nodes() as f64
        },
    }
}

/// Whether the graph is a tree (connected with `m = n - 1`).
pub fn is_tree(g: &PortGraph) -> bool {
    is_connected(g) && g.num_edges() + 1 == g.num_nodes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn line_distances_and_diameter() {
        let g = generators::line(10);
        let d = bfs_distances(&g, NodeId(0));
        for (i, di) in d.iter().enumerate() {
            assert_eq!(*di, Some(i));
        }
        assert_eq!(diameter(&g), Some(9));
        assert_eq!(diameter_double_sweep(&g), Some(9));
        assert!(is_tree(&g));
    }

    #[test]
    fn ring_diameter() {
        let g = generators::ring(10);
        assert_eq!(diameter(&g), Some(5));
        assert!(!is_tree(&g));
        assert!(is_connected(&g));
    }

    #[test]
    fn complete_graph_diameter_is_one() {
        let g = generators::complete(6);
        assert_eq!(diameter(&g), Some(1));
        let stats = degree_stats(&g);
        assert_eq!(stats.min, 5);
        assert_eq!(stats.max, 5);
        assert!((stats.mean - 5.0).abs() < 1e-9);
    }

    #[test]
    fn star_eccentricities() {
        let g = generators::star(9); // center + 8 leaves
        assert_eq!(eccentricity(&g, NodeId(0)), Some(1));
        assert_eq!(eccentricity(&g, NodeId(1)), Some(2));
        assert_eq!(diameter(&g), Some(2));
        assert!(is_tree(&g));
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        let g = generators::random_tree(64, 42);
        assert_eq!(diameter(&g), diameter_double_sweep(&g));
    }

    #[test]
    fn double_sweep_lower_bounds_diameter() {
        let g = generators::erdos_renyi_connected(40, 0.15, 7);
        let exact = diameter(&g).unwrap();
        let sweep = diameter_double_sweep(&g).unwrap();
        assert!(sweep <= exact);
    }

    #[test]
    fn singleton_graph() {
        let g = crate::GraphBuilder::new(1).build().unwrap();
        assert_eq!(diameter(&g), Some(0));
        assert!(is_connected(&g));
        assert!(is_tree(&g));
    }
}
