//! The immutable, CSR-packed port-labeled graph.

use crate::ids::{NodeId, Port};

/// A simple, undirected, connected(-checkable), anonymous, port-labeled graph.
///
/// Internally the adjacency is stored in CSR (compressed sparse row) form:
/// for node `v`, the slice `neighbors[offsets[v] .. offsets[v+1]]` lists the
/// neighbors reachable through ports `1..=δ_v` in port order, and the
/// parallel slice `back_ports[..]` gives, for each of those edges, the port
/// label assigned to the edge at the *other* endpoint. The latter is what an
/// agent observes as its incoming port (`pin`) after traversing the edge.
///
/// Construction goes through [`crate::GraphBuilder`] or the
/// [`crate::generators`], both of which validate the structure (distinct
/// 1-based ports at every node, symmetric edges, no self-loops or parallel
/// edges).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortGraph {
    pub(crate) offsets: Vec<usize>,
    pub(crate) neighbors: Vec<NodeId>,
    pub(crate) back_ports: Vec<Port>,
    pub(crate) name: String,
}

impl PortGraph {
    /// Assemble directly from pre-validated CSR arrays (used by
    /// [`crate::Topology::to_port_graph`], which materializes implicit
    /// families with their exact port labeling).
    pub(crate) fn from_csr_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        back_ports: Vec<Port>,
        name: String,
    ) -> PortGraph {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(neighbors.len(), back_ports.len());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        PortGraph {
            offsets,
            neighbors,
            back_ports,
            name,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree `δ_v` of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Maximum degree `Δ` over all nodes.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|i| self.degree(NodeId(i as u32)))
            .max()
            .unwrap_or(0)
    }

    /// A short human-readable label describing how the graph was generated.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Override the human-readable label.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Iterator over the valid ports `1..=δ_v` at node `v`.
    pub fn ports(&self, v: NodeId) -> impl Iterator<Item = Port> + '_ {
        (1..=self.degree(v) as u32).map(Port)
    }

    /// The neighbor reached by leaving `v` through port `p` (the paper's
    /// `N(v, p)`).
    ///
    /// # Panics
    /// Panics if `p` is not a valid port at `v`.
    #[inline]
    pub fn neighbor(&self, v: NodeId, p: Port) -> NodeId {
        let base = self.offsets[v.index()];
        assert!(
            p.offset() < self.degree(v),
            "port {p} out of range at node {v} (degree {})",
            self.degree(v)
        );
        self.neighbors[base + p.offset()]
    }

    /// Traverse the edge leaving `v` through port `p`.
    ///
    /// Returns the node reached and the **incoming port** at that node, i.e.
    /// the port an arriving agent would observe as its `pin` value.
    #[inline]
    pub fn traverse(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        let base = self.offsets[v.index()];
        assert!(
            p.offset() < self.degree(v),
            "port {p} out of range at node {v} (degree {})",
            self.degree(v)
        );
        (
            self.neighbors[base + p.offset()],
            self.back_ports[base + p.offset()],
        )
    }

    /// Hot-path [`traverse`](PortGraph::traverse): identical results for
    /// every valid `(v, p)`, but port validity is the *caller's* contract —
    /// checked only by `debug_assert!`, so release builds carry no panicking
    /// range test. The simulator validates the port once against
    /// [`degree`](PortGraph::degree) and then calls this.
    #[inline]
    pub fn traverse_fast(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        debug_assert!(
            p.0 >= 1 && p.offset() < self.degree(v),
            "port {p} out of range at node {v} (degree {})",
            self.degree(v)
        );
        let i = self.offsets[v.index()] + p.offset();
        (self.neighbors[i], self.back_ports[i])
    }

    /// All neighbors of `v`, in port order.
    pub fn neighbors_of(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// The port at `v` leading to `u`, if `{v, u}` is an edge (the paper's
    /// `p_v(u)`). Linear in `δ_v`.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors_of(v)
            .iter()
            .position(|&w| w == u)
            .map(Port::from_offset)
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.port_to(u, v).is_some()
    }

    /// Iterate over every undirected edge once, as
    /// `(u, port_at_u, v, port_at_v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Port, NodeId, Port)> + '_ {
        self.nodes().flat_map(move |u| {
            self.ports(u).filter_map(move |p| {
                let (v, q) = self.traverse(u, p);
                (u < v).then_some((u, p, v, q))
            })
        })
    }

    /// Sum of all degrees (= 2m).
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// Minimum degree over all nodes.
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|i| self.degree(NodeId(i as u32)))
            .min()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{NodeId, Port};

    fn triangle() -> crate::PortGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1)).unwrap();
        b.add_edge(NodeId(1), NodeId(2)).unwrap();
        b.add_edge(NodeId(2), NodeId(0)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree_sum(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn traverse_is_involutive() {
        let g = triangle();
        for v in g.nodes() {
            for p in g.ports(v) {
                let (u, pin) = g.traverse(v, p);
                assert_ne!(u, v, "no self loops");
                let (back, back_pin) = g.traverse(u, pin);
                assert_eq!(back, v);
                assert_eq!(back_pin, p);
            }
        }
    }

    #[test]
    fn port_to_agrees_with_neighbor() {
        let g = triangle();
        for v in g.nodes() {
            for p in g.ports(v) {
                let u = g.neighbor(v, p);
                assert_eq!(g.port_to(v, u), Some(p));
                assert!(g.has_edge(v, u));
                assert!(g.has_edge(u, v));
            }
        }
        assert_eq!(g.port_to(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, p, v, q) in edges {
            assert!(u < v);
            assert_eq!(g.traverse(u, p), (v, q));
            assert_eq!(g.traverse(v, q), (u, p));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_port_panics() {
        let g = triangle();
        let _ = g.neighbor(NodeId(0), Port(3));
    }

    #[test]
    fn rename_changes_label_only() {
        let mut g = triangle();
        let edges_before: Vec<_> = g.edges().collect();
        g.set_name("triangle-renamed");
        assert_eq!(g.name(), "triangle-renamed");
        assert_eq!(edges_before, g.edges().collect::<Vec<_>>());
    }
}
