//! Validation of the port-labeled graph model invariants.

use crate::graph::PortGraph;
use crate::ids::{NodeId, Port};
use std::fmt;

/// A violation of the port-labeled graph model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A CSR back-port entry does not point back to the originating slot.
    AsymmetricEdge {
        /// Node where the traversal started.
        from: NodeId,
        /// Port used at `from`.
        port: Port,
    },
    /// A node has a self loop.
    SelfLoop(NodeId),
    /// The same neighbor appears behind two different ports of one node
    /// (parallel edges).
    ParallelEdge {
        /// The node with the duplicate neighbor.
        node: NodeId,
        /// The duplicated neighbor.
        neighbor: NodeId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::AsymmetricEdge { from, port } => {
                write!(f, "edge leaving {from} via {port} is not symmetric")
            }
            ValidationError::SelfLoop(v) => write!(f, "self loop at {v}"),
            ValidationError::ParallelEdge { node, neighbor } => {
                write!(f, "parallel edge between {node} and {neighbor}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check that the graph is a simple undirected graph with a consistent
/// port labeling: every port `p` at `v` leads to a node `u ≠ v`, the recorded
/// incoming port leads straight back, and no neighbor repeats.
pub fn check_port_labeling(g: &PortGraph) -> Result<(), ValidationError> {
    for v in g.nodes() {
        let mut seen = std::collections::HashSet::new();
        for p in g.ports(v) {
            let (u, q) = g.traverse(v, p);
            if u == v {
                return Err(ValidationError::SelfLoop(v));
            }
            if !seen.insert(u) {
                return Err(ValidationError::ParallelEdge {
                    node: v,
                    neighbor: u,
                });
            }
            if q.offset() >= g.degree(u) || g.traverse(u, q) != (v, p) {
                return Err(ValidationError::AsymmetricEdge { from: v, port: p });
            }
        }
    }
    Ok(())
}

/// Check the additional port restriction assumed by the ASYNC **general**
/// algorithm (paper §8.2):
///
/// > For any edge `(u, v)`, the two ports cannot be labelled `(1,1)`, `(1,2)`,
/// > `(2,1)`, or `(2,2)`, except that port 1 is permitted at a degree-1 node
/// > and port 2 is permitted at a degree-2 node.
///
/// We read the exceptions as exempting low ports at nodes of degree ≤ 2
/// entirely (such nodes have no ports other than 1 and 2, so any stricter
/// reading would make the restriction unsatisfiable on, e.g., path graphs).
/// The restriction therefore bites only when a node of degree ≥ 3 uses one of
/// its low ports on an edge whose other endpoint also uses a low port.
///
/// Returns the list of offending edges (empty means the restriction holds).
pub fn async_port_restriction_violations(g: &PortGraph) -> Vec<(NodeId, Port, NodeId, Port)> {
    let exempt = |v: NodeId, _p: Port| -> bool { g.degree(v) <= 2 };
    g.edges()
        .filter(|&(u, p, v, q)| {
            let low = |x: Port| x == Port(1) || x == Port(2);
            // A low-low pair is permitted only if *every* endpoint using a low
            // port is covered by one of the two exemptions.
            low(p) && low(q) && (!exempt(u, p) || !exempt(v, q))
        })
        .collect()
}

/// Whether the §8.2 ASYNC port restriction holds for `g`.
pub fn satisfies_async_port_restriction(g: &PortGraph) -> bool {
    async_port_restriction_violations(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn generated_graphs_validate() {
        for g in [
            generators::line(12),
            generators::ring(9),
            generators::complete(8),
            generators::random_tree(30, 3),
            generators::erdos_renyi_connected(30, 0.2, 3),
        ] {
            check_port_labeling(&g).unwrap();
        }
    }

    #[test]
    fn line_satisfies_async_restriction_via_exemptions() {
        // In a line every interior node has degree 2 and endpoints degree 1,
        // so all low-port pairs fall under the exemptions.
        let g = generators::line(10);
        assert!(satisfies_async_port_restriction(&g));
    }

    #[test]
    fn star_low_port_pairs_are_detected() {
        // In a star built in insertion order, the edge (center, leaf 1) is
        // (port 1, port 1) and the center has degree > 2, so it violates the
        // restriction (the leaf is exempt but the center is not — both ends
        // must be exempt or high).
        let g = generators::star(8);
        let v = async_port_restriction_violations(&g);
        assert!(!v.is_empty());
        assert!(!satisfies_async_port_restriction(&g));
    }

    #[test]
    fn violation_reporting_is_consistent() {
        let g = generators::complete(6);
        for (u, p, v, q) in async_port_restriction_violations(&g) {
            assert_eq!(g.traverse(u, p), (v, q));
            assert!(p.0 <= 2 && q.0 <= 2);
        }
    }
}
