//! Property-based tests on the graph substrate.
//!
//! The properties are checked over seeded random instances drawn with
//! [`disp_rng`] (the workspace has no external property-testing dependency);
//! every case prints its drawn parameters on failure so a reproduction is one
//! `StdRng::seed_from_u64` away.

use disp_graph::prelude::*;
use disp_rng::prelude::*;

const CASES: usize = 64;

/// Every generated random tree is a valid, connected tree whose traversal
/// function is an involution.
#[test]
fn random_tree_invariants() {
    let mut rng = StdRng::seed_from_u64(0x7EE5_0001);
    for case in 0..CASES {
        let n = rng.random_range(1..200usize);
        let seed = rng.random_range(0..1000u64);
        let g = generators::random_tree(n, seed);
        assert_eq!(g.num_nodes(), n, "case {case}: n={n} seed={seed}");
        assert_eq!(g.num_edges(), n - 1, "case {case}: n={n} seed={seed}");
        assert!(properties::is_tree(&g), "case {case}: n={n} seed={seed}");
        validate::check_port_labeling(&g).unwrap();
        for v in g.nodes() {
            for p in g.ports(v) {
                let (u, pin) = g.traverse(v, p);
                assert_eq!(g.traverse(u, pin), (v, p), "n={n} seed={seed}");
            }
        }
    }
}

/// Erdős–Rényi graphs are connected and simple for any p.
#[test]
fn er_invariants() {
    let mut rng = StdRng::seed_from_u64(0x7EE5_0002);
    for case in 0..CASES {
        let n = rng.random_range(2..80usize);
        let p = rng.random_f64();
        let seed = rng.random_range(0..1000u64);
        let g = generators::erdos_renyi_connected(n, p, seed);
        let ctx = format!("case {case}: n={n} p={p} seed={seed}");
        assert!(properties::is_connected(&g), "{ctx}");
        validate::check_port_labeling(&g).unwrap();
        assert!(g.num_edges() >= n - 1, "{ctx}");
        assert!(g.num_edges() <= n * (n - 1) / 2, "{ctx}");
    }
}

/// Port permutation preserves the edge multiset and degrees.
#[test]
fn permute_ports_preserves_edges() {
    let mut rng = StdRng::seed_from_u64(0x7EE5_0003);
    for case in 0..CASES {
        let n = rng.random_range(2..60usize);
        let p = 0.05 + 0.45 * rng.random_f64();
        let s1 = rng.random_range(0..100u64);
        let s2 = rng.random_range(0..100u64);
        let g = generators::erdos_renyi_connected(n, p, s1);
        let h = generators::permute_ports(&g, s2);
        validate::check_port_labeling(&h).unwrap();
        let canon = |g: &PortGraph| {
            let mut e: Vec<(u32, u32)> = g.edges().map(|(u, _, v, _)| (u.0, v.0)).collect();
            e.sort();
            e
        };
        let ctx = format!("case {case}: n={n} p={p} s1={s1} s2={s2}");
        assert_eq!(canon(&g), canon(&h), "{ctx}");
        for v in g.nodes() {
            assert_eq!(g.degree(v), h.degree(v), "{ctx}");
        }
    }
}

/// BFS distances satisfy the triangle property along edges:
/// |d(u) - d(v)| ≤ 1 for every edge {u, v}.
#[test]
fn bfs_distance_lipschitz() {
    let mut rng = StdRng::seed_from_u64(0x7EE5_0004);
    for case in 0..CASES {
        let n = rng.random_range(2..80usize);
        let p = 0.02 + 0.38 * rng.random_f64();
        let seed = rng.random_range(0..500u64);
        let g = generators::erdos_renyi_connected(n, p, seed);
        let dist = properties::bfs_distances(&g, NodeId(0));
        for (u, _, v, _) in g.edges() {
            let du = dist[u.index()].unwrap() as i64;
            let dv = dist[v.index()].unwrap() as i64;
            assert!(
                (du - dv).abs() <= 1,
                "case {case}: n={n} p={p} seed={seed}: edge ({u}, {v})"
            );
        }
    }
}

/// The double-sweep diameter estimate never exceeds the exact diameter and
/// matches it exactly on trees.
#[test]
fn double_sweep_bounds() {
    let mut rng = StdRng::seed_from_u64(0x7EE5_0005);
    for case in 0..CASES {
        let n = rng.random_range(2..80usize);
        let seed = rng.random_range(0..300u64);
        let tree = generators::random_tree(n, seed);
        assert_eq!(
            properties::diameter(&tree),
            properties::diameter_double_sweep(&tree),
            "case {case}: tree n={n} seed={seed}"
        );
        let g = generators::erdos_renyi_connected(n, 0.1, seed);
        let exact = properties::diameter(&g).unwrap();
        let sweep = properties::diameter_double_sweep(&g).unwrap();
        assert!(sweep <= exact, "case {case}: n={n} seed={seed}");
    }
}
