//! Property-based tests on the graph substrate.

use disp_graph::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated random tree is a valid, connected tree whose
    /// traversal function is an involution.
    #[test]
    fn random_tree_invariants(n in 1usize..200, seed in 0u64..1000) {
        let g = generators::random_tree(n, seed);
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_edges(), n - 1);
        prop_assert!(properties::is_tree(&g));
        validate::check_port_labeling(&g).unwrap();
        for v in g.nodes() {
            for p in g.ports(v) {
                let (u, pin) = g.traverse(v, p);
                prop_assert_eq!(g.traverse(u, pin), (v, p));
            }
        }
    }

    /// Erdős–Rényi graphs are connected and simple for any p.
    #[test]
    fn er_invariants(n in 2usize..80, p in 0.0f64..1.0, seed in 0u64..1000) {
        let g = generators::erdos_renyi_connected(n, p, seed);
        prop_assert!(properties::is_connected(&g));
        validate::check_port_labeling(&g).unwrap();
        prop_assert!(g.num_edges() >= n - 1);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    /// Port permutation preserves the edge multiset and degrees.
    #[test]
    fn permute_ports_preserves_edges(n in 2usize..60, p in 0.05f64..0.5, s1 in 0u64..100, s2 in 0u64..100) {
        let g = generators::erdos_renyi_connected(n, p, s1);
        let h = generators::permute_ports(&g, s2);
        validate::check_port_labeling(&h).unwrap();
        let canon = |g: &PortGraph| {
            let mut e: Vec<(u32, u32)> = g.edges().map(|(u, _, v, _)| (u.0, v.0)).collect();
            e.sort();
            e
        };
        prop_assert_eq!(canon(&g), canon(&h));
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), h.degree(v));
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(u) - d(v)| ≤ 1 for every edge {u, v}.
    #[test]
    fn bfs_distance_lipschitz(n in 2usize..80, p in 0.02f64..0.4, seed in 0u64..500) {
        let g = generators::erdos_renyi_connected(n, p, seed);
        let dist = properties::bfs_distances(&g, NodeId(0));
        for (u, _, v, _) in g.edges() {
            let du = dist[u.index()].unwrap() as i64;
            let dv = dist[v.index()].unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1);
        }
    }

    /// The double-sweep diameter estimate never exceeds the exact diameter
    /// and matches it exactly on trees.
    #[test]
    fn double_sweep_bounds(n in 2usize..80, seed in 0u64..300) {
        let tree = generators::random_tree(n, seed);
        prop_assert_eq!(
            properties::diameter(&tree),
            properties::diameter_double_sweep(&tree)
        );
        let g = generators::erdos_renyi_connected(n, 0.1, seed);
        let exact = properties::diameter(&g).unwrap();
        let sweep = properties::diameter_double_sweep(&g).unwrap();
        prop_assert!(sweep <= exact);
    }
}
