//! CSR ↔ implicit equivalence property tests.
//!
//! Seeded-loop property tests (the workspace's proptest substitute) over
//! ~400 generated specs across every [`GraphFamily`] variant: the
//! [`Topology`] returned by `instantiate_topology` must present exactly the
//! same graph *view* as the legacy materialized builder path — identical
//! degrees, identical sorted neighbor sets, and a port-consistent
//! (involutive, self-loop-free, duplicate-free) labeling — and the implicit
//! dense families must agree with their materialized counterparts at small
//! `n`. The complete graph must agree port-for-port (its labeling is the
//! paper's hard instance for scans; see `topology.rs`).

use disp_graph::generators::GraphFamily;
use disp_graph::{NodeId, PortGraph, Topology};
use disp_rng::mix;
use std::collections::HashSet;

fn all_families() -> Vec<GraphFamily> {
    let mut fams = GraphFamily::all();
    // A couple of parameter variants beyond the report defaults.
    fams.push(GraphFamily::RandomRegular { degree: 3 });
    fams.push(GraphFamily::ErdosRenyi { avg_degree: 3.5 });
    fams.push(GraphFamily::Caterpillar { legs: 1 });
    fams
}

fn sorted_neighbors(t: &Topology, v: NodeId) -> Vec<NodeId> {
    let mut ns: Vec<NodeId> = t.ports(v).map(|p| t.neighbor(v, p)).collect();
    ns.sort_unstable();
    ns
}

fn sorted_neighbors_csr(g: &PortGraph, v: NodeId) -> Vec<NodeId> {
    let mut ns: Vec<NodeId> = g.neighbors_of(v).to_vec();
    ns.sort_unstable();
    ns
}

/// Port consistency: ports are a bijection onto distinct non-self neighbors
/// and `traverse` is an involution.
fn check_port_consistency(t: &Topology, ctx: &str) {
    for v in t.nodes() {
        let mut seen = HashSet::new();
        for p in t.ports(v) {
            let (u, pin) = t.traverse(v, p);
            assert_ne!(u, v, "{ctx}: self loop at {v}");
            assert!(seen.insert(u), "{ctx}: duplicate edge {v}→{u}");
            assert_eq!(
                t.traverse(u, pin),
                (v, p),
                "{ctx}: not involutive at ({v},{p})"
            );
        }
    }
}

#[test]
fn topology_and_builder_views_agree_across_400_specs() {
    let mut checked = 0usize;
    for (fi, family) in all_families().iter().enumerate() {
        for (ni, &n) in [5usize, 8, 13, 21, 32, 47, 64].iter().enumerate() {
            for rep in 0..4u64 {
                let seed = mix(&[0xC5A0, fi as u64, ni as u64, rep]);
                let ctx = format!("{family} n={n} seed={seed}");
                let topo = family.instantiate_topology(n, seed);
                let built = family.instantiate(n, seed);
                assert_eq!(topo.num_nodes(), built.num_nodes(), "{ctx}: n");
                assert_eq!(topo.num_edges(), built.num_edges(), "{ctx}: m");
                assert_eq!(topo.max_degree(), built.max_degree(), "{ctx}: Δ");
                assert_eq!(topo.min_degree(), built.min_degree(), "{ctx}: δ");
                for v in topo.nodes() {
                    assert_eq!(topo.degree(v), built.degree(v), "{ctx}: degree({v})");
                    assert_eq!(
                        sorted_neighbors(&topo, v),
                        sorted_neighbors_csr(&built, v),
                        "{ctx}: neighbors({v})"
                    );
                }
                check_port_consistency(&topo, &ctx);
                checked += 1;
            }
        }
    }
    assert!(checked >= 400, "only {checked} specs checked");
}

#[test]
fn non_dense_families_materialize_identically() {
    // For every CSR-backed family the two entry points must be the *same*
    // construction, port labels included.
    for family in all_families() {
        for n in [6usize, 19, 40] {
            let seed = mix(&[0xBEEF, n as u64]);
            let topo = family.instantiate_topology(n, seed);
            if let Topology::Csr(g) = &topo {
                assert_eq!(*g, family.instantiate(n, seed), "{family} n={n}");
            }
        }
    }
}

#[test]
fn dense_families_are_implicit_and_complete_matches_ports_exactly() {
    for family in [
        GraphFamily::Complete,
        GraphFamily::Hypercube,
        GraphFamily::Torus,
    ] {
        for n in [8usize, 25, 64] {
            let topo = family.instantiate_topology(n, 1);
            assert!(topo.is_implicit(), "{family} n={n} should be implicit");
            // Materializing the implicit family yields a valid CSR graph
            // with the same view.
            let mat = topo.to_port_graph();
            disp_graph::validate::check_port_labeling(&mat).unwrap();
            assert_eq!(mat.num_edges(), topo.num_edges());
        }
    }
    // The complete graph agrees with the builder port-for-port.
    for n in [4usize, 9, 33] {
        let topo = GraphFamily::Complete.instantiate_topology(n, 1);
        let built = GraphFamily::Complete.instantiate(n, 1);
        for v in topo.nodes() {
            for p in topo.ports(v) {
                assert_eq!(topo.traverse(v, p), built.traverse(v, p), "K_{n} ({v},{p})");
            }
        }
    }
}

#[test]
fn implicit_families_stay_o1_memory_at_scale() {
    // A smoke check that the dense families answer queries at n = 10^6
    // without materializing (this test would OOM/stall otherwise).
    for family in [
        GraphFamily::Complete,
        GraphFamily::Hypercube,
        GraphFamily::Torus,
    ] {
        let t = family.instantiate_topology(1_000_000, 3);
        assert!(t.is_implicit());
        assert!(t.num_nodes() >= 1_000_000);
        let v = NodeId(123_456);
        for p in t.ports(v).take(8) {
            let (u, pin) = t.traverse(v, p);
            assert_eq!(t.traverse(u, pin), (v, p));
        }
    }
}
