//! Differential property suite for the [`EdgeLiveness`] overlay.
//!
//! Seeded-loop property tests (the workspace's proptest substitute) over
//! 400+ fuzzed kill/revive sequences: after every single mutation, the
//! overlay's live-degree / live-port / traverse answers must be
//! byte-identical to a **naive freshly-rebuilt CSR** of the surviving
//! edges — the `Θ(m)`-per-round implementation the overlay exists to
//! replace. "Identical" is precise: the overlay keeps base port numbers,
//! the rebuild renumbers surviving ports compactly in base order, and the
//! rank map between the two must commute with `traverse` (including the
//! back-port an agent observes as `pin`), the rebuilt labeling must stay a
//! port involution, and half-edge liveness must stay symmetric. Covered on
//! every CSR scale family (line, ring, star, random tree) *and* every
//! implicit family (complete, hypercube, torus) through the same API.

use disp_graph::generators::GraphFamily;
use disp_graph::{EdgeLiveness, NodeId, Port, Topology};
use disp_rng::prelude::*;

/// The naive rebuild: CSR arrays of the surviving edges, surviving ports
/// renumbered `1..=live_deg` in base-port order.
struct NaiveCsr {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    back_ports: Vec<Port>,
    /// `rank[v][base_port_offset]` = compacted port at `v`, or `None` if
    /// that base port is currently dead.
    rank: Vec<Vec<Option<Port>>>,
}

impl NaiveCsr {
    fn rebuild(topo: &Topology, live: &EdgeLiveness) -> NaiveCsr {
        let n = topo.num_nodes();
        let mut rank: Vec<Vec<Option<Port>>> = Vec::with_capacity(n);
        for v in topo.nodes() {
            let mut next = 0u32;
            rank.push(
                topo.ports(v)
                    .map(|p| {
                        live.is_alive(topo, v, p).then(|| {
                            next += 1;
                            Port(next)
                        })
                    })
                    .collect(),
            );
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        let mut back_ports = Vec::new();
        offsets.push(0usize);
        for v in topo.nodes() {
            for p in topo.ports(v) {
                if rank[v.index()][p.offset()].is_none() {
                    continue;
                }
                let (u, pin) = topo.traverse(v, p);
                neighbors.push(u);
                back_ports.push(
                    rank[u.index()][pin.offset()]
                        .expect("surviving edge must survive at both endpoints"),
                );
            }
            offsets.push(neighbors.len());
        }
        NaiveCsr {
            offsets,
            neighbors,
            back_ports,
            rank,
        }
    }

    fn degree(&self, v: NodeId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    fn traverse(&self, v: NodeId, p: Port) -> (NodeId, Port) {
        let slot = self.offsets[v.index()] + p.offset();
        (self.neighbors[slot], self.back_ports[slot])
    }
}

/// The full differential check of one world state.
fn check_equivalent(topo: &Topology, live: &EdgeLiveness, ctx: &str) {
    let naive = NaiveCsr::rebuild(topo, live);
    for v in topo.nodes() {
        // 1. Live degree answers match the rebuild.
        assert_eq!(
            live.live_degree(topo, v),
            naive.degree(v),
            "{ctx}: deg({v})"
        );
        // 2. The i-th live base port maps to compacted port i+1, and
        //    traversal commutes with the rank map — same neighbor, and the
        //    observed pin is exactly the compacted rank of the base pin.
        let live_ports: Vec<Port> = live.live_ports(topo, v).collect();
        assert_eq!(live_ports.len(), naive.degree(v), "{ctx}: ports({v})");
        for (i, &p) in live_ports.iter().enumerate() {
            assert_eq!(
                naive.rank[v.index()][p.offset()],
                Some(Port(i as u32 + 1)),
                "{ctx}: rank({v},{p})"
            );
            let (u, pin) = topo.traverse(v, p);
            let (nu, npin) = naive.traverse(v, Port(i as u32 + 1));
            assert_eq!(nu, u, "{ctx}: neighbor({v},{p})");
            assert_eq!(
                Some(npin),
                naive.rank[u.index()][pin.offset()],
                "{ctx}: pin({v},{p})"
            );
            // 3. Half-edge liveness is symmetric.
            assert!(live.is_alive(topo, u, pin), "{ctx}: asymmetric ({v},{p})");
        }
        // 4. The rebuilt labeling is still a port involution.
        for i in 1..=naive.degree(v) as u32 {
            let (u, pin) = naive.traverse(v, Port(i));
            assert_ne!(u, v, "{ctx}: self loop at {v}");
            assert_eq!(
                naive.traverse(u, pin),
                (v, Port(i)),
                "{ctx}: rebuilt not involutive at ({v},{i})"
            );
        }
    }
}

fn families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::Line,
        GraphFamily::Ring,
        GraphFamily::Star,
        GraphFamily::RandomTree,
        GraphFamily::Complete,
        GraphFamily::Hypercube,
        GraphFamily::Torus,
    ]
}

#[test]
fn overlay_matches_naive_rebuild_over_400_fuzzed_sequences() {
    let mut sequences = 0usize;
    let mut mutations = 0usize;
    for (fi, family) in families().iter().enumerate() {
        for (ni, &n) in [6usize, 9, 16, 27].iter().enumerate() {
            for rep in 0..4u64 {
                let seed = mix(&[0x11FE_0001, fi as u64, ni as u64, rep]);
                let mut rng = StdRng::seed_from_u64(seed);
                let topo = family.instantiate_topology(n, seed);
                let mut live = EdgeLiveness::new(&topo);
                let ctx = format!("{family} n={n} rep={rep}");
                check_equivalent(&topo, &live, &ctx);
                // A killed-edge ledger so revive draws target real dead
                // edges (pure random (v,p) draws would rarely revive).
                let mut dead: Vec<(NodeId, Port)> = Vec::new();
                for op in 0..24 {
                    let revive = !dead.is_empty() && rng.random_bool(0.4);
                    if revive {
                        let i = rng.random_range(0..dead.len() as u64) as usize;
                        let (v, p) = dead.swap_remove(i);
                        assert!(live.revive(&topo, v, p), "{ctx}: ledger out of sync");
                    } else {
                        let v = NodeId(rng.random_range(0..topo.num_nodes() as u64) as u32);
                        let deg = topo.degree(v) as u64;
                        if deg == 0 {
                            continue;
                        }
                        let p = Port(rng.random_range(0..deg) as u32 + 1);
                        if live.kill(&topo, v, p) {
                            dead.push((v, p));
                        }
                    }
                    mutations += 1;
                    check_equivalent(&topo, &live, &format!("{ctx} op={op}"));
                }
                // Restore everything: the overlay must return to the base.
                for (v, p) in dead.drain(..) {
                    assert!(live.revive(&topo, v, p), "{ctx}: final revive");
                }
                assert!(live.all_alive(), "{ctx}: not fully restored");
                for v in topo.nodes() {
                    assert_eq!(live.live_degree(&topo, v), topo.degree(v), "{ctx}: {v}");
                }
                check_equivalent(&topo, &live, &format!("{ctx} restored"));
                sequences += 1;
            }
        }
    }
    assert!(sequences >= 100, "only {sequences} sequences");
    assert!(
        mutations >= 400,
        "only {mutations} fuzzed mutations checked"
    );
}

#[test]
fn dynamic_ring_round_pattern_is_cheap_and_exact() {
    // The exact pattern the DynamicAdversary drives: one edge dies per
    // round, the previous one comes back — on a large ring, each round is
    // O(1) and the overlay never drifts from the two-ports-down state.
    let topo = GraphFamily::Ring.instantiate_topology(100_000, 1);
    let mut live = EdgeLiveness::new(&topo);
    let mut prev: Option<(NodeId, Port)> = None;
    for round in 0..1_000u64 {
        if let Some((v, p)) = prev.take() {
            assert!(live.revive(&topo, v, p));
        }
        let v = NodeId((mix(&[0xD11A, round]) % 100_000) as u32);
        let p = Port((mix(&[0xD11B, round]) % 2) as u32 + 1);
        assert!(live.kill(&topo, v, p));
        assert_eq!(live.dead_edges(), 1);
        assert_eq!(live.live_degree(&topo, v), 1);
        prev = Some((v, p));
    }
    let (v, p) = prev.unwrap();
    live.revive(&topo, v, p);
    assert!(live.all_alive());
}
