//! Log–log least-squares fits for scaling-shape checks.

/// Result of fitting `y ≈ c · x^exponent` by least squares in log–log space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLogFit {
    /// Estimated exponent (slope in log–log space).
    pub exponent: f64,
    /// Estimated multiplicative constant.
    pub constant: f64,
    /// Coefficient of determination of the log–log regression.
    pub r_squared: f64,
}

/// Fit `y ≈ c·x^e` from `(x, y)` samples with positive coordinates.
///
/// Returns `None` for fewer than two distinct x values or non-positive data.
pub fn loglog_fit(points: &[(f64, f64)]) -> Option<LogLogFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LogLogFit {
        exponent: slope,
        constant: intercept.exp(),
        r_squared,
    })
}

/// Average of `y / (x·log₂(x+2))` over the samples — a flatness indicator for
/// `O(k log k)` behaviour (roughly constant across `x` when the bound is
/// tight).
pub fn klogk_ratio(points: &[(f64, f64)]) -> f64 {
    if points.is_empty() {
        return f64::NAN;
    }
    points
        .iter()
        .map(|(x, y)| y / (x * (x + 2.0).log2()))
        .sum::<f64>()
        / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_scaling() {
        let pts: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 3.0 * i as f64)).collect();
        let fit = loglog_fit(&pts).unwrap();
        assert!((fit.exponent - 1.0).abs() < 1e-9);
        assert!((fit.constant - 3.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn recovers_quadratic_scaling() {
        let pts: Vec<(f64, f64)> = (1..=20).map(|i| (i as f64, 0.5 * (i * i) as f64)).collect();
        let fit = loglog_fit(&pts).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
    }

    #[test]
    fn klogk_is_flat_for_klogk_data() {
        let pts: Vec<(f64, f64)> = (4..=64)
            .step_by(4)
            .map(|i| (i as f64, 2.0 * i as f64 * (i as f64 + 2.0).log2()))
            .collect();
        let r = klogk_ratio(&pts);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(loglog_fit(&[]).is_none());
        assert!(loglog_fit(&[(1.0, 2.0)]).is_none());
        assert!(loglog_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        assert!(loglog_fit(&[(0.0, 2.0), (-1.0, 3.0)]).is_none());
    }
}
