//! Summary statistics over repeated measurements.

/// Mean / min / max / standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Number of samples.
    pub count: usize,
}

impl Summary {
    /// Summarize a sample (empty samples produce NaN statistics).
    pub fn of(values: &[f64]) -> Summary {
        let count = values.len();
        if count == 0 {
            return Summary {
                mean: f64::NAN,
                min: f64::NAN,
                max: f64::NAN,
                stddev: f64::NAN,
                count: 0,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Summary {
            mean,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            stddev: var.sqrt(),
            count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.count, 4);
        assert!((s.stddev - 1.118).abs() < 1e-3);
    }

    #[test]
    fn empty_summary_is_nan() {
        let s = Summary::of(&[]);
        assert!(s.mean.is_nan());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
    }
}
