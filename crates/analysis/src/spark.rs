//! ASCII sparklines: render a numeric series as one fixed-width text row,
//! for watching a protocol settle in a terminal (`disp-campaign report
//! --timeline`, `disp-load watch`).
//!
//! Pure-ASCII glyphs — a ten-step density ramp — so the output survives
//! logs, CI transcripts and dumb terminals. Rendering is deterministic:
//! the same series and width always produce the same string.

/// The density ramp, lowest to highest. Ten ASCII glyphs ordered by ink.
pub const SPARK_RAMP: &[u8; 10] = b" .:-=+*#%@";

/// Render `values` as a sparkline of at most `width` characters.
///
/// The series is resampled to `width` columns (each column averages its
/// share of the series), then each column maps to a ramp glyph by linear
/// scaling between the series minimum and maximum. A constant series
/// renders at the bottom of the ramp unless it is positive, in which case
/// it renders at the top — so "all settled" reads full, not empty. An
/// empty series renders as an empty string.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let columns = resample(values, width);
    let (min, max) = columns
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let top = (SPARK_RAMP.len() - 1) as f64;
    columns
        .iter()
        .map(|&v| {
            let level = if max > min {
                ((v - min) / (max - min) * top).round() as usize
            } else if max > 0.0 {
                SPARK_RAMP.len() - 1
            } else {
                0
            };
            SPARK_RAMP[level.min(SPARK_RAMP.len() - 1)] as char
        })
        .collect()
}

/// Render `values` scaled against a fixed `[0, max]` range instead of the
/// series' own extrema — the right choice for fractions with a known
/// ceiling (settled / k), where two sparklines must be comparable and a
/// full row must mean "done". `max ≤ 0` falls back to the bottom glyph.
pub fn sparkline_scaled(values: &[f64], max: f64, width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let columns = resample(values, width);
    let top = (SPARK_RAMP.len() - 1) as f64;
    columns
        .iter()
        .map(|&v| {
            let level = if max > 0.0 {
                ((v.clamp(0.0, max) / max) * top).round() as usize
            } else {
                0
            };
            SPARK_RAMP[level.min(SPARK_RAMP.len() - 1)] as char
        })
        .collect()
}

/// Average `values` into exactly `min(width, len)` columns, each covering
/// an equal contiguous share of the series.
fn resample(values: &[f64], width: usize) -> Vec<f64> {
    let width = width.min(values.len());
    (0..width)
        .map(|col| {
            let lo = col * values.len() / width;
            let hi = ((col + 1) * values.len() / width).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramps_from_bottom_to_top() {
        let values: Vec<f64> = (0..10).map(|v| v as f64).collect();
        let line = sparkline(&values, 10);
        assert_eq!(line, " .:-=+*#%@");
    }

    #[test]
    fn resamples_long_series_to_width() {
        let values: Vec<f64> = (0..1000).map(|v| v as f64).collect();
        let line = sparkline(&values, 20);
        assert_eq!(line.len(), 20);
        assert!(line.starts_with(' '));
        assert!(line.ends_with('@'));
    }

    #[test]
    fn short_series_render_one_glyph_per_value() {
        assert_eq!(sparkline(&[1.0, 2.0], 80).len(), 2);
    }

    #[test]
    fn constant_series_reads_full_when_positive_empty_when_zero() {
        assert_eq!(sparkline(&[5.0; 4], 4), "@@@@");
        assert_eq!(sparkline(&[0.0; 4], 4), "    ");
    }

    #[test]
    fn empty_inputs_render_empty() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[1.0], 0), "");
        assert_eq!(sparkline_scaled(&[], 1.0, 10), "");
    }

    #[test]
    fn scaled_sparkline_uses_the_fixed_ceiling() {
        // Half of max renders mid-ramp even though it is the series max.
        let line = sparkline_scaled(&[8.0, 8.0], 16.0, 2);
        assert_eq!(line, "++");
        // Full max renders at the top; zero at the bottom.
        assert_eq!(sparkline_scaled(&[16.0], 16.0, 1), "@");
        assert_eq!(sparkline_scaled(&[0.0], 16.0, 1), " ");
        // A non-positive ceiling degrades to the bottom glyph.
        assert_eq!(sparkline_scaled(&[3.0], 0.0, 1), " ");
    }

    #[test]
    fn rendering_is_deterministic() {
        let values: Vec<f64> = (0..137).map(|v| ((v * 7) % 31) as f64).collect();
        assert_eq!(sparkline(&values, 40), sparkline(&values, 40));
    }
}
