//! A minimal, dependency-free JSON value, parser and writer.
//!
//! The campaign store needs exactly one wire format — flat-ish JSON objects,
//! one per line — and the container this workspace builds in has no network
//! access to the crates registry, so instead of `serde_json` we carry this
//! ~200-line subset. It supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null); object key order is
//! preserved so emitted lines are byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; the campaign's integer fields are
    /// all well below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encode a **full-range** `u64` losslessly.
    ///
    /// JSON numbers are `f64` here, which silently rounds integers ≥ 2^53 —
    /// and seeds/fingerprints are uniform 64-bit values, so almost all of
    /// them would corrupt. They are therefore stored as fixed-width hex
    /// strings. [`Json::as_u64_lossless`] is the inverse.
    pub fn from_u64_lossless(v: u64) -> Json {
        Json::Str(format!("{v:016x}"))
    }

    /// Decode a value written by [`Json::from_u64_lossless`]. Plain
    /// non-negative integer numbers are also accepted (hand-written files).
    pub fn as_u64_lossless(&self) -> Option<u64> {
        match self {
            Json::Str(s) => u64::from_str_radix(s, 16).ok(),
            _ => self.as_u64(),
        }
    }

    /// Render as compact JSON (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_number(v: f64, out: &mut String) {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive as
                // raw bytes; we re-validate through from_utf8 at the end of
                // the run of plain characters).
                let run_start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk =
                    std::str::from_utf8(&bytes[run_start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("campaign \"q\"".into())),
            ("k".into(), Json::Num(128.0)),
            ("occ".into(), Json::Num(0.5)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        assert!(text.contains("\\\"q\\\""));
    }

    #[test]
    fn integers_are_emitted_without_decimal_point() {
        assert_eq!(Json::Num(128.0).to_string_compact(), "128");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , \"x\\ny\" , null ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Str("x\ny".into()), Json::Null,])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("123 tail").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("truex").is_err());
    }

    #[test]
    fn u64_round_trips_losslessly_above_2_pow_53() {
        for v in [0u64, 42, (1 << 53) + 1, u64::MAX, 0xEA02_16B0_5417_B092] {
            let j = Json::from_u64_lossless(v);
            assert_eq!(j.as_u64_lossless(), Some(v), "{v}");
            let reparsed = Json::parse(&j.to_string_compact()).unwrap();
            assert_eq!(reparsed.as_u64_lossless(), Some(v), "{v}");
        }
        // Plain small numbers are accepted too.
        assert_eq!(Json::Num(7.0).as_u64_lossless(), Some(7));
        assert_eq!(Json::Str("xyz".into()).as_u64_lossless(), None);
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse("{\"n\":3,\"f\":1.5,\"s\":\"x\",\"b\":false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }
}
