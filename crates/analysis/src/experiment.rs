//! Experiment specification and (parallel) sweep execution.

use crate::stats::Summary;
use disp_core::runner::{run_rooted, Algorithm, RunSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use serde::{Deserialize, Serialize};
use std::thread;

/// One point of a sweep: an algorithm/schedule pair on a graph family at a
/// given number of agents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Graph family to instantiate.
    pub family: GraphFamily,
    /// Number of agents (the graph is instantiated with ≈ `k / occupancy`
    /// nodes).
    pub k: usize,
    /// Fraction of nodes carrying agents (1.0 = `k = n`).
    pub occupancy: f64,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Scheduler to run under.
    pub schedule: Schedule,
    /// Number of repetitions (different seeds).
    pub repetitions: usize,
}

/// Aggregated result of one experiment point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurement {
    /// The point this measurement belongs to.
    pub point: ExperimentPoint,
    /// Realized number of agents.
    pub k: usize,
    /// Realized number of nodes.
    pub n: usize,
    /// Realized number of edges.
    pub m: usize,
    /// Realized maximum degree.
    pub max_degree: usize,
    /// Mean time (rounds for SYNC, epochs for ASYNC) over the repetitions.
    pub time_mean: f64,
    /// Minimum observed time.
    pub time_min: f64,
    /// Maximum observed time.
    pub time_max: f64,
    /// Mean total number of agent moves.
    pub moves_mean: f64,
    /// Largest peak per-agent memory (bits) observed.
    pub peak_memory_bits: usize,
    /// Whether every repetition ended in a valid dispersion.
    pub all_dispersed: bool,
}

/// A sweep over several points.
#[derive(Debug, Clone, Default)]
pub struct ExperimentSpec {
    /// The points to measure.
    pub points: Vec<ExperimentPoint>,
}

impl ExperimentPoint {
    /// Run this point's repetitions and aggregate them.
    pub fn measure(&self) -> Measurement {
        let n_target = ((self.k as f64 / self.occupancy).ceil() as usize).max(self.k);
        let mut times = Vec::new();
        let mut moves = Vec::new();
        let mut peak_mem = 0usize;
        let mut all_dispersed = true;
        let mut realized = (self.k, 0usize, 0usize, 0usize);
        for rep in 0..self.repetitions.max(1) {
            let seed = 1000 * rep as u64 + 17;
            let graph = self.family.instantiate(n_target, seed);
            let k = self.k.min(graph.num_nodes());
            let spec = RunSpec {
                algorithm: self.algorithm,
                schedule: self.schedule,
                seed,
                ..RunSpec::default()
            };
            let report = run_rooted(&graph, k, NodeId(0), &spec)
                .expect("experiment run exceeded the step limit");
            realized = (
                report.outcome.k,
                report.outcome.n,
                report.outcome.m,
                report.outcome.max_degree,
            );
            times.push(report.outcome.time() as f64);
            moves.push(report.outcome.total_moves as f64);
            peak_mem = peak_mem.max(report.outcome.peak_memory_bits);
            all_dispersed &= report.dispersed;
        }
        let t = Summary::of(&times);
        let mv = Summary::of(&moves);
        Measurement {
            point: self.clone(),
            k: realized.0,
            n: realized.1,
            m: realized.2,
            max_degree: realized.3,
            time_mean: t.mean,
            time_min: t.min,
            time_max: t.max,
            moves_mean: mv.mean,
            peak_memory_bits: peak_mem,
            all_dispersed,
        }
    }
}

impl ExperimentSpec {
    /// Run every point sequentially.
    pub fn run(&self) -> Vec<Measurement> {
        self.points.iter().map(ExperimentPoint::measure).collect()
    }

    /// Run the points across `threads` OS threads (order of results matches
    /// the order of points).
    pub fn run_parallel(&self, threads: usize) -> Vec<Measurement> {
        let threads = threads.max(1);
        if threads == 1 || self.points.len() <= 1 {
            return self.run();
        }
        let chunks: Vec<Vec<(usize, ExperimentPoint)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, p) in self.points.iter().enumerate() {
                chunks[i % threads].push((i, p.clone()));
            }
            chunks
        };
        let mut indexed: Vec<(usize, Measurement)> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, p)| (i, p.measure()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("experiment worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, m)| m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_point(algorithm: Algorithm, schedule: Schedule) -> ExperimentPoint {
        ExperimentPoint {
            family: GraphFamily::RandomTree,
            k: 16,
            occupancy: 1.0,
            algorithm,
            schedule,
            repetitions: 2,
        }
    }

    #[test]
    fn measure_produces_dispersed_results() {
        let m = small_point(Algorithm::ProbeDfs, Schedule::Sync).measure();
        assert!(m.all_dispersed);
        assert!(m.time_mean > 0.0);
        assert!(m.peak_memory_bits > 0);
        assert_eq!(m.k, 16);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let spec = ExperimentSpec {
            points: vec![
                small_point(Algorithm::KsDfs, Schedule::Sync),
                small_point(Algorithm::ProbeDfs, Schedule::Sync),
                small_point(Algorithm::SyncSeeker, Schedule::Sync),
            ],
        };
        let seq = spec.run();
        let par = spec.run_parallel(3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.time_mean, b.time_mean);
            assert_eq!(a.point.algorithm.label(), b.point.algorithm.label());
        }
    }

    #[test]
    fn async_measurement_reports_epochs() {
        let m = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.6, seed: 5 },
        )
        .measure();
        assert!(m.all_dispersed);
        assert!(m.time_mean >= 1.0);
    }
}
