//! Experiment specification, per-trial execution and (parallel) sweeps.
//!
//! The unit of work is a **trial**: one `(ExperimentPoint, repetition, seed)`
//! execution producing a [`TrialRecord`]. Sweep aggregation
//! ([`Measurement::from_trials`]) is a pure function of trial records, so the
//! same types serve the in-process sweeps here and the streamed JSONL
//! checkpoints of the `disp-campaign` engine (see [`crate::jsonl`]).

use crate::json::Json;
use crate::stats::Summary;
use disp_core::runner::{run_rooted, Algorithm, RunSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_graph::NodeId;
use disp_sim::Outcome;
use std::thread;

/// One point of a sweep: an algorithm/schedule pair on a graph family at a
/// given number of agents.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Graph family to instantiate.
    pub family: GraphFamily,
    /// Number of agents (the graph is instantiated with ≈ `k / occupancy`
    /// nodes).
    pub k: usize,
    /// Fraction of nodes carrying agents (1.0 = `k = n`).
    pub occupancy: f64,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Scheduler to run under.
    pub schedule: Schedule,
    /// Number of repetitions (different seeds).
    pub repetitions: usize,
}

/// The result of one trial — the atomic record the campaign engine streams
/// to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The point this trial belongs to.
    pub point: ExperimentPoint,
    /// Repetition index within the point (`0..point.repetitions`).
    pub rep: usize,
    /// The seed that fully determines this trial (graph instance, adversary
    /// and algorithm-internal randomness).
    pub seed: u64,
    /// Raw measurements.
    pub outcome: Outcome,
    /// Whether the final configuration is a valid dispersion.
    pub dispersed: bool,
}

/// Aggregated result of one experiment point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The point this measurement belongs to.
    pub point: ExperimentPoint,
    /// Realized number of agents.
    pub k: usize,
    /// Realized number of nodes.
    pub n: usize,
    /// Realized number of edges.
    pub m: usize,
    /// Realized maximum degree.
    pub max_degree: usize,
    /// Mean time (rounds for SYNC, epochs for ASYNC) over the repetitions.
    pub time_mean: f64,
    /// Minimum observed time.
    pub time_min: f64,
    /// Maximum observed time.
    pub time_max: f64,
    /// Mean total number of agent moves.
    pub moves_mean: f64,
    /// Largest peak per-agent memory (bits) observed.
    pub peak_memory_bits: usize,
    /// Whether every repetition ended in a valid dispersion.
    pub all_dispersed: bool,
}

/// A sweep over several points.
#[derive(Debug, Clone, Default)]
pub struct ExperimentSpec {
    /// The points to measure.
    pub points: Vec<ExperimentPoint>,
}

impl PartialEq for ExperimentPoint {
    fn eq(&self, other: &Self) -> bool {
        self.point_id() == other.point_id() && self.repetitions == other.repetitions
    }
}

impl ExperimentPoint {
    /// A canonical identity string for this point, stable across runs and
    /// releases — the checkpoint key of the campaign store.
    ///
    /// Adversary seeds stored inside `schedule` are deliberately *excluded*:
    /// the campaign engine reseeds every trial from its own derivation, so
    /// two grids differing only in embedded schedule seeds describe the same
    /// experiments.
    pub fn point_id(&self) -> String {
        format!(
            "{}|{}|{}|k{}|occ{}",
            self.family.label(),
            self.algorithm.label(),
            self.schedule.label(),
            self.k,
            self.occupancy
        )
    }

    /// Run one repetition under `seed` and record the result.
    ///
    /// The seed determines everything random about the trial: the graph
    /// instance, the (reseeded) adversary, and algorithm-internal
    /// randomness. Two calls with the same point and seed produce identical
    /// records regardless of threads, process or execution order.
    pub fn run_trial(&self, rep: usize, seed: u64) -> TrialRecord {
        let n_target = ((self.k as f64 / self.occupancy).ceil() as usize).max(self.k);
        let graph = self.family.instantiate(n_target, seed);
        let k = self.k.min(graph.num_nodes());
        let spec = RunSpec {
            algorithm: self.algorithm,
            schedule: self.schedule.reseeded(seed),
            seed,
            ..RunSpec::default()
        };
        let report = run_rooted(&graph, k, NodeId(0), &spec)
            .expect("experiment run exceeded the step limit");
        TrialRecord {
            point: self.clone(),
            rep,
            seed,
            outcome: report.outcome,
            dispersed: report.dispersed,
        }
    }

    /// Run this point's repetitions (with the legacy fixed seed schedule)
    /// and aggregate them.
    pub fn measure(&self) -> Measurement {
        let trials: Vec<TrialRecord> = (0..self.repetitions.max(1))
            .map(|rep| self.run_trial(rep, 1000 * rep as u64 + 17))
            .collect();
        Measurement::from_trials(self, &trials)
    }

    /// Serialize to a JSON object (schedule seeds included, so a parsed
    /// point reproduces the original exactly).
    pub fn to_json(&self) -> Json {
        let schedule = match self.schedule {
            Schedule::Sync => Json::Obj(vec![("kind".into(), Json::Str("sync".into()))]),
            Schedule::AsyncRoundRobin => {
                Json::Obj(vec![("kind".into(), Json::Str("async-rr".into()))])
            }
            Schedule::AsyncRandom { prob, seed } => Json::Obj(vec![
                ("kind".into(), Json::Str("async-rand".into())),
                ("prob".into(), Json::Num(prob)),
                ("seed".into(), Json::from_u64_lossless(seed)),
            ]),
            Schedule::AsyncLagging { max_lag, seed } => Json::Obj(vec![
                ("kind".into(), Json::Str("async-lag".into())),
                ("max_lag".into(), Json::Num(max_lag as f64)),
                ("seed".into(), Json::from_u64_lossless(seed)),
            ]),
        };
        Json::Obj(vec![
            ("family".into(), Json::Str(self.family.label())),
            ("k".into(), Json::Num(self.k as f64)),
            ("occupancy".into(), Json::Num(self.occupancy)),
            (
                "algorithm".into(),
                Json::Str(self.algorithm.label().to_string()),
            ),
            ("schedule".into(), schedule),
            ("repetitions".into(), Json::Num(self.repetitions as f64)),
        ])
    }

    /// Inverse of [`ExperimentPoint::to_json`].
    pub fn from_json(v: &Json) -> Result<ExperimentPoint, String> {
        let family_label = v
            .get("family")
            .and_then(Json::as_str)
            .ok_or("point: missing family")?;
        let family = GraphFamily::from_label(family_label)
            .ok_or_else(|| format!("point: unknown family '{family_label}'"))?;
        let algorithm_label = v
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("point: missing algorithm")?;
        let algorithm = Algorithm::from_label(algorithm_label)
            .ok_or_else(|| format!("point: unknown algorithm '{algorithm_label}'"))?;
        let sched = v.get("schedule").ok_or("point: missing schedule")?;
        let kind = sched
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("point: missing schedule kind")?;
        let schedule = match kind {
            "sync" => Schedule::Sync,
            "async-rr" => Schedule::AsyncRoundRobin,
            "async-rand" => Schedule::AsyncRandom {
                prob: sched
                    .get("prob")
                    .and_then(Json::as_f64)
                    .ok_or("point: missing prob")?,
                seed: sched
                    .get("seed")
                    .and_then(Json::as_u64_lossless)
                    .unwrap_or(0),
            },
            "async-lag" => Schedule::AsyncLagging {
                max_lag: sched
                    .get("max_lag")
                    .and_then(Json::as_u64)
                    .ok_or("point: missing max_lag")?,
                seed: sched
                    .get("seed")
                    .and_then(Json::as_u64_lossless)
                    .unwrap_or(0),
            },
            other => return Err(format!("point: unknown schedule kind '{other}'")),
        };
        Ok(ExperimentPoint {
            family,
            k: v.get("k")
                .and_then(Json::as_u64)
                .ok_or("point: missing k")? as usize,
            occupancy: v
                .get("occupancy")
                .and_then(Json::as_f64)
                .ok_or("point: missing occupancy")?,
            algorithm,
            schedule,
            repetitions: v
                .get("repetitions")
                .and_then(Json::as_u64)
                .ok_or("point: missing repetitions")? as usize,
        })
    }
}

impl TrialRecord {
    /// The checkpoint identity of this trial within its campaign.
    pub fn trial_id(&self) -> String {
        format!("{}#r{}", self.point.point_id(), self.rep)
    }

    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        Json::Obj(vec![
            ("point".into(), self.point.to_json()),
            ("rep".into(), Json::Num(self.rep as f64)),
            ("seed".into(), Json::from_u64_lossless(self.seed)),
            (
                "outcome".into(),
                Json::Obj(
                    self.outcome
                        .flat_fields()
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("dispersed".into(), Json::Bool(self.dispersed)),
        ])
        .to_string_compact()
    }

    /// Parse a line produced by [`TrialRecord::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<TrialRecord, String> {
        let v = Json::parse(line)?;
        let point = ExperimentPoint::from_json(v.get("point").ok_or("trial: missing point")?)?;
        let outcome_obj = v.get("outcome").ok_or("trial: missing outcome")?;
        let outcome = Outcome::from_named(|name| outcome_obj.get(name).and_then(Json::as_u64))
            .ok_or("trial: incomplete outcome")?;
        Ok(TrialRecord {
            point,
            rep: v
                .get("rep")
                .and_then(Json::as_u64)
                .ok_or("trial: missing rep")? as usize,
            seed: v
                .get("seed")
                .and_then(Json::as_u64_lossless)
                .ok_or("trial: missing seed")?,
            outcome,
            dispersed: v
                .get("dispersed")
                .and_then(Json::as_bool)
                .ok_or("trial: missing dispersed")?,
        })
    }
}

impl Measurement {
    /// Aggregate trial records of one point. The realized graph shape is
    /// taken from the last record (matching the legacy in-process sweep);
    /// panics if `trials` is empty.
    pub fn from_trials(point: &ExperimentPoint, trials: &[TrialRecord]) -> Measurement {
        assert!(!trials.is_empty(), "cannot aggregate zero trials");
        let times: Vec<f64> = trials.iter().map(|t| t.outcome.time() as f64).collect();
        let moves: Vec<f64> = trials
            .iter()
            .map(|t| t.outcome.total_moves as f64)
            .collect();
        let last = &trials[trials.len() - 1].outcome;
        let t = Summary::of(&times);
        let mv = Summary::of(&moves);
        Measurement {
            point: point.clone(),
            k: last.k,
            n: last.n,
            m: last.m,
            max_degree: last.max_degree,
            time_mean: t.mean,
            time_min: t.min,
            time_max: t.max,
            moves_mean: mv.mean,
            peak_memory_bits: trials
                .iter()
                .map(|t| t.outcome.peak_memory_bits)
                .max()
                .unwrap_or(0),
            all_dispersed: trials.iter().all(|t| t.dispersed),
        }
    }
}

impl ExperimentSpec {
    /// Run every point sequentially.
    pub fn run(&self) -> Vec<Measurement> {
        self.points.iter().map(ExperimentPoint::measure).collect()
    }

    /// Run the points across `threads` OS threads (order of results matches
    /// the order of points).
    pub fn run_parallel(&self, threads: usize) -> Vec<Measurement> {
        let threads = threads.max(1);
        if threads == 1 || self.points.len() <= 1 {
            return self.run();
        }
        let chunks: Vec<Vec<(usize, ExperimentPoint)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, p) in self.points.iter().enumerate() {
                chunks[i % threads].push((i, p.clone()));
            }
            chunks
        };
        let mut indexed: Vec<(usize, Measurement)> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, p)| (i, p.measure()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("experiment worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, m)| m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_point(algorithm: Algorithm, schedule: Schedule) -> ExperimentPoint {
        ExperimentPoint {
            family: GraphFamily::RandomTree,
            k: 16,
            occupancy: 1.0,
            algorithm,
            schedule,
            repetitions: 2,
        }
    }

    #[test]
    fn measure_produces_dispersed_results() {
        let m = small_point(Algorithm::ProbeDfs, Schedule::Sync).measure();
        assert!(m.all_dispersed);
        assert!(m.time_mean > 0.0);
        assert!(m.peak_memory_bits > 0);
        assert_eq!(m.k, 16);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let spec = ExperimentSpec {
            points: vec![
                small_point(Algorithm::KsDfs, Schedule::Sync),
                small_point(Algorithm::ProbeDfs, Schedule::Sync),
                small_point(Algorithm::SyncSeeker, Schedule::Sync),
            ],
        };
        let seq = spec.run();
        let par = spec.run_parallel(3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.time_mean, b.time_mean);
            assert_eq!(a.point.algorithm.label(), b.point.algorithm.label());
        }
    }

    #[test]
    fn async_measurement_reports_epochs() {
        let m = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.6, seed: 5 },
        )
        .measure();
        assert!(m.all_dispersed);
        assert!(m.time_mean >= 1.0);
    }

    #[test]
    fn run_trial_is_deterministic_in_the_seed() {
        let p = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.7, seed: 0 },
        );
        let a = p.run_trial(0, 999);
        let b = p.run_trial(0, 999);
        let c = p.run_trial(0, 1000);
        assert_eq!(a, b);
        assert_eq!(a.outcome, b.outcome);
        assert!(a.seed != c.seed);
    }

    #[test]
    fn trial_records_round_trip_through_jsonl() {
        for schedule in [
            Schedule::Sync,
            Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob: 0.7, seed: 4 },
            Schedule::AsyncLagging {
                max_lag: 3,
                seed: 9,
            },
        ] {
            let rec = small_point(Algorithm::KsDfs, schedule).run_trial(1, 42);
            let line = rec.to_json_line();
            assert!(!line.contains('\n'));
            let back = TrialRecord::from_json_line(&line).unwrap();
            assert_eq!(back, rec);
            assert_eq!(back.outcome, rec.outcome);
            assert_eq!(back.point.schedule, rec.point.schedule);
        }
    }

    #[test]
    fn seeds_above_2_pow_53_survive_the_jsonl_round_trip() {
        // Derived trial seeds are uniform 64-bit mix() outputs, so almost
        // all of them exceed f64's exact-integer range; the wire format
        // must not round them (regression test for the lossless encoding).
        let big = u64::MAX - 12345;
        let rec = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom {
                prob: 0.7,
                seed: big,
            },
        )
        .run_trial(0, big);
        assert_eq!(rec.seed, big);
        let back = TrialRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back.seed, big);
        assert_eq!(
            back.point.schedule,
            Schedule::AsyncRandom {
                prob: 0.7,
                seed: big
            }
            .reseeded(big)
        );
        // The recorded seed must reproduce the recorded outcome exactly.
        let replay = back.point.run_trial(back.rep, back.seed);
        assert_eq!(replay.outcome, rec.outcome);
    }

    #[test]
    fn point_id_ignores_schedule_seeds_only() {
        let a = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.7, seed: 1 },
        );
        let b = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.7, seed: 2 },
        );
        let c = small_point(
            Algorithm::ProbeDfs,
            Schedule::AsyncRandom { prob: 0.8, seed: 1 },
        );
        assert_eq!(a.point_id(), b.point_id());
        assert_ne!(a.point_id(), c.point_id());
    }

    #[test]
    fn from_trials_aggregates_like_measure() {
        let p = small_point(Algorithm::ProbeDfs, Schedule::Sync);
        let direct = p.measure();
        let trials: Vec<TrialRecord> = (0..2)
            .map(|r| p.run_trial(r, 1000 * r as u64 + 17))
            .collect();
        let merged = Measurement::from_trials(&p, &trials);
        assert_eq!(direct.time_mean, merged.time_mean);
        assert_eq!(direct.peak_memory_bits, merged.peak_memory_bits);
        assert_eq!(direct.n, merged.n);
    }
}
