//! Experiment specification, per-trial execution and (parallel) sweeps.
//!
//! The unit of work is a **trial**: one `(ExperimentPoint, repetition, seed)`
//! execution producing a [`TrialRecord`]. An [`ExperimentPoint`] is a
//! canonical [`ScenarioSpec`] plus a repetition count — the spec (not a
//! re-encoding of its fragments) is what records carry, what the campaign
//! store checkpoints, and what reports group by. Sweep aggregation
//! ([`Measurement::from_trials`]) is a pure function of trial records, so the
//! same types serve the in-process sweeps here and the streamed JSONL
//! checkpoints of the `disp-campaign` engine (see [`crate::jsonl`]).

use crate::json::Json;
use crate::scenario_json::{legacy_point_to_scenario, scenario_from_json, scenario_to_json};
use crate::stats::Summary;
use disp_core::scenario::{Registry, ScenarioSpec};
use disp_sim::Outcome;
use std::thread;

/// One point of a sweep: a scenario measured over several repetitions.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// The canonical run description.
    pub scenario: ScenarioSpec,
    /// Number of repetitions (different seeds).
    pub repetitions: usize,
}

/// The result of one trial — the atomic record the campaign engine streams
/// to disk.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// The point this trial belongs to.
    pub point: ExperimentPoint,
    /// Repetition index within the point (`0..point.repetitions`).
    pub rep: usize,
    /// The seed that fully determines this trial (graph instance, placement,
    /// adversary and algorithm-internal randomness).
    pub seed: u64,
    /// Raw measurements.
    pub outcome: Outcome,
    /// Whether the final configuration is a valid dispersion.
    pub dispersed: bool,
}

/// Aggregated result of one experiment point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// The point this measurement belongs to.
    pub point: ExperimentPoint,
    /// Realized number of agents.
    pub k: usize,
    /// Realized number of nodes.
    pub n: usize,
    /// Realized number of edges.
    pub m: usize,
    /// Realized maximum degree.
    pub max_degree: usize,
    /// Mean time (rounds for SYNC, epochs for ASYNC) over the repetitions.
    pub time_mean: f64,
    /// Minimum observed time.
    pub time_min: f64,
    /// Maximum observed time.
    pub time_max: f64,
    /// Mean total number of agent moves.
    pub moves_mean: f64,
    /// Largest peak per-agent memory (bits) observed.
    pub peak_memory_bits: usize,
    /// Whether every repetition ended in a valid dispersion.
    pub all_dispersed: bool,
}

/// A sweep over several points.
#[derive(Debug, Clone, Default)]
pub struct ExperimentSpec {
    /// The points to measure.
    pub points: Vec<ExperimentPoint>,
}

impl PartialEq for ExperimentPoint {
    fn eq(&self, other: &Self) -> bool {
        self.scenario == other.scenario && self.repetitions == other.repetitions
    }
}

impl ExperimentPoint {
    /// A point at the given scenario and repetition count.
    pub fn new(scenario: ScenarioSpec, repetitions: usize) -> ExperimentPoint {
        ExperimentPoint {
            scenario,
            repetitions,
        }
    }

    /// The canonical identity string of this point — the scenario's
    /// canonical label, which is stable across runs and releases and is the
    /// checkpoint key of the campaign store.
    pub fn point_id(&self) -> String {
        self.scenario.label()
    }

    /// Run one repetition under `seed` and record the result.
    ///
    /// The seed determines everything random about the trial: the graph
    /// instance, the placement, the adversary, and algorithm-internal
    /// randomness. Two calls with the same point and seed produce identical
    /// records regardless of threads, process or execution order.
    ///
    /// A run that exceeds its limits (reachable from user input via the
    /// `/roundsN` / `/stepsN` label segments) is recorded faithfully as a
    /// non-terminated, non-dispersed trial with the partial outcome — one
    /// pathological scenario must not abort a whole campaign.
    ///
    /// # Panics
    /// Panics only if the scenario is invalid for `registry` — campaign
    /// grids are validated up front, so hitting this means the grid
    /// construction is buggy, not the input.
    pub fn run_trial(&self, registry: &Registry, rep: usize, seed: u64) -> TrialRecord {
        self.run_trial_pooled(registry, rep, seed, &mut disp_sim::WorldPool::new())
    }

    /// [`ExperimentPoint::run_trial`] with a [`disp_sim::WorldPool`]: the
    /// trial's world is built from (and returned to) the pool, so a batch
    /// of small trials sharing one pool allocates world buffers only once.
    /// Records are byte-identical to [`ExperimentPoint::run_trial`] of the
    /// same seed — the pool contract is state identity.
    pub fn run_trial_pooled(
        &self,
        registry: &Registry,
        rep: usize,
        seed: u64,
        pool: &mut disp_sim::WorldPool,
    ) -> TrialRecord {
        use disp_core::scenario::ScenarioError;
        use disp_core::scenario::ScenarioReport;
        use disp_sim::RunError;
        let report = self
            .scenario
            .run_pooled(registry, seed, pool)
            .unwrap_or_else(|e| match e {
                ScenarioError::Run(RunError::LimitExceeded { outcome }) => ScenarioReport {
                    scenario: self.scenario.label(),
                    outcome,
                    dispersed: false,
                },
                other => panic!("scenario '{}': {other}", self.scenario.label()),
            });
        TrialRecord {
            point: self.clone(),
            rep,
            seed,
            outcome: report.outcome,
            dispersed: report.dispersed,
        }
    }

    /// [`ExperimentPoint::run_trial`] with the flight recorder attached:
    /// returns the record together with the run's
    /// [`Timeline`](disp_sim::Timeline) (settled/active/role counts at
    /// round/epoch boundaries, decimated into `budget` points). The record
    /// is byte-identical to [`ExperimentPoint::run_trial`] of the same
    /// seed — recording is observation, never content. A limit-exceeded
    /// run keeps its faithful partial record but returns no timeline.
    pub fn run_trial_with_timeline(
        &self,
        registry: &Registry,
        rep: usize,
        seed: u64,
        budget: usize,
    ) -> (TrialRecord, Option<disp_sim::Timeline>) {
        use disp_core::scenario::ScenarioError;
        use disp_sim::RunError;
        match self.scenario.run_with_timeline(registry, seed, budget) {
            Ok((report, timeline)) => (
                TrialRecord {
                    point: self.clone(),
                    rep,
                    seed,
                    outcome: report.outcome,
                    dispersed: report.dispersed,
                },
                Some(timeline),
            ),
            Err(ScenarioError::Run(RunError::LimitExceeded { outcome })) => (
                TrialRecord {
                    point: self.clone(),
                    rep,
                    seed,
                    outcome,
                    dispersed: false,
                },
                None,
            ),
            Err(other) => panic!("scenario '{}': {other}", self.scenario.label()),
        }
    }

    /// Run this point's repetitions (with the legacy fixed seed schedule)
    /// and aggregate them.
    pub fn measure(&self, registry: &Registry) -> Measurement {
        let trials: Vec<TrialRecord> = (0..self.repetitions.max(1))
            .map(|rep| self.run_trial(registry, rep, 1000 * rep as u64 + 17))
            .collect();
        Measurement::from_trials(self, &trials)
    }

    /// Serialize to a JSON object (the scenario in its structured canonical
    /// form plus the repetition count).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), scenario_to_json(&self.scenario)),
            ("repetitions".into(), Json::Num(self.repetitions as f64)),
        ])
    }

    /// Inverse of [`ExperimentPoint::to_json`].
    pub fn from_json(v: &Json) -> Result<ExperimentPoint, String> {
        let scenario = scenario_from_json(v.get("scenario").ok_or("point: missing scenario")?)?;
        Ok(ExperimentPoint {
            scenario,
            repetitions: v
                .get("repetitions")
                .and_then(Json::as_u64)
                .ok_or("point: missing repetitions")? as usize,
        })
    }
}

impl TrialRecord {
    /// The checkpoint identity of this trial within its campaign.
    pub fn trial_id(&self) -> String {
        format!("{}#r{}", self.point.point_id(), self.rep)
    }

    /// Serialize as one compact JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        Json::Obj(vec![
            ("scenario".into(), scenario_to_json(&self.point.scenario)),
            (
                "repetitions".into(),
                Json::Num(self.point.repetitions as f64),
            ),
            ("rep".into(), Json::Num(self.rep as f64)),
            ("seed".into(), Json::from_u64_lossless(self.seed)),
            (
                "outcome".into(),
                Json::Obj(
                    self.outcome
                        .flat_fields()
                        .iter()
                        .map(|&(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            ("dispersed".into(), Json::Bool(self.dispersed)),
        ])
        .to_string_compact()
    }

    /// Parse a line produced by [`TrialRecord::to_json_line`].
    ///
    /// Lines written before the scenario redesign (object key `point` with
    /// an inline `{family, algorithm, schedule, …}` encoding) are accepted
    /// and upgraded to rooted scenarios — see `DESIGN.md` §7 for the
    /// compatibility story.
    pub fn from_json_line(line: &str) -> Result<TrialRecord, String> {
        let v = Json::parse(line)?;
        let point = if let Some(scenario) = v.get("scenario") {
            ExperimentPoint {
                scenario: scenario_from_json(scenario)?,
                repetitions: v
                    .get("repetitions")
                    .and_then(Json::as_u64)
                    .ok_or("trial: missing repetitions")? as usize,
            }
        } else if let Some(legacy) = v.get("point") {
            legacy_point_to_scenario(legacy)?
        } else {
            return Err("trial: missing scenario".into());
        };
        let outcome_obj = v.get("outcome").ok_or("trial: missing outcome")?;
        let outcome = Outcome::from_named(|name| outcome_obj.get(name).and_then(Json::as_u64))
            .ok_or("trial: incomplete outcome")?;
        Ok(TrialRecord {
            point,
            rep: v
                .get("rep")
                .and_then(Json::as_u64)
                .ok_or("trial: missing rep")? as usize,
            seed: v
                .get("seed")
                .and_then(Json::as_u64_lossless)
                .ok_or("trial: missing seed")?,
            outcome,
            dispersed: v
                .get("dispersed")
                .and_then(Json::as_bool)
                .ok_or("trial: missing dispersed")?,
        })
    }
}

impl Measurement {
    /// Aggregate trial records of one point. The realized graph shape is
    /// taken from the last record (matching the legacy in-process sweep);
    /// panics if `trials` is empty.
    pub fn from_trials(point: &ExperimentPoint, trials: &[TrialRecord]) -> Measurement {
        assert!(!trials.is_empty(), "cannot aggregate zero trials");
        let times: Vec<f64> = trials.iter().map(|t| t.outcome.time() as f64).collect();
        let moves: Vec<f64> = trials
            .iter()
            .map(|t| t.outcome.total_moves as f64)
            .collect();
        let last = &trials[trials.len() - 1].outcome;
        let t = Summary::of(&times);
        let mv = Summary::of(&moves);
        Measurement {
            point: point.clone(),
            k: last.k,
            n: last.n,
            m: last.m,
            max_degree: last.max_degree,
            time_mean: t.mean,
            time_min: t.min,
            time_max: t.max,
            moves_mean: mv.mean,
            peak_memory_bits: trials
                .iter()
                .map(|t| t.outcome.peak_memory_bits)
                .max()
                .unwrap_or(0),
            all_dispersed: trials.iter().all(|t| t.dispersed),
        }
    }
}

impl ExperimentSpec {
    /// Run every point sequentially.
    pub fn run(&self, registry: &Registry) -> Vec<Measurement> {
        self.points.iter().map(|p| p.measure(registry)).collect()
    }

    /// Run the points across `threads` OS threads (order of results matches
    /// the order of points).
    pub fn run_parallel(&self, registry: &Registry, threads: usize) -> Vec<Measurement> {
        let threads = threads.max(1);
        if threads == 1 || self.points.len() <= 1 {
            return self.run(registry);
        }
        let chunks: Vec<Vec<(usize, ExperimentPoint)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, p) in self.points.iter().enumerate() {
                chunks[i % threads].push((i, p.clone()));
            }
            chunks
        };
        let mut indexed: Vec<(usize, Measurement)> = thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .into_iter()
                            .map(|(i, p)| (i, p.measure(registry)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("experiment worker panicked"))
                .collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, m)| m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_core::scenario::Schedule;
    use disp_graph::generators::GraphFamily;
    use disp_sim::Placement;

    fn reg() -> Registry {
        Registry::builtin()
    }

    fn small_point(algorithm: &str, schedule: Schedule) -> ExperimentPoint {
        ExperimentPoint::new(
            ScenarioSpec::new(GraphFamily::RandomTree, 16, algorithm).with_schedule(schedule),
            2,
        )
    }

    #[test]
    fn measure_produces_dispersed_results() {
        let m = small_point("probe-dfs", Schedule::Sync).measure(&reg());
        assert!(m.all_dispersed);
        assert!(m.time_mean > 0.0);
        assert!(m.peak_memory_bits > 0);
        assert_eq!(m.k, 16);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let registry = reg();
        let spec = ExperimentSpec {
            points: vec![
                small_point("ks-dfs", Schedule::Sync),
                small_point("probe-dfs", Schedule::Sync),
                small_point("sync-seeker", Schedule::Sync),
            ],
        };
        let seq = spec.run(&registry);
        let par = spec.run_parallel(&registry, 3);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.time_mean, b.time_mean);
            assert_eq!(a.point.scenario.algorithm, b.point.scenario.algorithm);
        }
    }

    #[test]
    fn async_measurement_reports_epochs() {
        let m =
            small_point("probe-dfs", Schedule::AsyncRandom { prob: 0.6, seed: 0 }).measure(&reg());
        assert!(m.all_dispersed);
        assert!(m.time_mean >= 1.0);
    }

    #[test]
    fn run_trial_is_deterministic_in_the_seed() {
        let registry = reg();
        let p = small_point("probe-dfs", Schedule::AsyncRandom { prob: 0.7, seed: 0 });
        let a = p.run_trial(&registry, 0, 999);
        let b = p.run_trial(&registry, 0, 999);
        let c = p.run_trial(&registry, 0, 1000);
        assert_eq!(a, b);
        assert_eq!(a.outcome, b.outcome);
        assert!(a.seed != c.seed);
    }

    #[test]
    fn trial_records_round_trip_through_jsonl() {
        let registry = reg();
        for schedule in [
            Schedule::Sync,
            Schedule::AsyncRoundRobin,
            Schedule::AsyncRandom { prob: 0.7, seed: 0 },
            Schedule::AsyncLagging {
                max_lag: 3,
                seed: 0,
            },
        ] {
            for placement in [Placement::Rooted, Placement::ScatteredUniform] {
                let mut point = small_point("ks-dfs", schedule);
                point.scenario = point.scenario.with_placement(placement);
                let rec = point.run_trial(&registry, 1, 42);
                let line = rec.to_json_line();
                assert!(!line.contains('\n'));
                let back = TrialRecord::from_json_line(&line).unwrap();
                assert_eq!(back, rec);
                assert_eq!(back.outcome, rec.outcome);
                assert_eq!(back.to_json_line(), line, "serialization is stable");
            }
        }
    }

    #[test]
    fn seeds_above_2_pow_53_survive_the_jsonl_round_trip() {
        // Derived trial seeds are uniform 64-bit mix() outputs, so almost
        // all of them exceed f64's exact-integer range; the wire format
        // must not round them (regression test for the lossless encoding).
        let registry = reg();
        let big = u64::MAX - 12345;
        let rec = small_point("probe-dfs", Schedule::AsyncRandom { prob: 0.7, seed: 0 })
            .run_trial(&registry, 0, big);
        assert_eq!(rec.seed, big);
        let back = TrialRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back.seed, big);
        // The recorded seed must reproduce the recorded outcome exactly.
        let replay = back.point.run_trial(&registry, back.rep, back.seed);
        assert_eq!(replay.outcome, rec.outcome);
    }

    #[test]
    fn legacy_point_lines_still_ingest() {
        // A line exactly as PR 1's campaign store wrote it (pre-scenario).
        let line = r#"{"point":{"family":"star","k":16,"occupancy":1,"algorithm":"probe-dfs","schedule":{"kind":"async-rand","prob":0.7,"seed":"000000000000002a"},"repetitions":2},"rep":1,"seed":"000000000000002a","outcome":{"rounds":0,"steps":71,"epochs":9,"activations":760,"total_moves":77,"max_moves_per_agent":9,"peak_memory_bits":18,"terminated":1,"k":16,"n":16,"m":15,"max_degree":15},"dispersed":true}"#;
        let rec = TrialRecord::from_json_line(line).unwrap();
        assert_eq!(rec.point.scenario.algorithm, "probe-dfs");
        assert_eq!(rec.point.scenario.placement, Placement::Rooted);
        assert_eq!(
            rec.point.scenario.schedule,
            Schedule::AsyncRandom { prob: 0.7, seed: 0 }
        );
        assert_eq!(rec.point.repetitions, 2);
        assert_eq!(rec.seed, 42);
        assert_eq!(
            rec.point.point_id(),
            "star/k16/rooted/async-rand0.7/probe-dfs"
        );
        // Re-serialization upgrades to the scenario encoding.
        let upgraded = TrialRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(upgraded, rec);
    }

    #[test]
    fn limit_exceeded_trials_are_recorded_not_panics() {
        use disp_core::scenario::Limits;
        // A user-supplied `/rounds20` limit (above the trivial lower bound
        // of 16 for 32 rooted agents on a line, but far below the need)
        // makes the run give up; the trial must come back as a faithful
        // non-terminated record, not abort the campaign.
        let point = ExperimentPoint::new(
            ScenarioSpec::new(GraphFamily::Line, 32, "probe-dfs").with_limits(Limits {
                max_rounds: Some(20),
                max_steps: Some(20),
            }),
            1,
        );
        let rec = point.run_trial(&reg(), 0, 1);
        assert!(!rec.dispersed);
        assert!(!rec.outcome.terminated);
        assert_eq!(rec.outcome.rounds, 20);
        // And it round-trips the store like any other record.
        let back = TrialRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn point_id_is_the_canonical_scenario_label() {
        let p = small_point("probe-dfs", Schedule::AsyncRandom { prob: 0.7, seed: 0 });
        assert_eq!(p.point_id(), "rtree/k16/rooted/async-rand0.7/probe-dfs");
        let spec = ScenarioSpec::from_label(&p.point_id()).unwrap();
        assert_eq!(spec, p.scenario);
    }

    #[test]
    fn from_trials_aggregates_like_measure() {
        let registry = reg();
        let p = small_point("probe-dfs", Schedule::Sync);
        let direct = p.measure(&registry);
        let trials: Vec<TrialRecord> = (0..2)
            .map(|r| p.run_trial(&registry, r, 1000 * r as u64 + 17))
            .collect();
        let merged = Measurement::from_trials(&p, &trials);
        assert_eq!(direct.time_mean, merged.time_mean);
        assert_eq!(direct.peak_memory_bits, merged.peak_memory_bits);
        assert_eq!(direct.n, merged.n);
    }
}
