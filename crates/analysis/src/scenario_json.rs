//! Structured JSON codec for [`ScenarioSpec`] — the second canonical wire
//! form next to the label string.
//!
//! The encoding mirrors the label grammar field for field: labels encode the
//! graph family, placement and schedule; parameter values use their
//! canonical text form (so a `u64` is never confused with an `f64`); and
//! defaulted fields (`occupancy` 1.0, empty params, unlimited limits) are
//! omitted. The emitted key order is fixed, which makes
//! `spec → JSON → spec → JSON` byte-identical.

use crate::experiment::ExperimentPoint;
use crate::json::Json;
use disp_core::scenario::{fmt_f64, Limits, ParamValue, Params, ScenarioSpec, Schedule};
use disp_graph::generators::GraphFamily;
use disp_sim::Placement;

/// Encode a scenario as a structured JSON object.
pub fn scenario_to_json(spec: &ScenarioSpec) -> Json {
    let mut fields = vec![
        ("family".into(), Json::Str(spec.family.label())),
        ("k".into(), Json::Num(spec.k as f64)),
    ];
    if spec.occupancy != 1.0 {
        fields.push(("occupancy".into(), Json::Str(fmt_f64(spec.occupancy))));
    }
    fields.push(("placement".into(), Json::Str(spec.placement.label())));
    fields.push(("schedule".into(), Json::Str(spec.schedule.label())));
    // The fault dimensions mirror the label grammar's canonical omission:
    // no key when the world is static / crash-free / plain-dispersion.
    if let Some(rate) = spec.dyn_ring {
        fields.push(("dyn_ring".into(), Json::Num(rate as f64)));
    }
    if spec.crashes > 0 {
        fields.push(("crashes".into(), Json::Num(spec.crashes as f64)));
    }
    fields.push(("algorithm".into(), Json::Str(spec.algorithm.clone())));
    if !spec.params.is_empty() {
        fields.push((
            "params".into(),
            Json::Obj(
                spec.params
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Str(v.fmt())))
                    .collect(),
            ),
        ));
    }
    if spec.min_distance > 1 {
        fields.push(("min_distance".into(), Json::Num(spec.min_distance as f64)));
    }
    let mut limits = Vec::new();
    if let Some(r) = spec.limits.max_rounds {
        limits.push(("max_rounds".to_string(), Json::Num(r as f64)));
    }
    if let Some(s) = spec.limits.max_steps {
        limits.push(("max_steps".to_string(), Json::Num(s as f64)));
    }
    if !limits.is_empty() {
        fields.push(("limits".into(), Json::Obj(limits)));
    }
    Json::Obj(fields)
}

/// Decode a scenario written by [`scenario_to_json`].
pub fn scenario_from_json(v: &Json) -> Result<ScenarioSpec, String> {
    let family_label = v
        .get("family")
        .and_then(Json::as_str)
        .ok_or("scenario: missing family")?;
    let family = GraphFamily::from_label(family_label)
        .ok_or_else(|| format!("scenario: unknown family '{family_label}'"))?;
    let k = v
        .get("k")
        .and_then(Json::as_u64)
        .ok_or("scenario: missing k")? as usize;
    let occupancy = match v.get("occupancy") {
        None => 1.0,
        Some(Json::Str(s)) => disp_core::scenario::parse_f64(s)
            .ok_or_else(|| format!("scenario: non-canonical occupancy '{s}'"))?,
        Some(other) => other.as_f64().ok_or("scenario: bad occupancy")?,
    };
    let placement_label = v
        .get("placement")
        .and_then(Json::as_str)
        .ok_or("scenario: missing placement")?;
    let placement = Placement::from_label(placement_label)
        .ok_or_else(|| format!("scenario: unknown placement '{placement_label}'"))?;
    let schedule_label = v
        .get("schedule")
        .and_then(Json::as_str)
        .ok_or("scenario: missing schedule")?;
    let schedule = Schedule::from_label(schedule_label)
        .ok_or_else(|| format!("scenario: unknown schedule '{schedule_label}'"))?;
    // Fault keys whose value means "absent" are rejected rather than
    // normalized, keeping spec → JSON → spec → JSON byte-identical.
    let dyn_ring = match v.get("dyn_ring") {
        None => None,
        Some(x) => {
            let rate = x.as_u64().ok_or("scenario: bad dyn_ring")?;
            if rate == 0 {
                return Err("scenario: dyn_ring 0 must be omitted".into());
            }
            Some(rate)
        }
    };
    let crashes = match v.get("crashes") {
        None => 0,
        Some(x) => {
            let f = x.as_u64().ok_or("scenario: bad crashes")?;
            if f == 0 {
                return Err("scenario: crashes 0 must be omitted".into());
            }
            f
        }
    };
    let algorithm = v
        .get("algorithm")
        .and_then(Json::as_str)
        .ok_or("scenario: missing algorithm")?
        .to_string();
    let mut params = Params::new();
    if let Some(Json::Obj(entries)) = v.get("params") {
        for (key, value) in entries {
            let text = value.as_str().ok_or("scenario: param values are strings")?;
            let value = ParamValue::parse(text)
                .ok_or_else(|| format!("scenario: bad param value '{text}'"))?;
            params = params.set(key, value);
        }
    }
    let min_distance = match v.get("min_distance") {
        None => 1,
        Some(x) => {
            let d = x.as_u64().ok_or("scenario: bad min_distance")?;
            if d <= 1 {
                return Err("scenario: min_distance 0/1 must be omitted".into());
            }
            d
        }
    };
    let mut limits = Limits::default();
    if let Some(obj) = v.get("limits") {
        limits.max_rounds = obj.get("max_rounds").and_then(Json::as_u64);
        limits.max_steps = obj.get("max_steps").and_then(Json::as_u64);
    }
    Ok(ScenarioSpec {
        family,
        k,
        occupancy,
        placement,
        schedule,
        dyn_ring,
        crashes,
        min_distance,
        algorithm,
        params,
        limits,
    })
}

/// Upgrade a pre-redesign `"point"` object (PR 1's JSONL encoding:
/// `{family, k, occupancy, algorithm, schedule: {kind, …}, repetitions}`)
/// into an [`ExperimentPoint`]. All legacy points were rooted; embedded
/// adversary seeds are dropped (they never were part of a point's identity).
pub fn legacy_point_to_scenario(v: &Json) -> Result<ExperimentPoint, String> {
    let family_label = v
        .get("family")
        .and_then(Json::as_str)
        .ok_or("legacy point: missing family")?;
    let family = GraphFamily::from_label(family_label)
        .ok_or_else(|| format!("legacy point: unknown family '{family_label}'"))?;
    let sched = v.get("schedule").ok_or("legacy point: missing schedule")?;
    let kind = sched
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("legacy point: missing schedule kind")?;
    let schedule = match kind {
        "sync" => Schedule::Sync,
        "async-rr" => Schedule::AsyncRoundRobin,
        "async-rand" => Schedule::AsyncRandom {
            prob: sched
                .get("prob")
                .and_then(Json::as_f64)
                .ok_or("legacy point: missing prob")?,
            seed: 0,
        },
        "async-lag" => Schedule::AsyncLagging {
            max_lag: sched
                .get("max_lag")
                .and_then(Json::as_u64)
                .ok_or("legacy point: missing max_lag")?,
            seed: 0,
        },
        other => return Err(format!("legacy point: unknown schedule kind '{other}'")),
    };
    let scenario = ScenarioSpec {
        family,
        k: v.get("k")
            .and_then(Json::as_u64)
            .ok_or("legacy point: missing k")? as usize,
        occupancy: v
            .get("occupancy")
            .and_then(Json::as_f64)
            .ok_or("legacy point: missing occupancy")?,
        placement: Placement::Rooted,
        schedule,
        dyn_ring: None,
        crashes: 0,
        min_distance: 1,
        algorithm: v
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("legacy point: missing algorithm")?
            .to_string(),
        params: Params::new(),
        limits: Limits::default(),
    };
    Ok(ExperimentPoint {
        scenario,
        repetitions: v
            .get("repetitions")
            .and_then(Json::as_u64)
            .ok_or("legacy point: missing repetitions")? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_core::scenario::{Limits, ParamValue};

    #[test]
    fn scenario_json_round_trips_byte_identically() {
        let specs = [
            ScenarioSpec::new(GraphFamily::RandomTree, 64, "probe-dfs"),
            ScenarioSpec::new(GraphFamily::ErdosRenyi { avg_degree: 6.0 }, 32, "ks-dfs")
                .with_placement(Placement::Clustered { clusters: 4 })
                .with_schedule(Schedule::AsyncRandom { prob: 0.7, seed: 0 })
                .with_occupancy(0.5),
            ScenarioSpec::new(GraphFamily::Star, 96, "sync-seeker")
                .with_param("wait", ParamValue::U64(6))
                .with_param("probers", ParamValue::U64(32))
                .with_limits(Limits {
                    max_rounds: Some(10_000),
                    max_steps: Some(20_000),
                }),
            ScenarioSpec::new(GraphFamily::Ring, 24, "probe-dfs").with_dynamic_ring(1),
            ScenarioSpec::new(GraphFamily::Ring, 16, "random-walk")
                .with_occupancy(0.5)
                .with_placement(Placement::ScatteredUniform)
                .with_dynamic_ring(2)
                .with_crashes(3),
            ScenarioSpec::new(GraphFamily::Ring, 12, "spacer")
                .with_occupancy(0.25)
                .with_param("gap", ParamValue::U64(3))
                .with_min_distance(3),
        ];
        for spec in specs {
            let json = scenario_to_json(&spec);
            let text = json.to_string_compact();
            let back = scenario_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec);
            assert_eq!(
                scenario_to_json(&back).to_string_compact(),
                text,
                "spec → JSON → spec → JSON must be byte-identical"
            );
        }
    }

    #[test]
    fn defaults_are_omitted_from_the_wire_form() {
        let spec = ScenarioSpec::new(GraphFamily::Line, 8, "ks-dfs");
        let text = scenario_to_json(&spec).to_string_compact();
        assert!(!text.contains("occupancy"));
        assert!(!text.contains("params"));
        assert!(!text.contains("limits"));
    }

    #[test]
    fn malformed_scenarios_error_instead_of_panicking() {
        for bad in [
            r#"{"k":8}"#,
            r#"{"family":"warp","k":8,"placement":"rooted","schedule":"sync","algorithm":"ks-dfs"}"#,
            r#"{"family":"line","k":8,"placement":"x","schedule":"sync","algorithm":"ks-dfs"}"#,
            r#"{"family":"line","k":8,"placement":"rooted","schedule":"x","algorithm":"ks-dfs"}"#,
            r#"{"family":"line","k":8,"occupancy":"0.70","placement":"rooted","schedule":"sync","algorithm":"ks-dfs"}"#,
            // Fault keys at their "absent" value are non-canonical.
            r#"{"family":"ring","k":8,"placement":"rooted","schedule":"sync","dyn_ring":0,"algorithm":"ks-dfs"}"#,
            r#"{"family":"ring","k":8,"placement":"rooted","schedule":"sync","crashes":0,"algorithm":"ks-dfs"}"#,
            r#"{"family":"ring","k":8,"placement":"rooted","schedule":"sync","algorithm":"ks-dfs","min_distance":1}"#,
            r#"{"family":"ring","k":8,"placement":"rooted","schedule":"sync","dyn_ring":"x","algorithm":"ks-dfs"}"#,
        ] {
            assert!(
                scenario_from_json(&Json::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }
}
