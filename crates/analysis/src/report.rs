//! Markdown / CSV / JSON rendering of experiment results.

use crate::experiment::Measurement;
use crate::json::Json;

/// Render rows as a GitHub-flavoured Markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Render rows as CSV (simple escaping: fields containing commas are quoted).
pub fn csv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = headers
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Format a measurement as the standard harness table row (matches
/// [`measurement_header`]).
pub fn measurement_row(m: &Measurement) -> Vec<String> {
    let s = &m.point.scenario;
    vec![
        s.family.label(),
        s.algorithm.clone(),
        s.placement.label(),
        s.schedule.label(),
        m.k.to_string(),
        m.n.to_string(),
        m.max_degree.to_string(),
        format!("{:.1}", m.time_mean),
        format!("{:.2}", m.time_mean / m.k as f64),
        format!(
            "{:.2}",
            m.time_mean / (m.k as f64 * (m.k as f64 + 2.0).log2())
        ),
        m.peak_memory_bits.to_string(),
        if m.all_dispersed { "yes" } else { "NO" }.to_string(),
    ]
}

/// Encode a measurement as a JSON object — the machine-readable summary
/// format shared by `disp-campaign report --format json` and the
/// `disp-serve` results-summary endpoint, so scripts read one schema no
/// matter which entry point produced it.
pub fn measurement_to_json(m: &Measurement) -> Json {
    let s = &m.point.scenario;
    Json::Obj(vec![
        ("scenario".into(), Json::Str(s.label())),
        ("family".into(), Json::Str(s.family.label())),
        ("algorithm".into(), Json::Str(s.algorithm.clone())),
        ("placement".into(), Json::Str(s.placement.label())),
        ("schedule".into(), Json::Str(s.schedule.label())),
        ("k".into(), Json::Num(m.k as f64)),
        ("n".into(), Json::Num(m.n as f64)),
        ("m".into(), Json::Num(m.m as f64)),
        ("max_degree".into(), Json::Num(m.max_degree as f64)),
        ("repetitions".into(), Json::Num(m.point.repetitions as f64)),
        ("time_mean".into(), Json::Num(m.time_mean)),
        ("time_min".into(), Json::Num(m.time_min)),
        ("time_max".into(), Json::Num(m.time_max)),
        ("moves_mean".into(), Json::Num(m.moves_mean)),
        (
            "peak_memory_bits".into(),
            Json::Num(m.peak_memory_bits as f64),
        ),
        ("all_dispersed".into(), Json::Bool(m.all_dispersed)),
    ])
}

/// Header matching [`measurement_row`].
pub fn measurement_header() -> Vec<&'static str> {
    vec![
        "family",
        "algorithm",
        "placement",
        "schedule",
        "k",
        "n",
        "max_deg",
        "time",
        "time/k",
        "time/(k·log k)",
        "peak_mem_bits",
        "dispersed",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentPoint;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;

    #[test]
    fn measurement_row_matches_header_length() {
        let m = ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Line, 8, "probe-dfs"), 1)
            .measure(&Registry::builtin());
        assert_eq!(measurement_row(&m).len(), measurement_header().len());
    }

    #[test]
    fn markdown_structure() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.starts_with("| a | b |\n|---|---|\n"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn measurement_json_is_parseable_and_carries_the_label() {
        let m = ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Line, 8, "probe-dfs"), 2)
            .measure(&Registry::builtin());
        let j = measurement_to_json(&m);
        let text = j.to_string_compact();
        let back = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            back.get("scenario").unwrap().as_str(),
            Some("line/k8/rooted/sync/probe-dfs")
        );
        assert_eq!(back.get("k").unwrap().as_u64(), Some(8));
        assert_eq!(back.get("repetitions").unwrap().as_u64(), Some(2));
        assert_eq!(back.get("all_dispersed").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let t = csv_table(&["x"], &[vec!["a,b".into()], vec!["say \"hi\"".into()]]);
        assert!(t.contains("\"a,b\""));
        assert!(t.contains("\"say \"\"hi\"\"\""));
    }
}
