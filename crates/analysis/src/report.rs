//! Markdown / CSV rendering of experiment results.

/// Render rows as a GitHub-flavoured Markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Render rows as CSV (simple escaping: fields containing commas are quoted).
pub fn csv_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let escape = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = headers
        .iter()
        .map(|h| escape(h))
        .collect::<Vec<_>>()
        .join(",");
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_structure() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.starts_with("| a | b |\n|---|---|\n"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let t = csv_table(&["x"], &[vec!["a,b".into()], vec!["say \"hi\"".into()]]);
        assert!(t.contains("\"a,b\""));
        assert!(t.contains("\"say \"\"hi\"\"\""));
    }
}
