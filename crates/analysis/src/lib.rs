//! # disp-analysis
//!
//! Experiment sweeps, scaling fits and report generation for the dispersion
//! reproduction. The [`experiment`] module runs parameter sweeps (optionally
//! across threads), [`fit`] estimates log–log scaling exponents so the
//! harness can check the *shape* of the paper's bounds, [`stats`] provides
//! the usual summaries, and [`report`] renders Markdown and CSV tables for
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fit;
pub mod report;
pub mod stats;

pub use experiment::{ExperimentPoint, ExperimentSpec, Measurement};
pub use fit::{loglog_fit, LogLogFit};
pub use report::{csv_table, markdown_table};
pub use stats::Summary;
