//! # disp-analysis
//!
//! Experiment sweeps, scaling fits and report generation for the dispersion
//! reproduction. The [`experiment`] module defines experiment points
//! (a canonical `ScenarioSpec` × repetitions), runs individual seeded
//! trials and parameter sweeps (optionally across threads),
//! [`scenario_json`] is the structured JSON codec for scenarios (labels are
//! the other canonical form), [`jsonl`] streams and merges the trial
//! records the `disp-campaign` engine checkpoints to disk, [`json`] is the
//! minimal dependency-free JSON layer underneath, [`online`] provides
//! constant-space streaming statistics (Welford + P² quantiles) for live
//! campaign observation, [`fit`] estimates log–log
//! scaling exponents so the harness can check the *shape* of the paper's
//! bounds, [`stats`] provides the usual summaries, and [`report`] renders
//! Markdown and CSV tables for `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fit;
pub mod json;
pub mod jsonl;
pub mod online;
pub mod report;
pub mod scenario_json;
pub mod spark;
pub mod stats;

pub use experiment::{ExperimentPoint, ExperimentSpec, Measurement, TrialRecord};
pub use fit::{loglog_fit, LogLogFit};
pub use json::Json;
pub use jsonl::{dedup_trials, merge_trials, read_trials, Ingest};
pub use online::{OnlineStats, P2Quantile, Welford};
pub use report::{
    csv_table, markdown_table, measurement_header, measurement_row, measurement_to_json,
};
pub use scenario_json::{scenario_from_json, scenario_to_json};
pub use spark::{sparkline, sparkline_scaled, SPARK_RAMP};
pub use stats::Summary;
