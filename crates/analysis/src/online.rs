//! Streaming (online) statistics for live campaign observation.
//!
//! A running campaign produces trial outcomes one at a time, across worker
//! threads, and the service wants current per-grid-point summaries without
//! rescanning the results JSONL on every status poll. This module provides
//! constant-space estimators that absorb one observation at a time:
//!
//! * [`Welford`] — numerically stable mean/variance (Welford's method).
//!   Mean is exact; the population variance matches the batch
//!   [`crate::stats::Summary`] to floating-point error.
//! * [`P2Quantile`] — the P² algorithm of Jain & Chlamtac (CACM 1985):
//!   five markers track a single quantile with O(1) space and O(1) update.
//!   Exact for the first five observations, an estimate afterwards.
//! * [`OnlineStats`] — the bundle the service keeps per grid point:
//!   count, mean, stddev, min, max, p50 and p99.
//!
//! All estimators are deterministic functions of the observation sequence,
//! so per-point stats built from a deterministic trial stream are themselves
//! reproducible.

use crate::json::Json;

/// Welford's online mean and variance.
///
/// Population variance (divide by `n`), matching
/// [`Summary::of`](crate::stats::Summary::of).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance (NaN when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation (NaN when empty).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// P² single-quantile estimator (Jain & Chlamtac, CACM 28(10), 1985).
///
/// Five markers track the minimum, the target quantile, the quantile's
/// half-way neighbours and the maximum. Until five observations have
/// arrived the estimate is exact (computed from the sorted prefix).
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (sorted ascending once initialised).
    q: [f64; 5],
    /// Marker positions, 1-based as in the paper.
    n: [f64; 5],
    /// Observations so far; the first five also live in `q` unsorted-free.
    count: u64,
}

impl P2Quantile {
    /// An estimator for quantile `p` in `(0, 1)` (e.g. `0.5`, `0.99`).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            count: 0,
        }
    }

    /// The quantile this estimator tracks.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Locate the cell and update the extreme markers.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            // q[0] <= x < q[4]: find i with q[i] <= x < q[i+1].
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }

        // Desired marker positions for the current count.
        let total = (self.count - 1) as f64;
        let desired = [
            1.0,
            1.0 + total * self.p / 2.0,
            1.0 + total * self.p,
            1.0 + total * (1.0 + self.p) / 2.0,
            1.0 + total,
        ];

        // Nudge the three interior markers toward their desired positions.
        // (Index loop: `i` addresses `q`, `n` and `desired` in lockstep.)
        #[allow(clippy::needless_range_loop)]
        for i in 1..4 {
            let d = desired[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < parabolic && parabolic < self.q[i + 1] {
                    parabolic
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    /// The P² parabolic prediction for marker `i` moved by `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    /// The linear fallback when the parabola leaves the bracket.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the tracked quantile (NaN when empty).
    ///
    /// For fewer than five observations this is the exact nearest-rank
    /// quantile of the sorted prefix.
    pub fn estimate(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            c if c < 5 => {
                let mut prefix = self.q[..c as usize].to_vec();
                prefix.sort_by(f64::total_cmp);
                let rank = (self.p * c as f64).ceil() as usize;
                prefix[rank.clamp(1, c as usize) - 1]
            }
            _ => self.q[2],
        }
    }
}

/// The per-series bundle a live status page wants: count, mean, stddev,
/// min, max and streaming p50/p99.
#[derive(Debug, Clone)]
pub struct OnlineStats {
    welford: Welford,
    p50: P2Quantile,
    p99: P2Quantile,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// An empty bundle.
    pub fn new() -> Self {
        OnlineStats {
            welford: Welford::new(),
            p50: P2Quantile::new(0.5),
            p99: P2Quantile::new(0.99),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Absorb one observation.
    pub fn push(&mut self, x: f64) {
        self.welford.push(x);
        self.p50.push(x);
        self.p99.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations absorbed.
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Population standard deviation (NaN when empty).
    pub fn stddev(&self) -> f64 {
        self.welford.stddev()
    }

    /// Minimum observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Streaming median estimate (NaN when empty).
    pub fn p50(&self) -> f64 {
        self.p50.estimate()
    }

    /// Streaming 99th-percentile estimate (NaN when empty).
    pub fn p99(&self) -> f64 {
        self.p99.estimate()
    }

    /// Render as a JSON object (`{"count","mean","stddev","min","max",
    /// "p50","p99"}`); NaNs become `null` via the JSON layer's encoding of
    /// non-finite numbers as 0 — so an empty bundle renders all-zero.
    pub fn to_json(&self) -> Json {
        fn num(x: f64) -> Json {
            Json::Num(if x.is_finite() { x } else { 0.0 })
        }
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count() as f64)),
            ("mean".into(), num(self.mean())),
            ("stddev".into(), num(self.stddev())),
            ("min".into(), num(self.min())),
            ("max".into(), num(self.max())),
            ("p50".into(), num(self.p50())),
            ("p99".into(), num(self.p99())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    /// Exact quantile by nearest-rank on a sorted copy — the batch oracle.
    fn exact_quantile(xs: &[f64], p: f64) -> f64 {
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = (p * xs.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, xs.len()) - 1]
    }

    #[test]
    fn welford_matches_batch_summary() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let batch = Summary::of(&xs);
        assert!((w.mean() - batch.mean).abs() < 1e-9);
        assert!((w.stddev() - batch.stddev).abs() < 1e-9);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn empty_stats_are_nan() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let q = P2Quantile::new(0.5);
        assert!(q.estimate().is_nan());
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.p99().is_nan());
    }

    #[test]
    fn p2_is_exact_below_five_observations() {
        let mut q = P2Quantile::new(0.5);
        for (i, x) in [5.0, 1.0, 4.0].iter().enumerate() {
            q.push(*x);
            assert_eq!(q.count(), i as u64 + 1);
        }
        assert_eq!(q.estimate(), 4.0); // median of {1,4,5}
    }

    #[test]
    fn p2_median_tracks_a_uniform_stream() {
        // Deterministic low-discrepancy stream over [0, 1000).
        let mut q = P2Quantile::new(0.5);
        let xs: Vec<f64> = (0..5000).map(|i| ((i * 617) % 1000) as f64).collect();
        for &x in &xs {
            q.push(x);
        }
        let exact = exact_quantile(&xs, 0.5);
        assert!(
            (q.estimate() - exact).abs() < 25.0,
            "p50 {} vs exact {}",
            q.estimate(),
            exact
        );
    }

    #[test]
    fn seeded_streams_property_online_matches_batch() {
        // Seeded-loop property test: across many pseudorandom streams the
        // online mean/stddev match the batch summary near-exactly and the
        // P² quantiles land within a tolerance of the exact batch
        // quantiles (relative to the spread of the data).
        for seed in 0..40u64 {
            let mut rng = disp_rng::StdRng::seed_from_u64(disp_rng::mix(&[seed, 0xA11CE]));
            let len = 64 + (rng.next_u64() % 2000) as usize;
            // Mix of uniform and heavy-tailed observations.
            let xs: Vec<f64> = (0..len)
                .map(|_| {
                    let u = (rng.next_u64() % 1_000_000) as f64 / 1_000_000.0;
                    if rng.next_u64().is_multiple_of(4) {
                        1000.0 * u * u * u // heavy tail
                    } else {
                        100.0 * u
                    }
                })
                .collect();
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.push(x);
            }
            let batch = Summary::of(&xs);
            assert!((s.mean() - batch.mean).abs() < 1e-6 * (1.0 + batch.mean.abs()));
            assert!((s.stddev() - batch.stddev).abs() < 1e-6 * (1.0 + batch.stddev));
            assert_eq!(s.min(), batch.min);
            assert_eq!(s.max(), batch.max);
            // Quantile estimates must land inside a rank band around the
            // exact quantile: the P² error is bounded in *rank*, not in
            // value, so a value-space tolerance would be meaningless for
            // heavy-tailed data.
            let (lo50, hi50) = (exact_quantile(&xs, 0.35), exact_quantile(&xs, 0.65));
            assert!(
                (lo50..=hi50).contains(&s.p50()),
                "seed {seed}: p50 {} outside exact [{lo50}, {hi50}]",
                s.p50()
            );
            let lo99 = exact_quantile(&xs, 0.90);
            assert!(
                s.p99() >= lo99 && s.p99() <= batch.max,
                "seed {seed}: p99 {} outside exact [{lo99}, {}]",
                s.p99(),
                batch.max
            );
        }
    }

    #[test]
    fn online_stats_json_shape() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        let doc = s.to_json();
        assert_eq!(doc.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("mean").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("min").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("max").and_then(Json::as_f64), Some(3.0));
        assert!(doc.get("p50").is_some() && doc.get("p99").is_some());
    }
}
