//! Streaming JSONL ingestion and merge of partial campaign results.
//!
//! The campaign engine appends one [`TrialRecord`] line per completed trial
//! and flushes after every line, so a killed run leaves a readable prefix —
//! possibly ending in a torn final line. Ingestion therefore tolerates (and
//! counts) malformed lines instead of failing; merge tolerates duplicate
//! trials (the last occurrence wins, matching "append after resume"
//! semantics).

use crate::experiment::{Measurement, TrialRecord};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::BufRead;
use std::path::Path;

/// Result of streaming a JSONL trial file.
#[derive(Debug, Clone, Default)]
pub struct Ingest {
    /// Successfully parsed records, in file order.
    pub records: Vec<TrialRecord>,
    /// Number of non-empty lines that failed to parse (torn tail writes).
    pub malformed: usize,
}

/// Read trial records from a JSONL stream.
pub fn read_trials(reader: impl BufRead) -> std::io::Result<Ingest> {
    let mut ingest = Ingest::default();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match TrialRecord::from_json_line(trimmed) {
            Ok(rec) => ingest.records.push(rec),
            Err(_) => ingest.malformed += 1,
        }
    }
    Ok(ingest)
}

/// Open a JSONL log for appending, repairing a torn tail first.
///
/// A kill mid-write can leave the final line without a trailing newline; a
/// naive append would merge the next record into the torn line and corrupt
/// *both*. If the file's last byte is not `\n`, a newline is emitted before
/// returning, so the next record starts on a fresh line. O(1): only the
/// final byte is read. Shared by the campaign store's trial log and the
/// serve trial cache — one durability-critical routine, one copy.
pub fn open_append_with_repair(path: &Path) -> std::io::Result<File> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let needs_newline = File::open(path)
        .and_then(|mut f| {
            if f.seek(SeekFrom::End(0))? == 0 {
                return Ok(false);
            }
            f.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            f.read_exact(&mut last)?;
            Ok(last[0] != b'\n')
        })
        .unwrap_or(false);
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    if needs_newline {
        writeln!(file)?;
    }
    Ok(file)
}

/// Deduplicate records by trial id (last occurrence wins) and return them
/// in a deterministic order (by trial id).
pub fn dedup_trials(records: Vec<TrialRecord>) -> Vec<TrialRecord> {
    let mut by_id: BTreeMap<String, TrialRecord> = BTreeMap::new();
    for rec in records {
        by_id.insert(rec.trial_id(), rec);
    }
    by_id.into_values().collect()
}

/// Arrange out-of-order records into a prescribed trial-id order — the
/// merge step for cluster shard results, which complete in lease order,
/// not grid order.
///
/// `order` is the submitting grid's trial-id sequence (duplicates allowed:
/// a grid that mentions the same trial twice gets the same record twice).
/// Errors if any id has no record — a shard result set that cannot cover
/// its grid is a bug upstream, never something to paper over by skipping.
pub fn arrange_grid_order(
    records: Vec<TrialRecord>,
    order: &[String],
) -> Result<Vec<TrialRecord>, String> {
    let by_id: std::collections::HashMap<String, TrialRecord> =
        records.into_iter().map(|r| (r.trial_id(), r)).collect();
    order
        .iter()
        .map(|id| {
            by_id
                .get(id)
                .cloned()
                .ok_or_else(|| format!("no record for trial '{id}'"))
        })
        .collect()
}

/// Merge (possibly partial) trial records into per-point measurements.
///
/// Records are grouped by [`crate::experiment::ExperimentPoint::point_id`];
/// within a group, repetitions are sorted by `rep` so the aggregate is
/// independent of completion order. Points with fewer completed repetitions
/// than requested still produce a measurement (over what exists) — callers
/// that care can compare `trials` against `point.repetitions`.
pub fn merge_trials(records: Vec<TrialRecord>) -> Vec<Measurement> {
    let mut groups: BTreeMap<String, Vec<TrialRecord>> = BTreeMap::new();
    for rec in dedup_trials(records) {
        groups.entry(rec.point.point_id()).or_default().push(rec);
    }
    groups
        .into_values()
        .map(|mut trials| {
            trials.sort_by_key(|t| t.rep);
            let point = trials[0].point.clone();
            Measurement::from_trials(&point, &trials)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentPoint;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;
    use std::io::Cursor;

    fn point(k: usize) -> ExperimentPoint {
        ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Star, k, "probe-dfs"), 2)
    }

    #[test]
    fn reads_skips_torn_lines_and_merges() {
        let reg = Registry::builtin();
        let r0 = point(8).run_trial(&reg, 0, 1);
        let r1 = point(8).run_trial(&reg, 1, 2);
        let other = point(16).run_trial(&reg, 0, 3);
        let file = format!(
            "{}\n{}\n{}\n{{\"torn\": tru",
            r0.to_json_line(),
            r1.to_json_line(),
            other.to_json_line()
        );
        let ingest = read_trials(Cursor::new(file)).unwrap();
        assert_eq!(ingest.records.len(), 3);
        assert_eq!(ingest.malformed, 1);
        let merged = merge_trials(ingest.records);
        assert_eq!(merged.len(), 2);
        let m8 = merged.iter().find(|m| m.point.scenario.k == 8).unwrap();
        assert_eq!(
            m8.time_mean,
            (r0.outcome.time() as f64 + r1.outcome.time() as f64) / 2.0
        );
    }

    #[test]
    fn duplicate_trials_collapse_to_the_last_write() {
        let reg = Registry::builtin();
        let a = point(8).run_trial(&reg, 0, 1);
        let b = point(8).run_trial(&reg, 0, 99); // same trial id, different seed
        let deduped = dedup_trials(vec![a, b.clone()]);
        assert_eq!(deduped.len(), 1);
        assert_eq!(deduped[0].seed, b.seed);
    }

    #[test]
    fn arrange_grid_order_restores_grid_order_and_rejects_holes() {
        let reg = Registry::builtin();
        let r0 = point(8).run_trial(&reg, 0, 1);
        let r1 = point(8).run_trial(&reg, 1, 2);
        let other = point(16).run_trial(&reg, 0, 3);
        let order = vec![r0.trial_id(), r1.trial_id(), other.trial_id()];
        // Shard completion order is arbitrary; arrangement is not.
        let arranged =
            arrange_grid_order(vec![other.clone(), r1.clone(), r0.clone()], &order).unwrap();
        let ids: Vec<String> = arranged.iter().map(TrialRecord::trial_id).collect();
        assert_eq!(ids, order);
        assert_eq!(arranged[0].to_json_line(), r0.to_json_line());
        let err = arrange_grid_order(vec![r0, r1], &order).unwrap_err();
        assert!(err.contains("no record"), "{err}");
    }

    #[test]
    fn merge_is_independent_of_record_order() {
        let reg = Registry::builtin();
        let r0 = point(8).run_trial(&reg, 0, 1);
        let r1 = point(8).run_trial(&reg, 1, 2);
        let fwd = merge_trials(vec![r0.clone(), r1.clone()]);
        let rev = merge_trials(vec![r1, r0]);
        assert_eq!(fwd.len(), rev.len());
        assert_eq!(fwd[0].time_mean, rev[0].time_mean);
        assert_eq!(fwd[0].time_min, rev[0].time_min);
    }
}
