//! Seeded-loop property tests for the scenario API's round-trip contract:
//! every spec drawn from the registry round-trips
//! `spec → canonical label → spec` and `spec → JSON → spec` byte-identically,
//! illegal combinations come back as typed `ScenarioError`s (never a
//! panic), and schedule labels are a bijection with their values.

use disp_analysis::{scenario_from_json, scenario_to_json};
use disp_core::scenario::{
    fmt_f64, parse_f64, Limits, ParamValue, Registry, ScenarioError, ScenarioSpec, Schedule,
};
use disp_graph::generators::GraphFamily;
use disp_rng::prelude::*;
use disp_sim::Placement;

const CASES: usize = 400;

fn random_family(rng: &mut StdRng) -> GraphFamily {
    let fixed = GraphFamily::all();
    match rng.random_range(0..(fixed.len() as u64 + 3)) as usize {
        i if i < fixed.len() => fixed[i],
        x if x == fixed.len() => GraphFamily::RandomRegular {
            degree: rng.random_range(2..8u64) as usize,
        },
        x if x == fixed.len() + 1 => GraphFamily::Caterpillar {
            legs: rng.random_range(1..6u64) as usize,
        },
        _ => GraphFamily::ErdosRenyi {
            avg_degree: rng.random_range(2..20u64) as f64 / 2.0,
        },
    }
}

fn random_prob(rng: &mut StdRng) -> f64 {
    // Mix round values with full-precision uniform draws: Rust's float
    // Display is shortest-round-trip, so any finite f64 is canonical.
    if rng.random_bool(0.5) {
        (rng.random_range(1..1001u64) as f64) / 1000.0
    } else {
        let u = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-9);
        u.min(1.0)
    }
}

fn random_placement(rng: &mut StdRng) -> Placement {
    match rng.random_range(0..4u64) {
        0 => Placement::Rooted,
        1 => Placement::ScatteredUniform,
        2 => Placement::Clustered {
            clusters: rng.random_range(1..12u64) as usize,
        },
        _ => Placement::AdversarialSpread,
    }
}

fn random_schedule(rng: &mut StdRng) -> Schedule {
    match rng.random_range(0..5u64) {
        0 => Schedule::Sync,
        1 => Schedule::AsyncRoundRobin,
        2 => Schedule::AsyncRandom {
            prob: random_prob(rng),
            seed: 0,
        },
        3 => Schedule::AsyncTargeted {
            max_lag: rng.random_range(1..1000u64),
        },
        _ => Schedule::AsyncLagging {
            max_lag: rng.random_range(1..1000u64),
            seed: 0,
        },
    }
}

/// A random spec over the registry's vocabulary — not necessarily *valid*
/// (combination-wise), but always grammatical.
fn random_spec(rng: &mut StdRng, registry: &Registry) -> ScenarioSpec {
    let labels = registry.labels();
    let algorithm = labels[rng.random_range(0..labels.len() as u64) as usize];
    let mut spec = ScenarioSpec::new(
        random_family(rng),
        rng.random_range(1..100_000u64) as usize,
        algorithm,
    )
    .with_placement(random_placement(rng))
    .with_schedule(random_schedule(rng));
    if rng.random_bool(0.3) {
        spec = spec.with_occupancy((rng.random_range(1..1001u64) as f64) / 1000.0);
    }
    if rng.random_bool(0.3) {
        // Draw params from the factory's declared defaults, with fresh
        // values of the declared type.
        let declared = registry.get(algorithm).unwrap().default_params();
        for (key, default) in declared.iter() {
            if rng.random_bool(0.5) {
                let value = match default {
                    ParamValue::U64(_) => ParamValue::U64(rng.random_range(0..100u64)),
                    ParamValue::F64(_) => ParamValue::F64(random_prob(rng)),
                    ParamValue::Bool(_) => ParamValue::Bool(rng.random_bool(0.5)),
                };
                spec = spec.with_param(key, value);
            }
        }
    }
    // Fault dimensions: grammatical regardless of family and capability —
    // the validation property test exercises the typed rejections.
    if rng.random_bool(0.2) {
        spec = spec.with_dynamic_ring(rng.random_range(1..10u64));
    }
    if rng.random_bool(0.2) {
        spec = spec.with_crashes(rng.random_range(1..8u64));
    }
    if rng.random_bool(0.2) {
        spec = spec.with_min_distance(rng.random_range(2..6u64));
    }
    if rng.random_bool(0.2) {
        spec = spec.with_limits(Limits {
            max_rounds: rng.random_bool(0.5).then(|| rng.next_u64() >> 20),
            max_steps: rng.random_bool(0.5).then(|| rng.next_u64() >> 20),
        });
    }
    spec
}

#[test]
fn specs_round_trip_through_labels_and_json_byte_identically() {
    let registry = Registry::builtin();
    let mut rng = StdRng::seed_from_u64(0x5CEA_0001);
    for case in 0..CASES {
        let spec = random_spec(&mut rng, &registry);
        let label = spec.label();
        let from_label = ScenarioSpec::from_label(&label)
            .unwrap_or_else(|e| panic!("case {case}: '{label}' failed to parse: {e}"));
        assert_eq!(from_label, spec, "case {case}: label round-trip");
        assert_eq!(from_label.label(), label, "case {case}: label stability");

        let json = scenario_to_json(&spec).to_string_compact();
        let parsed = disp_analysis::Json::parse(&json)
            .unwrap_or_else(|e| panic!("case {case}: JSON '{json}' unparseable: {e}"));
        let from_json = scenario_from_json(&parsed)
            .unwrap_or_else(|e| panic!("case {case}: '{json}' failed to decode: {e}"));
        assert_eq!(from_json, spec, "case {case}: JSON round-trip");
        assert_eq!(
            scenario_to_json(&from_json).to_string_compact(),
            json,
            "case {case}: JSON stability"
        );
    }
}

#[test]
fn validation_returns_typed_errors_and_never_panics() {
    let registry = Registry::builtin();
    let mut rng = StdRng::seed_from_u64(0x5CEA_0002);
    let mut invalid = 0usize;
    for _ in 0..CASES {
        let spec = random_spec(&mut rng, &registry);
        match spec.validate(&registry) {
            Ok(()) => {
                // A valid spec's capabilities must actually match.
                let f = registry.get(&spec.algorithm).unwrap();
                assert!(spec.placement.is_rooted() || f.supports_general());
                assert!(!spec.schedule.is_async() || f.supports_async());
                assert!(spec.dyn_ring.is_none() || f.supports_dynamic());
                assert!(spec.crashes == 0 || f.supports_crash());
                assert!(
                    spec.dyn_ring.is_none() || matches!(spec.family, GraphFamily::Ring),
                    "the dynamic adversary is ring-only"
                );
            }
            Err(e) => {
                invalid += 1;
                match e {
                    ScenarioError::PlacementUnsupported { ref algorithm, .. }
                    | ScenarioError::ScheduleUnsupported { ref algorithm, .. }
                    | ScenarioError::FaultUnsupported { ref algorithm, .. } => {
                        assert_eq!(algorithm, &spec.algorithm)
                    }
                    ScenarioError::BadSpec { .. } | ScenarioError::LimitTooLow { .. } => {}
                    other => panic!("unexpected error class {other:?}"),
                }
                // Errors must render.
                assert!(!e.to_string().is_empty());
            }
        }
    }
    assert!(invalid > 20, "the draw should produce illegal combos");
}

#[test]
fn mutated_labels_error_but_never_panic() {
    let registry = Registry::builtin();
    let mut rng = StdRng::seed_from_u64(0x5CEA_0003);
    // Includes every letter of the fault tokens (`dyn-ring`, `crash`,
    // `dist`) so mutations can forge near-miss fault segments.
    let alphabet: Vec<char> = "abcdefghikrsnty0123456789/=.-".chars().collect();
    for _ in 0..CASES {
        let spec = random_spec(&mut rng, &registry);
        let mut label: Vec<char> = spec.label().chars().collect();
        for _ in 0..rng.random_range(1..4u64) {
            match rng.random_range(0..3u64) {
                0 if label.len() > 1 => {
                    let i = rng.random_range(0..label.len() as u64) as usize;
                    label.remove(i);
                }
                1 => {
                    let i = rng.random_range(0..label.len() as u64 + 1) as usize;
                    let c = alphabet[rng.random_range(0..alphabet.len() as u64) as usize];
                    label.insert(i, c);
                }
                _ => {
                    let i = rng.random_range(0..label.len() as u64) as usize;
                    label[i] = alphabet[rng.random_range(0..alphabet.len() as u64) as usize];
                }
            }
        }
        let mutated: String = label.into_iter().collect();
        // Must return a Result either way; a surviving parse must itself
        // round-trip (the grammar admits no two spellings of one spec).
        if let Ok(respec) = ScenarioSpec::from_label(&mutated) {
            assert_eq!(respec.label(), mutated, "'{mutated}' is non-canonical");
        }
    }
}

#[test]
fn schedule_labels_are_a_bijection_over_random_draws() {
    let mut rng = StdRng::seed_from_u64(0x5CEA_0004);
    for case in 0..CASES {
        let schedule = random_schedule(&mut rng);
        let label = schedule.label();
        let back = Schedule::from_label(&label)
            .unwrap_or_else(|| panic!("case {case}: '{label}' failed to parse"));
        assert_eq!(back, schedule, "case {case}: value round-trip");
        assert_eq!(back.label(), label, "case {case}: label round-trip");
    }
}

#[test]
fn canonical_floats_round_trip_over_random_bit_patterns() {
    let mut rng = StdRng::seed_from_u64(0x5CEA_0005);
    let mut checked = 0usize;
    while checked < CASES {
        let v = f64::from_bits(rng.next_u64());
        if !v.is_finite() {
            continue;
        }
        checked += 1;
        let s = fmt_f64(v);
        assert_eq!(parse_f64(&s), Some(v), "'{s}'");
        assert!(s.contains('.') || s.contains('e') || s.contains('E'));
    }
}
