//! Differential property tests for the event-driven adversaries.
//!
//! Each event-driven adversary (rotation-arithmetic round-robin, geometric
//! skip-sampling random subset, timer-wheel lagging, adaptive targeted) is
//! replayed against its retained naive O(k)-per-step reference
//! ([`disp_sim::adversary::reference`]) over seeded fuzzed grids of
//! `(k, steps, params)` **and** fuzzed worklist evolutions (agents parking
//! mid-run, waking later, victim sets shrinking as "settlement"
//! progresses). Both implementations must produce byte-identical
//! `(fire step, batch)` sequences — the clever data structures may change
//! the cost of a step, never its content.

use disp_rng::prelude::*;
use disp_sim::adversary::reference::{
    NaiveLagging, NaiveRandomSubset, NaiveRoundRobin, NaiveTargeted,
};
use disp_sim::adversary::StepView;
use disp_sim::{Adversary, AgentId};
use std::collections::HashSet;

/// A scripted worklist: evolves by parking batch members and waking parked
/// agents at random, recording wake transitions in occurrence order — the
/// same contract the runner's transition log provides.
struct ScriptedWorklist {
    active: Vec<AgentId>, // sorted
    parked: Vec<AgentId>,
    woken: Vec<AgentId>,
    victims: HashSet<AgentId>,
}

impl ScriptedWorklist {
    fn new(k: usize, rng: &mut StdRng) -> ScriptedWorklist {
        // Every agent starts active (worlds start fully active); a random
        // subset is designated victim.
        let victims = (0..k as u32)
            .map(AgentId)
            .filter(|_| rng.random_bool(0.4))
            .collect();
        ScriptedWorklist {
            active: (0..k as u32).map(AgentId).collect(),
            parked: Vec::new(),
            woken: Vec::new(),
            victims,
        }
    }

    /// Mutate the worklist after a batch, like a protocol would: some batch
    /// members park, some parked agents wake, some victims "settle" (leave
    /// the victim set). Wake order is the occurrence order.
    fn evolve(&mut self, batch: &[AgentId], rng: &mut StdRng) {
        self.woken.clear();
        for &a in batch {
            // Keep at least one agent active: a real runner stalls out on
            // an empty worklist before ever calling the adversary again.
            if self.active.len() > 1 && rng.random_bool(0.25) {
                if let Ok(i) = self.active.binary_search(&a) {
                    self.active.remove(i);
                    self.parked.push(a);
                }
            }
        }
        let mut i = 0;
        while i < self.parked.len() {
            if rng.random_bool(0.3) {
                let a = self.parked.swap_remove(i);
                if let Err(pos) = self.active.binary_search(&a) {
                    self.active.insert(pos, a);
                }
                self.woken.push(a);
            } else {
                i += 1;
            }
        }
        if rng.random_bool(0.2) && !self.victims.is_empty() {
            let settle = *self.victims.iter().min().unwrap();
            self.victims.remove(&settle);
        }
    }
}

/// Drive `fast` and `naive` through the same fuzzed worklist evolution and
/// assert byte-identical `(fire, batch)` sequences. Returns every batch for
/// fairness checks.
fn differential_drive(
    fast: &mut dyn Adversary,
    naive: &mut dyn Adversary,
    k: usize,
    batches: usize,
    script_seed: u64,
) -> Vec<(u64, Vec<AgentId>)> {
    let mut rng = StdRng::seed_from_u64(script_seed);
    let mut wl = ScriptedWorklist::new(k, &mut rng);
    let mut out_fast: Vec<AgentId> = Vec::new();
    let mut out_naive: Vec<AgentId> = Vec::new();
    let mut produced = Vec::new();
    let mut now = 0u64;
    for round in 0..batches {
        let victims = wl.victims.clone();
        let victim_fn = |a: AgentId| victims.contains(&a);
        let view = StepView::new(k, now, &wl.active, &wl.woken, &victim_fn);
        let fire_fast = fast
            .next_step(&view, &mut out_fast)
            .unwrap_or_else(|e| panic!("{}: {e}", fast.name()));
        let fire_naive = naive
            .next_step(&view, &mut out_naive)
            .unwrap_or_else(|e| panic!("{}: {e}", naive.name()));
        assert_eq!(
            fire_fast,
            fire_naive,
            "{} vs {}: fire step diverged at batch {round} (step {now})",
            fast.name(),
            naive.name()
        );
        assert_eq!(
            out_fast,
            out_naive,
            "{} vs {}: batch diverged at step {fire_fast}",
            fast.name(),
            naive.name()
        );
        assert!(fire_fast >= now, "fired in the past");
        assert!(
            !out_fast.is_empty(),
            "{}: empty batch with {} active agents",
            fast.name(),
            wl.active.len()
        );
        for &a in &out_fast {
            assert!(
                wl.active.binary_search(&a).is_ok(),
                "{}: scheduled parked agent {a}",
                fast.name()
            );
        }
        produced.push((fire_fast, out_fast.clone()));
        now = fire_fast + 1;
        wl.evolve(&out_fast, &mut rng);
    }
    produced
}

#[test]
fn round_robin_matches_naive_reference() {
    for case in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(mix(&[0x44_1F, case]));
        let k = 1 + rng.random_range(0..40usize);
        differential_drive(
            &mut disp_sim::RoundRobinAdversary::new(k),
            &mut NaiveRoundRobin::new(k),
            k,
            120,
            mix(&[0x5C21, case]),
        );
    }
}

#[test]
fn random_subset_matches_naive_reference() {
    for case in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(mix(&[0x44_2F, case]));
        let k = 1 + rng.random_range(0..40usize);
        let prob = 0.02 + (rng.random_range(0..98u32) as f64) / 100.0;
        let seed = rng.next_u64();
        differential_drive(
            &mut disp_sim::RandomSubsetAdversary::new(prob, k, seed),
            &mut NaiveRandomSubset::new(prob, k, seed),
            k,
            120,
            mix(&[0x5C22, case]),
        );
    }
}

#[test]
fn lagging_matches_naive_reference() {
    for case in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(mix(&[0x44_3F, case]));
        let k = 1 + rng.random_range(0..40usize);
        let max_lag = 1 + rng.random_range(0..9u64);
        let seed = rng.next_u64();
        let batches = differential_drive(
            &mut disp_sim::LaggingAdversary::new(max_lag, k, seed),
            &mut NaiveLagging::new(max_lag, k, seed),
            k,
            150,
            mix(&[0x5C23, case]),
        );
        // The doc contract: initial periods come from 1..=max_lag. An agent
        // can only park after its first activation (only batch members
        // park in the script), so every agent's first activation fires
        // strictly before step max_lag.
        let mut first = vec![u64::MAX; k];
        for (fire, batch) in &batches {
            for a in batch {
                first[a.index()] = first[a.index()].min(*fire);
            }
        }
        for (i, &f) in first.iter().enumerate() {
            assert!(
                f < max_lag,
                "agent {i} first fired at {f}, outside the documented 1..={max_lag} period range"
            );
        }
    }
}

#[test]
fn targeted_matches_naive_reference() {
    for case in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(mix(&[0x44_4F, case]));
        let k = 1 + rng.random_range(0..40usize);
        let max_lag = 1 + rng.random_range(0..9u64);
        differential_drive(
            &mut disp_sim::TargetedAdversary::new(max_lag, k),
            &mut NaiveTargeted::new(max_lag, k),
            k,
            120,
            mix(&[0x5C24, case]),
        );
    }
}

#[test]
fn every_kind_is_fair_over_the_active_set() {
    // Across a long fuzzed run, every agent that spends the whole run
    // active must be scheduled at least once (fairness); agents parked the
    // whole time must never be.
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(mix(&[0xFA_1E, case]));
        let k = 2 + rng.random_range(0..24usize);
        let adversaries: Vec<Box<dyn Adversary>> = vec![
            Box::new(disp_sim::RoundRobinAdversary::new(k)),
            Box::new(disp_sim::RandomSubsetAdversary::new(0.3, k, 5)),
            Box::new(disp_sim::LaggingAdversary::new(4, k, 5)),
            Box::new(disp_sim::TargetedAdversary::new(4, k)),
        ];
        for mut adv in adversaries {
            // Static worklist: everyone active except one permanently
            // parked agent; half the agents are victims.
            let parked = AgentId(rng.random_range(0..k as u32));
            let active: Vec<AgentId> = (0..k as u32)
                .map(AgentId)
                .filter(|&a| a != parked)
                .collect();
            let victims = |a: AgentId| a.0.is_multiple_of(2);
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            let mut now = 0u64;
            for _ in 0..200 {
                let view = StepView::new(k, now, &active, &[], &victims);
                let fire = adv.next_step(&view, &mut out).expect("schedule");
                seen.extend(out.iter().copied());
                now = fire + 1;
            }
            assert!(
                !seen.contains(&parked),
                "{} scheduled a parked agent",
                adv.name()
            );
            assert_eq!(
                seen.len(),
                k - 1,
                "{} starved an active agent (case {case})",
                adv.name()
            );
        }
    }
}
