//! Reusable movement itineraries (round trips, oscillation trips).
//!
//! Dispersion algorithms send helper agents on short, pre-planned journeys:
//! "leave through port `p`, wait 6 rounds, come back", or the oscillating
//! settler trips of the SYNC algorithm (`s − a − s − b − s − c − s`). A
//! [`Trip`] describes such a journey as a sequence of [`TripStep`]s; a
//! [`TripProgress`] executes it one primitive per activation, remembering the
//! incoming ports needed to retrace its steps.

use crate::bits;
use crate::world::ActivationCtx;
use disp_graph::Port;

/// One primitive of a trip. Each primitive consumes one activation, except
/// that [`TripStep::Wait`] with `n` ticks consumes `n` activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripStep {
    /// Move out through the given port; the observed incoming port is pushed
    /// on the trip's pin stack so a later [`TripStep::Back`] can return.
    Out(Port),
    /// Move back through the most recently recorded incoming port (pops it).
    Back,
    /// Stay put for the given number of activations.
    Wait(u32),
}

/// A pre-planned journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trip {
    steps: Vec<TripStep>,
}

impl Trip {
    /// A trip from an explicit step list.
    pub fn new(steps: Vec<TripStep>) -> Self {
        Trip { steps }
    }

    /// The classic probe round trip: out through `port`, wait `wait`
    /// activations at the neighbor, come back.
    pub fn round_trip(port: Port, wait: u32) -> Self {
        if wait == 0 {
            Trip::new(vec![TripStep::Out(port), TripStep::Back])
        } else {
            Trip::new(vec![
                TripStep::Out(port),
                TripStep::Wait(wait),
                TripStep::Back,
            ])
        }
    }

    /// An oscillation trip over children: visit each of the given child ports
    /// in order, returning home in between (`s − a − s − b − s − …`). This is
    /// Case I of the paper's oscillation (Lemma 2): at most 3 children, at
    /// most 6 moves.
    pub fn oscillate_children(child_ports: &[Port]) -> Self {
        let mut steps = Vec::with_capacity(child_ports.len() * 2);
        for &p in child_ports {
            steps.push(TripStep::Out(p));
            steps.push(TripStep::Back);
        }
        Trip::new(steps)
    }

    /// An oscillation trip over siblings: go up to the parent through
    /// `parent_port`, visit each sibling (ports *at the parent*) with a
    /// round trip, and come home (`s − p − a − p − b − p − s`). This is Case
    /// II of the paper's oscillation (Lemma 2): at most 2 siblings, at most
    /// 6 moves.
    pub fn oscillate_siblings(parent_port: Port, sibling_ports_at_parent: &[Port]) -> Self {
        let mut steps = Vec::with_capacity(2 + sibling_ports_at_parent.len() * 2);
        steps.push(TripStep::Out(parent_port));
        for &p in sibling_ports_at_parent {
            steps.push(TripStep::Out(p));
            steps.push(TripStep::Back);
        }
        steps.push(TripStep::Back);
        Trip::new(steps)
    }

    /// The steps of the trip.
    pub fn steps(&self) -> &[TripStep] {
        &self.steps
    }

    /// Number of edge traversals the trip performs.
    pub fn num_moves(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, TripStep::Out(_) | TripStep::Back))
            .count()
    }

    /// Number of activations the trip consumes in total.
    pub fn num_activations(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                TripStep::Wait(n) => *n as usize,
                _ => 1,
            })
            .sum()
    }

    /// Whether the trip is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Completion status of a [`TripProgress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripStatus {
    /// More activations needed.
    InProgress,
    /// The trip has finished (the agent is back where the trip semantics
    /// leave it — for round trips and oscillations, its starting node).
    Completed,
}

/// Executes a [`Trip`] one primitive per activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripProgress {
    trip: Trip,
    idx: usize,
    wait_left: u32,
    pin_stack: Vec<Port>,
}

impl TripProgress {
    /// Start executing `trip`.
    pub fn new(trip: Trip) -> Self {
        TripProgress {
            trip,
            idx: 0,
            wait_left: 0,
            pin_stack: Vec::new(),
        }
    }

    /// The underlying trip.
    pub fn trip(&self) -> &Trip {
        &self.trip
    }

    /// Whether the trip has completed.
    pub fn is_complete(&self) -> bool {
        self.idx >= self.trip.steps.len()
    }

    /// Restart the trip from the beginning (used by oscillating settlers,
    /// which repeat their trip until told otherwise).
    pub fn restart(&mut self) {
        self.idx = 0;
        self.wait_left = 0;
        self.pin_stack.clear();
    }

    /// Replace the trip and restart (used when an oscillation group changes).
    pub fn replace(&mut self, trip: Trip) {
        self.trip = trip;
        self.restart();
    }

    /// Execute at most one primitive using this activation. Returns the new
    /// status.
    pub fn step(&mut self, ctx: &mut ActivationCtx<'_>) -> TripStatus {
        if self.is_complete() {
            return TripStatus::Completed;
        }
        match self.trip.steps[self.idx] {
            TripStep::Out(port) => {
                let pin = ctx.move_via(port);
                self.pin_stack.push(pin);
                self.idx += 1;
            }
            TripStep::Back => {
                let pin = self
                    .pin_stack
                    .pop()
                    .expect("Back step without a recorded incoming port");
                ctx.move_via(pin);
                self.idx += 1;
            }
            TripStep::Wait(n) => {
                if self.wait_left == 0 {
                    self.wait_left = n;
                }
                self.wait_left -= 1;
                if self.wait_left == 0 {
                    self.idx += 1;
                }
            }
        }
        if self.is_complete() {
            TripStatus::Completed
        } else {
            TripStatus::InProgress
        }
    }

    /// Persistent memory needed to carry this trip between activations:
    /// the stored ports plus a step cursor, a wait counter and the pin stack.
    /// Trips used by the paper's algorithms have O(1) steps, so this is
    /// `O(log Δ)` bits.
    pub fn memory_bits(&self, max_degree: usize) -> usize {
        let port_fields = self
            .trip
            .steps
            .iter()
            .filter(|s| matches!(s, TripStep::Out(_)))
            .count();
        let stack_capacity = port_fields.min(self.trip.steps.len());
        port_fields * bits::port_bits(max_degree)
            + stack_capacity * bits::port_bits(max_degree)
            + bits::counter_bits(self.trip.steps.len() as u64 + 1)
            + bits::counter_bits(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_shape() {
        let t = Trip::round_trip(Port(3), 6);
        assert_eq!(t.num_moves(), 2);
        assert_eq!(t.num_activations(), 8);
        assert_eq!(
            t.steps(),
            &[TripStep::Out(Port(3)), TripStep::Wait(6), TripStep::Back]
        );
        let t0 = Trip::round_trip(Port(3), 0);
        assert_eq!(t0.num_activations(), 2);
    }

    #[test]
    fn oscillation_trips_respect_lemma2_bounds() {
        // Case I: ≤ 3 children → ≤ 6 moves.
        let t = Trip::oscillate_children(&[Port(1), Port(4), Port(5)]);
        assert_eq!(t.num_moves(), 6);
        // Case II: ≤ 2 siblings → 2 + 4 = 6 moves.
        let t = Trip::oscillate_siblings(Port(2), &[Port(1), Port(3)]);
        assert_eq!(t.num_moves(), 6);
        // Smaller groups are shorter.
        assert_eq!(Trip::oscillate_children(&[Port(1)]).num_moves(), 2);
        assert_eq!(Trip::oscillate_siblings(Port(2), &[Port(1)]).num_moves(), 4);
    }

    #[test]
    fn empty_trip_is_immediately_complete() {
        let p = TripProgress::new(Trip::new(vec![]));
        assert!(p.is_complete());
        assert!(p.trip().is_empty());
    }

    #[test]
    fn memory_bits_are_logarithmic_in_degree() {
        let t = TripProgress::new(Trip::oscillate_children(&[Port(1), Port(2), Port(3)]));
        let small = t.memory_bits(8);
        let large = t.memory_bits(1 << 20);
        assert!(small < large);
        assert!(large < 200, "trip memory must stay O(log Δ): got {large}");
    }
}
