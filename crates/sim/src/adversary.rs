//! ASYNC activation adversaries.
//!
//! The asynchronous model lets an adversary decide when each agent performs
//! its CCM cycles, subject only to "every agent is activated infinitely
//! often". An [`Adversary`] produces, for each scheduler step, the ordered
//! list of agents to activate during that step.

use crate::ids::AgentId;
use disp_rng::prelude::*;

/// A source of ASYNC activation decisions.
pub trait Adversary {
    /// The agents to activate at scheduler step `step` (in activation order).
    /// Must eventually activate every agent (fairness); may return an empty
    /// list occasionally, but not forever.
    fn next_step(&mut self, k: usize, step: u64) -> Vec<AgentId>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl Adversary for Box<dyn Adversary> {
    fn next_step(&mut self, k: usize, step: u64) -> Vec<AgentId> {
        (**self).next_step(k, step)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A value-level description of an adversary, separated from its RNG seed.
///
/// The experiment harness stores `AdversaryKind`s in its grid and derives a
/// fresh seed per trial, so construction has to be a cheap, seedable,
/// data-driven operation — this is that constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryKind {
    /// [`RoundRobinAdversary`].
    RoundRobin,
    /// [`RandomSubsetAdversary`] with the given per-step activation
    /// probability.
    RandomSubset {
        /// Per-agent activation probability per step.
        prob: f64,
    },
    /// [`LaggingAdversary`] with the given maximum per-agent lag.
    Lagging {
        /// Largest per-agent activation period.
        max_lag: u64,
    },
}

impl AdversaryKind {
    /// Instantiate the adversary with the given seed (ignored by the
    /// deterministic round-robin adversary).
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::RoundRobin => Box::new(RoundRobinAdversary),
            AdversaryKind::RandomSubset { prob } => {
                Box::new(RandomSubsetAdversary::new(prob, seed))
            }
            AdversaryKind::Lagging { max_lag } => Box::new(LaggingAdversary::new(max_lag, seed)),
        }
    }
}

/// Activates every agent exactly once per step, rotating the starting agent,
/// so each step is an epoch. The most benign legal schedule; useful as a
/// best-case reference and for differential testing against SYNC runs.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinAdversary;

impl Adversary for RoundRobinAdversary {
    fn next_step(&mut self, k: usize, step: u64) -> Vec<AgentId> {
        let start = (step % k as u64) as usize;
        (0..k).map(|i| AgentId(((start + i) % k) as u32)).collect()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Activates each agent independently with probability `prob` per step, in a
/// random order. Models uncoordinated agents with similar speeds.
#[derive(Debug)]
pub struct RandomSubsetAdversary {
    prob: f64,
    rng: StdRng,
}

impl RandomSubsetAdversary {
    /// `prob` is the per-agent activation probability per step.
    pub fn new(prob: f64, seed: u64) -> Self {
        assert!(
            prob > 0.0 && prob <= 1.0,
            "activation probability must be in (0, 1]"
        );
        RandomSubsetAdversary {
            prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomSubsetAdversary {
    fn next_step(&mut self, k: usize, _step: u64) -> Vec<AgentId> {
        let mut chosen: Vec<AgentId> = (0..k as u32)
            .map(AgentId)
            .filter(|_| self.rng.random_bool(self.prob))
            .collect();
        if chosen.is_empty() {
            chosen.push(AgentId(self.rng.random_range(0..k) as u32));
        }
        chosen.shuffle(&mut self.rng);
        chosen
    }

    fn name(&self) -> &'static str {
        "random-subset"
    }
}

/// Each agent has its own (randomly drawn) activation period in
/// `1..=max_lag`; the adversary re-draws the period after every activation.
/// Models strongly heterogeneous agent speeds — some agents lag behind
/// others by up to `max_lag` steps, stretching epochs accordingly.
#[derive(Debug)]
pub struct LaggingAdversary {
    max_lag: u64,
    next_due: Vec<u64>,
    rng: StdRng,
}

impl LaggingAdversary {
    /// `max_lag ≥ 1` is the largest number of steps an agent can sleep
    /// between consecutive activations.
    pub fn new(max_lag: u64, seed: u64) -> Self {
        assert!(max_lag >= 1, "max_lag must be at least 1");
        LaggingAdversary {
            max_lag,
            next_due: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for LaggingAdversary {
    fn next_step(&mut self, k: usize, step: u64) -> Vec<AgentId> {
        if self.next_due.len() != k {
            self.next_due = (0..k)
                .map(|_| self.rng.random_range(0..self.max_lag))
                .collect();
        }
        let mut due: Vec<AgentId> = (0..k)
            .filter(|&i| self.next_due[i] <= step)
            .map(|i| AgentId(i as u32))
            .collect();
        for a in &due {
            self.next_due[a.index()] = step + 1 + self.rng.random_range(0..self.max_lag);
        }
        due.shuffle(&mut self.rng);
        due
    }

    fn name(&self) -> &'static str {
        "lagging"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn activates_everyone_eventually(adv: &mut dyn Adversary, k: usize, horizon: u64) {
        let mut seen = HashSet::new();
        for step in 0..horizon {
            for a in adv.next_step(k, step) {
                assert!(a.index() < k, "{} produced out-of-range agent", adv.name());
                seen.insert(a);
            }
        }
        assert_eq!(seen.len(), k, "{} starved some agent", adv.name());
    }

    #[test]
    fn round_robin_covers_everyone_each_step() {
        let mut adv = RoundRobinAdversary;
        let acts = adv.next_step(5, 3);
        assert_eq!(acts.len(), 5);
        let set: HashSet<_> = acts.iter().copied().collect();
        assert_eq!(set.len(), 5);
        activates_everyone_eventually(&mut adv, 7, 3);
    }

    #[test]
    fn round_robin_rotates_start() {
        let mut adv = RoundRobinAdversary;
        assert_eq!(adv.next_step(3, 0)[0], AgentId(0));
        assert_eq!(adv.next_step(3, 1)[0], AgentId(1));
        assert_eq!(adv.next_step(3, 2)[0], AgentId(2));
        assert_eq!(adv.next_step(3, 3)[0], AgentId(0));
    }

    #[test]
    fn random_subset_is_fair_and_nonempty() {
        let mut adv = RandomSubsetAdversary::new(0.3, 42);
        for step in 0..50 {
            assert!(!adv.next_step(6, step).is_empty());
        }
        activates_everyone_eventually(&mut RandomSubsetAdversary::new(0.3, 43), 6, 200);
    }

    #[test]
    fn random_subset_is_deterministic_per_seed() {
        let mut a = RandomSubsetAdversary::new(0.5, 7);
        let mut b = RandomSubsetAdversary::new(0.5, 7);
        for step in 0..20 {
            assert_eq!(a.next_step(8, step), b.next_step(8, step));
        }
    }

    #[test]
    fn lagging_adversary_is_fair_within_max_lag() {
        let mut adv = LaggingAdversary::new(5, 11);
        // Every agent must be activated at least once in any window of
        // max_lag + 1 consecutive steps after warm-up.
        let k = 4;
        let mut last_seen = vec![0u64; k];
        for step in 0..200u64 {
            for a in adv.next_step(k, step) {
                last_seen[a.index()] = step;
            }
            if step > 10 {
                for (i, &seen) in last_seen.iter().enumerate() {
                    assert!(
                        step - seen <= 6,
                        "agent {i} starved for more than max_lag+1 steps"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        let _ = RandomSubsetAdversary::new(0.0, 1);
    }

    #[test]
    fn kind_builds_matching_seeded_adversaries() {
        let kinds = [
            AdversaryKind::RoundRobin,
            AdversaryKind::RandomSubset { prob: 0.4 },
            AdversaryKind::Lagging { max_lag: 3 },
        ];
        for kind in kinds {
            let mut a = kind.build(77);
            let mut b = kind.build(77);
            for step in 0..30 {
                assert_eq!(a.next_step(5, step), b.next_step(5, step), "{kind:?}");
            }
            activates_everyone_eventually(&mut kind.build(78), 5, 300);
        }
        assert_eq!(AdversaryKind::RoundRobin.build(0).name(), "round-robin");
    }
}
