//! Event-driven ASYNC activation adversaries.
//!
//! The asynchronous model lets an adversary decide when each agent performs
//! its CCM cycles, subject only to "every agent is activated infinitely
//! often". An [`Adversary`] produces, per scheduler step, the batch of
//! agents to activate — **event-driven**: it writes into a caller-owned
//! reusable buffer (no per-step allocation), generates only the *due*
//! agents, and may jump over empty steps entirely (discrete-event style),
//! returning the step its batch fires at.
//!
//! ## Worklist integration
//!
//! Adversaries schedule over the world's **active** worklist (the
//! [`StepView`] handed to [`Adversary::next_step`]): agents the protocol has
//! parked are not scheduled at all — the runner credits their activations in
//! bulk at epoch boundaries (see [`crate::clock::Clock`]). The model reading
//! is that the adversary, being adversarial, procrastinates provably-no-op
//! agents to the fairness limit: a parked agent is activated exactly once
//! per epoch, at the boundary. This is what makes ASYNC per-step cost
//! O(active ·&nbsp;log) instead of O(k), and million-agent ASYNC campaigns
//! tractable.
//!
//! ## Determinism contract (stream migration, PR 4)
//!
//! Every random adversary derives its per-step randomness from fixed
//! sub-seed tags via [`mix`], so a step's schedule is a pure function of
//! `(seed, step, active worklist)` — no shared sequential stream whose
//! shape depends on earlier steps' content. **These streams replace the
//! pre-PR-4 sequential streams**: recorded ASYNC trial outcomes from older
//! campaigns are not reproducible and must be re-run (the same applies to
//! the PR 2 placement-stream migration).
//!
//! Each event-driven adversary has a retained naive O(k)-per-step
//! counterpart in [`reference`](mod@reference), and the differential suite
//! (`crates/sim/tests/adversary_differential.rs`) proves both replay
//! byte-identical `(fire step, batch)` sequences over fuzzed grids.

use crate::ids::AgentId;
use disp_rng::prelude::*;

/// Sub-seed tags for the adversary streams (part of the reproducibility
/// contract, like the scenario sub-seed tags in `disp-core`).
const SUB_SUBSET: u64 = 0xAD5E_0001;
const SUB_FALLBACK: u64 = 0xAD5E_0002;
const SUB_PERIOD: u64 = 0xAD5E_0003;
const SUB_ORDER: u64 = 0xAD5E_0004;

/// The adversary's read-only window onto the execution at one scheduling
/// decision. Oblivious adversaries only read `step` and `active`; adaptive
/// ones ([`TargetedAdversary`]) also consult the protocol-designated victim
/// predicate.
pub struct StepView<'a> {
    /// Total number of agents (fixed for the whole run).
    pub k: usize,
    /// The earliest step the returned batch may fire at (= completed steps).
    pub step: u64,
    /// Currently active (schedulable) agents, sorted ascending by id.
    pub active: &'a [AgentId],
    /// Wake transitions since the previous `next_step` call, in occurrence
    /// order (an agent may appear more than once if it was woken, parked and
    /// woken again within one batch). Timer-based adversaries re-enroll
    /// these agents; stateless ones ignore the list.
    pub woken: &'a [AgentId],
    /// Whether an agent belongs to the protocol-designated victim set (for
    /// the paper's dispersion protocols: the unsettled agents — the DFS
    /// driver, its cohort and the probers, i.e. exactly the agents whose
    /// delay stalls progress).
    pub victims: &'a dyn Fn(AgentId) -> bool,
}

impl<'a> StepView<'a> {
    /// Assemble a view (the runner's job; tests build them directly).
    pub fn new(
        k: usize,
        step: u64,
        active: &'a [AgentId],
        woken: &'a [AgentId],
        victims: &'a dyn Fn(AgentId) -> bool,
    ) -> StepView<'a> {
        debug_assert!(active.windows(2).all(|w| w[0] < w[1]), "active not sorted");
        StepView {
            k,
            step,
            active,
            woken,
            victims,
        }
    }

    /// Whether `agent` is on the active worklist (binary search).
    #[inline]
    pub fn is_active(&self, agent: AgentId) -> bool {
        self.active.binary_search(&agent).is_ok()
    }
}

/// Why an adversary refused to schedule — a buggy adversary fails its trial
/// with a typed error instead of poisoning the whole campaign process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryError {
    /// The runner's agent count does not match the count the adversary was
    /// built for. Adversaries fix `k` at construction (their period/stream
    /// state is sized for it); a mid-run change is rejected, never silently
    /// re-rolled.
    AgentCountChanged {
        /// The agent count at construction.
        expected: usize,
        /// The agent count the runner presented.
        got: usize,
    },
    /// The adversary could not produce a batch although active agents exist
    /// (an internal scheduling invariant broke).
    Stalled {
        /// The step at which scheduling gave up.
        step: u64,
    },
}

impl std::fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdversaryError::AgentCountChanged { expected, got } => write!(
                f,
                "adversary was built for k={expected} agents but was asked to schedule k={got}"
            ),
            AdversaryError::Stalled { step } => {
                write!(f, "adversary failed to produce a batch at step {step}")
            }
        }
    }
}

impl std::error::Error for AdversaryError {}

/// A source of ASYNC activation decisions.
pub trait Adversary {
    /// Write the next batch of activations into `out` (cleared first), in
    /// activation order, and return the step the batch fires at (≥
    /// `view.step`; steps in between are empty and are skipped wholesale).
    ///
    /// Contract: only active agents appear in the batch, and the batch is
    /// non-empty whenever `view.active` is non-empty (fairness requires
    /// activity); the runner treats violations as a failed trial. Agents in
    /// the batch may have been parked by *earlier batch members* by the time
    /// their turn comes — the runner skips those without executing them.
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

impl Adversary for Box<dyn Adversary> {
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError> {
        (**self).next_step(view, out)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A value-level description of an adversary, separated from its RNG seed
/// and agent count. The experiment harness stores `AdversaryKind`s in its
/// grid and derives a fresh seed per trial, so construction has to be a
/// cheap, seedable, data-driven operation — this is that constructor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryKind {
    /// [`RoundRobinAdversary`].
    RoundRobin,
    /// [`RandomSubsetAdversary`] with the given per-step activation
    /// probability.
    RandomSubset {
        /// Per-agent activation probability per step.
        prob: f64,
    },
    /// [`LaggingAdversary`] with the given maximum per-agent lag.
    Lagging {
        /// Largest per-agent activation period.
        max_lag: u64,
    },
    /// [`TargetedAdversary`] with the given victim starvation lag.
    Targeted {
        /// Steps between consecutive victim activations.
        max_lag: u64,
    },
}

impl AdversaryKind {
    /// Instantiate the adversary for a `k`-agent run with the given seed
    /// (the seed is ignored by the deterministic round-robin and targeted
    /// adversaries).
    pub fn build(self, k: usize, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::RoundRobin => Box::new(RoundRobinAdversary::new(k)),
            AdversaryKind::RandomSubset { prob } => {
                Box::new(RandomSubsetAdversary::new(prob, k, seed))
            }
            AdversaryKind::Lagging { max_lag } => Box::new(LaggingAdversary::new(max_lag, k, seed)),
            AdversaryKind::Targeted { max_lag } => Box::new(TargetedAdversary::new(max_lag, k)),
        }
    }
}

fn check_k(expected: usize, view: &StepView<'_>) -> Result<(), AdversaryError> {
    if view.k != expected {
        return Err(AdversaryError::AgentCountChanged {
            expected,
            got: view.k,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Round-robin
// ---------------------------------------------------------------------------

/// Activates every active agent once per step, rotating the starting id with
/// the step number, so each step is an epoch. The most benign legal
/// schedule; useful as a best-case reference and for differential testing
/// against SYNC runs. Batch generation is pure rotation arithmetic on the
/// sorted active worklist — O(active) per step, never O(k).
#[derive(Debug, Clone)]
pub struct RoundRobinAdversary {
    k: usize,
}

impl RoundRobinAdversary {
    /// A round-robin adversary for `k` agents.
    pub fn new(k: usize) -> Self {
        RoundRobinAdversary { k }
    }
}

impl Adversary for RoundRobinAdversary {
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError> {
        check_k(self.k, view)?;
        out.clear();
        let start = AgentId((view.step % self.k.max(1) as u64) as u32);
        let split = view.active.partition_point(|&a| a < start);
        out.extend_from_slice(&view.active[split..]);
        out.extend_from_slice(&view.active[..split]);
        Ok(view.step)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

// ---------------------------------------------------------------------------
// Random subset (geometric skip-sampling)
// ---------------------------------------------------------------------------

/// Walk the sorted active list choosing each position independently with
/// probability `prob`, via geometric gap (skip) sampling: one uniform draw
/// per *chosen* agent instead of one Bernoulli draw per agent. The chosen
/// set is identical in distribution to per-agent Bernoulli sampling; the
/// construction (and therefore the exact stream) is the schedule's
/// definition.
fn sample_gaps(rng: &mut StdRng, prob: f64, active: &[AgentId], out: &mut Vec<AgentId>) {
    if prob >= 1.0 {
        out.extend_from_slice(active);
        return;
    }
    let denom = (1.0 - prob).ln();
    if denom == 0.0 {
        // prob below ~1.1e-16: 1 − prob rounds to 1.0 and the gap formula
        // would degenerate to −inf (which casts to gap 0 — everyone, the
        // exact opposite of Bernoulli(prob)). Such a step selects no one;
        // the caller's fallback keeps the schedule fair.
        return;
    }
    let mut i = 0usize;
    while i < active.len() {
        let u = rng.random_f64();
        let gap = ((1.0 - u).ln() / denom).floor();
        if gap >= (active.len() - i) as f64 {
            break;
        }
        i += gap as usize;
        out.push(active[i]);
        i += 1;
    }
}

/// Activates each active agent independently with probability `prob` per
/// step, in a random order. Models uncoordinated agents with similar
/// speeds. Event-driven: per-step derived sub-streams (the schedule of step
/// `s` is a pure function of `(seed, s, active worklist)`), geometric
/// skip-sampling in O(chosen), and a fallback draw — on its **own** derived
/// sub-stream, so an empty step never shifts any other step's randomness —
/// that activates one uniformly random active agent when the sample comes
/// up empty.
#[derive(Debug)]
pub struct RandomSubsetAdversary {
    prob: f64,
    seed: u64,
    k: usize,
}

impl RandomSubsetAdversary {
    /// `prob` is the per-agent activation probability per step.
    pub fn new(prob: f64, k: usize, seed: u64) -> Self {
        assert!(
            prob > 0.0 && prob <= 1.0,
            "activation probability must be in (0, 1]"
        );
        RandomSubsetAdversary { prob, seed, k }
    }
}

impl Adversary for RandomSubsetAdversary {
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError> {
        check_k(self.k, view)?;
        out.clear();
        let mut rng = StdRng::seed_from_u64(mix(&[self.seed, SUB_SUBSET, view.step]));
        sample_gaps(&mut rng, self.prob, view.active, out);
        if out.is_empty() && !view.active.is_empty() {
            let mut fb = StdRng::seed_from_u64(mix(&[self.seed, SUB_FALLBACK, view.step]));
            out.push(view.active[fb.random_range(0..view.active.len())]);
        }
        out.shuffle(&mut rng);
        Ok(view.step)
    }

    fn name(&self) -> &'static str {
        "random-subset"
    }
}

// ---------------------------------------------------------------------------
// Lagging (calendar-queue timer wheel)
// ---------------------------------------------------------------------------

/// The `j`-th activation period of `agent`: a stateless pure function of
/// the seed, drawn uniformly from the documented `1..=max_lag` range
/// (Lemire reduction on a mixed word — one derivation per draw, no shared
/// sequential stream).
fn period_of(seed: u64, max_lag: u64, agent: u32, draw: u64) -> u64 {
    let v = mix(&[seed, SUB_PERIOD, agent as u64, draw]);
    1 + ((v as u128 * max_lag as u128) >> 64) as u64
}

const UNSCHEDULED: u64 = u64::MAX;

/// Each agent has its own activation period, redrawn from `1..=max_lag`
/// after every activation (and drawn from the same documented range at
/// construction — the first activation of every agent happens within the
/// first `max_lag` steps). Models strongly heterogeneous agent speeds —
/// some agents lag behind others by up to `max_lag` steps, stretching
/// epochs accordingly.
///
/// Event-driven implementation: a timer wheel of `max_lag + 1` buckets
/// keyed by due step. One `next_step` call costs O(due + woken + wheel
/// scan) — independent of `k` — and steps with nothing due are skipped
/// wholesale (the returned fire step jumps), which is what lets the
/// `n = 10^6` `async-lag` trials finish in seconds. Parked agents leave the
/// schedule lazily (their entry is dropped when its bucket comes up) and
/// re-enroll through [`StepView::woken`] with a fresh period; an agent's
/// period draw counter survives park/wake, so the whole schedule is
/// deterministic in `(seed, execution history)`.
#[derive(Debug)]
pub struct LaggingAdversary {
    max_lag: u64,
    seed: u64,
    k: usize,
    /// Next scheduled due step per agent ([`UNSCHEDULED`] when parked or
    /// already consumed); doubles as the validity stamp for lazy deletion.
    next_due: Vec<u64>,
    /// Period draws consumed per agent (the stateless stream position).
    draws: Vec<u64>,
    /// `wheel[due % (max_lag + 1)]` holds the agents scheduled for `due`.
    wheel: Vec<Vec<u32>>,
    /// The next step the bucket scan starts from; all valid entries have
    /// `due ∈ [cursor, cursor + max_lag]`.
    cursor: u64,
    /// Scratch for draining a bucket without fighting the borrow checker.
    scratch: Vec<u32>,
}

impl LaggingAdversary {
    /// `max_lag ≥ 1` is the largest number of steps an agent can sleep
    /// between consecutive activations. All `k` initial periods are drawn at
    /// construction from `1..=max_lag` (agent `i`'s first activation is at
    /// step `period - 1`).
    pub fn new(max_lag: u64, k: usize, seed: u64) -> Self {
        assert!(max_lag >= 1, "max_lag must be at least 1");
        let mut adv = LaggingAdversary {
            max_lag,
            seed,
            k,
            next_due: vec![UNSCHEDULED; k],
            draws: vec![0; k],
            wheel: vec![Vec::new(); (max_lag + 1) as usize],
            cursor: 0,
            scratch: Vec::new(),
        };
        for a in 0..k as u32 {
            let p = adv.draw_period(a);
            adv.schedule(a, p - 1);
        }
        adv
    }

    fn draw_period(&mut self, agent: u32) -> u64 {
        let d = self.draws[agent as usize];
        self.draws[agent as usize] += 1;
        period_of(self.seed, self.max_lag, agent, d)
    }

    fn schedule(&mut self, agent: u32, due: u64) {
        self.next_due[agent as usize] = due;
        let ring = self.wheel.len() as u64;
        self.wheel[(due % ring) as usize].push(agent);
    }
}

impl Adversary for LaggingAdversary {
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError> {
        check_k(self.k, view)?;
        // Re-enroll woken agents: an agent woken by the batch at step
        // `view.step - 1` next activates a fresh period later.
        for &a in view.woken {
            let p = self.draw_period(a.0);
            self.schedule(a.0, view.step.max(1) - 1 + p);
        }
        self.cursor = self.cursor.max(view.step);
        out.clear();
        let ring = self.wheel.len() as u64;
        let mut scanned = 0u64;
        loop {
            // Every active agent holds a valid entry within the ring, so a
            // longer fruitless scan means the invariant broke.
            if scanned > ring {
                return Err(AdversaryError::Stalled { step: self.cursor });
            }
            let s = self.cursor;
            let idx = (s % ring) as usize;
            std::mem::swap(&mut self.wheel[idx], &mut self.scratch);
            for i in 0..self.scratch.len() {
                let a = self.scratch[i];
                // Lazy deletion: only entries whose stamp still matches are
                // live (consuming resets the stamp, which also de-dups).
                if self.next_due[a as usize] == s {
                    self.next_due[a as usize] = UNSCHEDULED;
                    if view.is_active(AgentId(a)) {
                        out.push(AgentId(a));
                    }
                }
            }
            self.scratch.clear();
            if out.is_empty() {
                self.cursor += 1;
                scanned += 1;
                continue;
            }
            out.sort_unstable();
            for &fired in out.iter() {
                let p = self.draw_period(fired.0);
                self.schedule(fired.0, s + p);
            }
            let mut order = StdRng::seed_from_u64(mix(&[self.seed, SUB_ORDER, s]));
            out.shuffle(&mut order);
            self.cursor = s + 1;
            return Ok(s);
        }
    }

    fn name(&self) -> &'static str {
        "lagging"
    }
}

// ---------------------------------------------------------------------------
// Targeted (adaptive starvation)
// ---------------------------------------------------------------------------

/// The paper's lower-bound-style *adaptive* adversary: it starves the
/// protocol-designated victim set — the agents whose delay actually stalls
/// progress (for the dispersion protocols: the unsettled agents, i.e. the
/// current DFS driver, its cohort and the probers) — to the fairness limit,
/// activating each victim only every `max_lag`-th step, while activating
/// every non-victim active agent promptly at every step (wasting the
/// protocol's time on agents that have nothing to do).
///
/// Deterministic (no RNG); the victim set is re-evaluated every step
/// through the [`StepView::victims`] predicate, so the adversary adapts as
/// agents settle. Steps on which nothing is due are skipped wholesale.
#[derive(Debug, Clone)]
pub struct TargetedAdversary {
    max_lag: u64,
    k: usize,
}

impl TargetedAdversary {
    /// `max_lag ≥ 1` is the victim activation interval (victims fire at
    /// steps `max_lag − 1, 2·max_lag − 1, …`; `max_lag = 1` degenerates to
    /// activating everyone every step).
    pub fn new(max_lag: u64, k: usize) -> Self {
        assert!(max_lag >= 1, "max_lag must be at least 1");
        TargetedAdversary { max_lag, k }
    }
}

impl Adversary for TargetedAdversary {
    fn next_step(
        &mut self,
        view: &StepView<'_>,
        out: &mut Vec<AgentId>,
    ) -> Result<u64, AdversaryError> {
        check_k(self.k, view)?;
        out.clear();
        let ml = self.max_lag;
        let victim_turn = |s: u64| (s + 1).is_multiple_of(ml);
        let mut s = view.step;
        for &a in view.active {
            if !(view.victims)(a) || victim_turn(s) {
                out.push(a);
            }
        }
        if out.is_empty() && !view.active.is_empty() {
            // Every active agent is a victim: jump to the next victim turn.
            s = view.step + (ml - 1 - view.step % ml);
            debug_assert!(victim_turn(s) && s >= view.step);
            out.extend_from_slice(view.active);
        }
        Ok(s)
    }

    fn name(&self) -> &'static str {
        "targeted"
    }
}

// ---------------------------------------------------------------------------
// Naive references
// ---------------------------------------------------------------------------

/// Naive O(k)-per-step counterparts of the event-driven adversaries,
/// retained as the oracles of the differential suite
/// (`crates/sim/tests/adversary_differential.rs`): same declared schedule
/// semantics and sub-seed streams, implemented by brute force — full
/// per-step scans over all `k` agents, no timer wheel, no buffer tricks,
/// stepping through empty steps one by one. Never use these in campaigns.
pub mod reference {
    use super::*;

    /// Brute-force [`RoundRobinAdversary`]: walk the full rotation and
    /// filter by activity.
    #[derive(Debug, Clone)]
    pub struct NaiveRoundRobin {
        k: usize,
    }

    impl NaiveRoundRobin {
        /// A naive round-robin reference for `k` agents.
        pub fn new(k: usize) -> Self {
            NaiveRoundRobin { k }
        }
    }

    impl Adversary for NaiveRoundRobin {
        fn next_step(
            &mut self,
            view: &StepView<'_>,
            out: &mut Vec<AgentId>,
        ) -> Result<u64, AdversaryError> {
            check_k(self.k, view)?;
            out.clear();
            let start = (view.step % self.k.max(1) as u64) as usize;
            for i in 0..self.k {
                let a = AgentId(((start + i) % self.k) as u32);
                if view.is_active(a) {
                    out.push(a);
                }
            }
            Ok(view.step)
        }

        fn name(&self) -> &'static str {
            "naive-round-robin"
        }
    }

    /// Brute-force [`RandomSubsetAdversary`]: rebuilds the active list by
    /// scanning every agent, then applies the same per-step streams.
    #[derive(Debug)]
    pub struct NaiveRandomSubset {
        prob: f64,
        seed: u64,
        k: usize,
    }

    impl NaiveRandomSubset {
        /// A naive random-subset reference.
        pub fn new(prob: f64, k: usize, seed: u64) -> Self {
            assert!(prob > 0.0 && prob <= 1.0);
            NaiveRandomSubset { prob, seed, k }
        }
    }

    impl Adversary for NaiveRandomSubset {
        fn next_step(
            &mut self,
            view: &StepView<'_>,
            out: &mut Vec<AgentId>,
        ) -> Result<u64, AdversaryError> {
            check_k(self.k, view)?;
            out.clear();
            let active: Vec<AgentId> = (0..self.k as u32)
                .map(AgentId)
                .filter(|&a| view.is_active(a))
                .collect();
            let mut rng = StdRng::seed_from_u64(mix(&[self.seed, SUB_SUBSET, view.step]));
            sample_gaps(&mut rng, self.prob, &active, out);
            if out.is_empty() && !active.is_empty() {
                let mut fb = StdRng::seed_from_u64(mix(&[self.seed, SUB_FALLBACK, view.step]));
                out.push(active[fb.random_range(0..active.len())]);
            }
            out.shuffle(&mut rng);
            Ok(view.step)
        }

        fn name(&self) -> &'static str {
            "naive-random-subset"
        }
    }

    /// Brute-force [`LaggingAdversary`]: a flat `next_due` array scanned in
    /// full at every step (including the empty ones), with the same
    /// stateless period stream and wake handling.
    #[derive(Debug)]
    pub struct NaiveLagging {
        max_lag: u64,
        seed: u64,
        k: usize,
        next_due: Vec<u64>,
        draws: Vec<u64>,
    }

    impl NaiveLagging {
        /// A naive lagging reference (periods drawn at construction from
        /// `1..=max_lag`, like the event-driven adversary).
        pub fn new(max_lag: u64, k: usize, seed: u64) -> Self {
            assert!(max_lag >= 1);
            let mut adv = NaiveLagging {
                max_lag,
                seed,
                k,
                next_due: vec![UNSCHEDULED; k],
                draws: vec![0; k],
            };
            for a in 0..k as u32 {
                let p = adv.draw(a);
                adv.next_due[a as usize] = p - 1;
            }
            adv
        }

        fn draw(&mut self, agent: u32) -> u64 {
            let d = self.draws[agent as usize];
            self.draws[agent as usize] += 1;
            period_of(self.seed, self.max_lag, agent, d)
        }
    }

    impl Adversary for NaiveLagging {
        fn next_step(
            &mut self,
            view: &StepView<'_>,
            out: &mut Vec<AgentId>,
        ) -> Result<u64, AdversaryError> {
            check_k(self.k, view)?;
            for &a in view.woken {
                let p = self.draw(a.0);
                self.next_due[a.index()] = view.step.max(1) - 1 + p;
            }
            out.clear();
            let mut s = view.step;
            loop {
                if s > view.step + 2 * self.max_lag + 2 {
                    return Err(AdversaryError::Stalled { step: s });
                }
                for a in 0..self.k as u32 {
                    if self.next_due[a as usize] == s {
                        self.next_due[a as usize] = UNSCHEDULED;
                        if view.is_active(AgentId(a)) {
                            out.push(AgentId(a));
                        }
                    }
                }
                if out.is_empty() {
                    s += 1;
                    continue;
                }
                for &fired in out.iter() {
                    let p = self.draw(fired.0);
                    self.next_due[fired.index()] = s + p;
                }
                let mut order = StdRng::seed_from_u64(mix(&[self.seed, SUB_ORDER, s]));
                out.shuffle(&mut order);
                return Ok(s);
            }
        }

        fn name(&self) -> &'static str {
            "naive-lagging"
        }
    }

    /// Brute-force [`TargetedAdversary`]: full per-step scans, one step at
    /// a time.
    #[derive(Debug, Clone)]
    pub struct NaiveTargeted {
        max_lag: u64,
        k: usize,
    }

    impl NaiveTargeted {
        /// A naive targeted reference.
        pub fn new(max_lag: u64, k: usize) -> Self {
            assert!(max_lag >= 1);
            NaiveTargeted { max_lag, k }
        }
    }

    impl Adversary for NaiveTargeted {
        fn next_step(
            &mut self,
            view: &StepView<'_>,
            out: &mut Vec<AgentId>,
        ) -> Result<u64, AdversaryError> {
            check_k(self.k, view)?;
            out.clear();
            let mut s = view.step;
            loop {
                if s > view.step + self.max_lag {
                    return Err(AdversaryError::Stalled { step: s });
                }
                let victim_turn = (s + 1).is_multiple_of(self.max_lag);
                for a in 0..self.k as u32 {
                    let a = AgentId(a);
                    if view.is_active(a) && (!(view.victims)(a) || victim_turn) {
                        out.push(a);
                    }
                }
                if out.is_empty() && !view.active.is_empty() {
                    s += 1;
                    continue;
                }
                return Ok(s);
            }
        }

        fn name(&self) -> &'static str {
            "naive-targeted"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// A little scripted worklist for driving adversaries without a world.
    struct Model {
        active: Vec<AgentId>,
        woken: Vec<AgentId>,
        victims: HashSet<AgentId>,
    }

    impl Model {
        fn all_active(k: usize) -> Model {
            Model {
                active: (0..k as u32).map(AgentId).collect(),
                woken: Vec::new(),
                victims: HashSet::new(),
            }
        }

        fn step<'a>(
            &'a self,
            k: usize,
            step: u64,
            victims: &'a dyn Fn(AgentId) -> bool,
        ) -> StepView<'a> {
            StepView::new(k, step, &self.active, &self.woken, victims)
        }
    }

    fn drive(adv: &mut dyn Adversary, k: usize, steps: u64) -> Vec<(u64, Vec<AgentId>)> {
        let model = Model::all_active(k);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::new();
        let mut batches = Vec::new();
        let mut now = 0u64;
        while now < steps {
            let view = model.step(k, now, &not_victim);
            let fire = adv.next_step(&view, &mut out).expect("schedule");
            assert!(fire >= now, "{} went backwards", adv.name());
            batches.push((fire, out.clone()));
            now = fire + 1;
        }
        batches
    }

    fn activates_everyone_eventually(adv: &mut dyn Adversary, k: usize, horizon: u64) {
        let mut seen = HashSet::new();
        for (_, batch) in drive(adv, k, horizon) {
            for a in batch {
                assert!(a.index() < k, "{} produced out-of-range agent", adv.name());
                seen.insert(a);
            }
        }
        assert_eq!(seen.len(), k, "{} starved some agent", adv.name());
    }

    #[test]
    fn round_robin_covers_everyone_each_step() {
        let mut adv = RoundRobinAdversary::new(5);
        let model = Model::all_active(5);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::new();
        adv.next_step(&model.step(5, 3, &not_victim), &mut out)
            .unwrap();
        assert_eq!(out.len(), 5);
        let set: HashSet<_> = out.iter().copied().collect();
        assert_eq!(set.len(), 5);
        activates_everyone_eventually(&mut RoundRobinAdversary::new(7), 7, 3);
    }

    #[test]
    fn round_robin_rotates_start_over_the_active_list() {
        let mut adv = RoundRobinAdversary::new(3);
        let model = Model::all_active(3);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::new();
        for (step, first) in [(0u64, 0u32), (1, 1), (2, 2), (3, 0)] {
            adv.next_step(&model.step(3, step, &not_victim), &mut out)
                .unwrap();
            assert_eq!(out[0], AgentId(first));
        }
        // Rotation splits around the start id even when some agents are
        // parked.
        let model = Model {
            active: vec![AgentId(0), AgentId(2), AgentId(4)],
            woken: Vec::new(),
            victims: HashSet::new(),
        };
        let mut adv = RoundRobinAdversary::new(5);
        adv.next_step(&model.step(5, 3, &not_victim), &mut out)
            .unwrap();
        assert_eq!(out, vec![AgentId(4), AgentId(0), AgentId(2)]);
    }

    #[test]
    fn random_subset_is_fair_and_nonempty() {
        for (_, batch) in drive(&mut RandomSubsetAdversary::new(0.3, 6, 42), 6, 50) {
            assert!(!batch.is_empty());
        }
        activates_everyone_eventually(&mut RandomSubsetAdversary::new(0.3, 6, 43), 6, 200);
    }

    #[test]
    fn random_subset_steps_are_pure_functions_of_seed_and_step() {
        // Same (seed, step) → same batch, regardless of what other steps
        // were generated in between (the pre-PR-4 sequential stream made
        // step schedules depend on earlier steps' content).
        let model = Model::all_active(8);
        let not_victim = |_: AgentId| false;
        let mut a = RandomSubsetAdversary::new(0.5, 8, 7);
        let mut b = RandomSubsetAdversary::new(0.5, 8, 7);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        // `a` visits steps 0..20 in order; `b` visits only the even ones.
        for step in 0..20u64 {
            a.next_step(&model.step(8, step, &not_victim), &mut out_a)
                .unwrap();
            if step % 2 == 0 {
                b.next_step(&model.step(8, step, &not_victim), &mut out_b)
                    .unwrap();
                assert_eq!(out_a, out_b, "step {step}");
            }
        }
    }

    #[test]
    fn lagging_initial_periods_are_in_the_documented_range() {
        // Doc contract: periods come from 1..=max_lag, so every agent's
        // first activation happens within the first max_lag steps.
        for seed in 0..20u64 {
            let k = 9;
            let max_lag = 5;
            let mut adv = LaggingAdversary::new(max_lag, k, seed);
            let mut first_seen = vec![u64::MAX; k];
            for (fire, batch) in drive(&mut adv, k, max_lag) {
                for a in batch {
                    first_seen[a.index()] = first_seen[a.index()].min(fire);
                }
            }
            for (i, &s) in first_seen.iter().enumerate() {
                assert!(
                    s < max_lag,
                    "agent {i} first activated at step {s} ≥ max_lag {max_lag} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn lagging_adversary_is_fair_within_max_lag() {
        let k = 4;
        let mut adv = LaggingAdversary::new(5, k, 11);
        let mut last_seen = vec![0u64; k];
        for (fire, batch) in drive(&mut adv, k, 200) {
            for a in batch {
                last_seen[a.index()] = fire;
            }
            if fire > 10 {
                for (i, &seen) in last_seen.iter().enumerate() {
                    assert!(
                        fire - seen <= 5,
                        "agent {i} starved for more than max_lag steps"
                    );
                }
            }
        }
    }

    #[test]
    fn targeted_adversary_starves_victims_to_the_limit() {
        let k = 6;
        let mut adv = TargetedAdversary::new(4, k);
        let model = Model {
            active: (0..k as u32).map(AgentId).collect(),
            woken: Vec::new(),
            victims: [AgentId(1), AgentId(4)].into_iter().collect(),
        };
        let victims = |a: AgentId| model.victims.contains(&a);
        let mut out = Vec::new();
        for step in 0..24u64 {
            let fire = adv
                .next_step(&model.step(k, step, &victims), &mut out)
                .unwrap();
            assert_eq!(fire, step, "non-victims exist, no skipping");
            let has_victims = out.contains(&AgentId(1)) || out.contains(&AgentId(4));
            if (step + 1) % 4 == 0 {
                assert_eq!(out.len(), k, "victim turn activates everyone");
                assert!(has_victims);
            } else {
                assert_eq!(out.len(), k - 2, "victims are starved off-turn");
                assert!(!has_victims);
            }
        }
    }

    #[test]
    fn targeted_adversary_skips_to_the_victim_turn_when_only_victims_remain() {
        let k = 3;
        let mut adv = TargetedAdversary::new(5, k);
        let model = Model {
            active: (0..k as u32).map(AgentId).collect(),
            woken: Vec::new(),
            victims: (0..k as u32).map(AgentId).collect(),
        };
        let victims = |a: AgentId| model.victims.contains(&a);
        let mut out = Vec::new();
        let fire = adv
            .next_step(&model.step(k, 0, &victims), &mut out)
            .unwrap();
        assert_eq!(fire, 4, "jumped straight to the first victim turn");
        assert_eq!(out.len(), k);
        let fire = adv
            .next_step(&model.step(k, 5, &victims), &mut out)
            .unwrap();
        assert_eq!(fire, 9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_probability_rejected() {
        let _ = RandomSubsetAdversary::new(0.0, 4, 1);
    }

    #[test]
    fn subnormal_probability_falls_back_to_one_agent_per_step() {
        // prob below the ln(1 − p) resolution must not degenerate into
        // activating everyone; the fallback keeps each step at one agent.
        let k = 8;
        let mut adv = RandomSubsetAdversary::new(1e-17, k, 3);
        let model = Model::all_active(k);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::new();
        for step in 0..50u64 {
            adv.next_step(&model.step(k, step, &not_victim), &mut out)
                .unwrap();
            assert_eq!(out.len(), 1, "step {step} activated {}", out.len());
        }
    }

    #[test]
    fn mid_run_agent_count_change_is_a_typed_error() {
        let kinds = [
            AdversaryKind::RoundRobin,
            AdversaryKind::RandomSubset { prob: 0.4 },
            AdversaryKind::Lagging { max_lag: 3 },
            AdversaryKind::Targeted { max_lag: 3 },
        ];
        let model = Model::all_active(4);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::new();
        for kind in kinds {
            let mut adv = kind.build(5, 7);
            let err = adv
                .next_step(&model.step(4, 0, &not_victim), &mut out)
                .unwrap_err();
            assert_eq!(
                err,
                AdversaryError::AgentCountChanged {
                    expected: 5,
                    got: 4
                },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn kind_builds_matching_seeded_adversaries() {
        let kinds = [
            AdversaryKind::RoundRobin,
            AdversaryKind::RandomSubset { prob: 0.4 },
            AdversaryKind::Lagging { max_lag: 3 },
            AdversaryKind::Targeted { max_lag: 3 },
        ];
        for kind in kinds {
            let a = drive(&mut kind.build(5, 77), 5, 30);
            let b = drive(&mut kind.build(5, 77), 5, 30);
            assert_eq!(a, b, "{kind:?}");
            activates_everyone_eventually(&mut kind.build(5, 78), 5, 300);
        }
        assert_eq!(AdversaryKind::RoundRobin.build(4, 0).name(), "round-robin");
        assert_eq!(
            AdversaryKind::Targeted { max_lag: 2 }.build(4, 0).name(),
            "targeted"
        );
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        // After warm-up the out buffer's capacity must stabilize: the
        // event-driven contract is zero per-step allocation in the caller's
        // buffer beyond high-water marks.
        let k = 32;
        let mut adv = RandomSubsetAdversary::new(0.5, k, 3);
        let model = Model::all_active(k);
        let not_victim = |_: AgentId| false;
        let mut out = Vec::with_capacity(k);
        let cap = out.capacity();
        for step in 0..200u64 {
            adv.next_step(&model.step(k, step, &not_victim), &mut out)
                .unwrap();
        }
        assert_eq!(out.capacity(), cap, "buffer grew past its high-water mark");
    }
}
