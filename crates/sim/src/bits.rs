//! Helpers for accounting persistent agent memory in bits.
//!
//! The paper measures memory complexity as the number of bits stored at an
//! agent from one CCM cycle to the next. Algorithm implementations compute
//! their footprint from these helpers so that the reported
//! `O(log(k + Δ))`-style bounds correspond to what the structs actually
//! store (an ID costs `⌈log₂ k⌉` bits, a port `⌈log₂(Δ+1)⌉` bits, an optional
//! field one extra flag bit, and so on).

/// Bits needed to store one value from a domain of `domain_size` distinct
/// values (`⌈log₂ domain_size⌉`, and at least 1 for a non-trivial domain).
pub fn bits_for_domain(domain_size: u64) -> usize {
    if domain_size <= 1 {
        0
    } else {
        (u64::BITS - (domain_size - 1).leading_zeros()) as usize
    }
}

/// Bits for an agent ID drawn from `[1, k^c]`; the paper assumes `c = O(1)`,
/// we charge for the common `c = 1` case plus nothing extra: `⌈log₂ k⌉`.
pub fn id_bits(k: usize) -> usize {
    bits_for_domain(k as u64).max(1)
}

/// Bits for a port number in `[1, Δ]`.
pub fn port_bits(max_degree: usize) -> usize {
    bits_for_domain(max_degree as u64).max(1)
}

/// Bits for an optional port (`⊥` or a port in `[1, Δ]`).
pub fn opt_port_bits(max_degree: usize) -> usize {
    1 + port_bits(max_degree)
}

/// Bits for a counter in `[0, max]`.
pub fn counter_bits(max: u64) -> usize {
    bits_for_domain(max + 1)
}

/// One boolean flag.
pub fn flag_bits() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_bits() {
        assert_eq!(bits_for_domain(0), 0);
        assert_eq!(bits_for_domain(1), 0);
        assert_eq!(bits_for_domain(2), 1);
        assert_eq!(bits_for_domain(3), 2);
        assert_eq!(bits_for_domain(4), 2);
        assert_eq!(bits_for_domain(5), 3);
        assert_eq!(bits_for_domain(1024), 10);
        assert_eq!(bits_for_domain(1025), 11);
    }

    #[test]
    fn id_and_port_bits_grow_logarithmically() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(1000), 10);
        assert_eq!(port_bits(1), 1);
        assert_eq!(port_bits(8), 3);
        assert_eq!(opt_port_bits(8), 4);
    }

    #[test]
    fn counter_bits_cover_range() {
        assert_eq!(counter_bits(0), 0);
        assert_eq!(counter_bits(1), 1);
        assert_eq!(counter_bits(6), 3);
        assert_eq!(counter_bits(255), 8);
        assert_eq!(counter_bits(256), 9);
    }
}
