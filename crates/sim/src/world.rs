//! The world: agent positions, co-location, and the movement API.

use crate::ids::AgentId;
use crate::metrics::Metrics;
use crate::trace::{Trace, TraceEvent};
use disp_graph::{NodeId, Port, PortGraph};

/// Errors that a movement attempt can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveError {
    /// The agent already traversed an edge during this activation.
    AlreadyMoved,
    /// The requested port does not exist at the agent's current node.
    InvalidPort {
        /// The requested port.
        port: Port,
        /// Degree of the node the agent is at.
        degree: usize,
    },
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::AlreadyMoved => write!(f, "agent already moved during this activation"),
            MoveError::InvalidPort { port, degree } => {
                write!(f, "port {port} invalid at a node of degree {degree}")
            }
        }
    }
}

impl std::error::Error for MoveError {}

/// Mutable world state: where every agent is, plus bookkeeping.
///
/// The world does not know anything about the algorithm being run; protocols
/// keep their own per-agent state and interact with the world only through
/// [`ActivationCtx`].
#[derive(Debug, Clone)]
pub struct World {
    graph: PortGraph,
    positions: Vec<NodeId>,
    at_node: Vec<Vec<AgentId>>,
    moved: Vec<bool>,
    metrics: Metrics,
    trace: Trace,
}

impl World {
    /// Create a world with the given initial agent positions (`positions[i]`
    /// is the start node of agent `i`).
    pub fn new(graph: PortGraph, positions: Vec<NodeId>) -> Self {
        assert!(!positions.is_empty(), "a world needs at least one agent");
        assert!(
            positions.len() <= graph.num_nodes(),
            "the dispersion model requires k ≤ n (got k={} agents on n={} nodes)",
            positions.len(),
            graph.num_nodes()
        );
        let mut at_node = vec![Vec::new(); graph.num_nodes()];
        for (i, &v) in positions.iter().enumerate() {
            assert!(
                v.index() < graph.num_nodes(),
                "agent {i} starts at nonexistent node {v}"
            );
            at_node[v.index()].push(AgentId(i as u32));
        }
        let k = positions.len();
        World {
            graph,
            positions,
            at_node,
            moved: vec![false; k],
            metrics: Metrics::new(k),
            trace: Trace::disabled(),
        }
    }

    /// Create a *rooted* initial configuration: all `k` agents start on
    /// `root`.
    pub fn new_rooted(graph: PortGraph, k: usize, root: NodeId) -> Self {
        World::new(graph, vec![root; k])
    }

    /// Enable event tracing (off by default; traces grow linearly with the
    /// number of moves).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Access the recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Number of agents `k`.
    #[inline]
    pub fn num_agents(&self) -> usize {
        self.positions.len()
    }

    /// The underlying graph.
    ///
    /// Intended for verifiers, metrics and the experiment harness. Protocol
    /// implementations must not use it for algorithmic decisions — agents only
    /// ever observe their local node through [`ActivationCtx`].
    #[inline]
    pub fn graph(&self) -> &PortGraph {
        &self.graph
    }

    /// Current node of `agent`.
    #[inline]
    pub fn position(&self, agent: AgentId) -> NodeId {
        self.positions[agent.index()]
    }

    /// Current positions of all agents, indexed by agent.
    #[inline]
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// Agents currently located at node `v` (in no particular order).
    #[inline]
    pub fn agents_at(&self, v: NodeId) -> &[AgentId] {
        &self.at_node[v.index()]
    }

    /// Movement and memory metrics accumulated so far.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to metrics (used by the runners for memory sampling).
    #[inline]
    pub(crate) fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Prepare `agent` for one activation (resets its per-activation move
    /// budget). Called by the runners.
    pub(crate) fn begin_activation(&mut self, agent: AgentId) {
        self.moved[agent.index()] = false;
    }

    /// Borrow an [`ActivationCtx`] for `agent`. Runners call this right after
    /// [`World::begin_activation`].
    pub(crate) fn ctx(&mut self, agent: AgentId, time: u64) -> ActivationCtx<'_> {
        ActivationCtx {
            world: self,
            agent,
            time,
        }
    }

    fn apply_move(&mut self, agent: AgentId, port: Port, time: u64) -> Result<Port, MoveError> {
        if self.moved[agent.index()] {
            return Err(MoveError::AlreadyMoved);
        }
        let from = self.positions[agent.index()];
        let degree = self.graph.degree(from);
        if port.0 == 0 || port.offset() >= degree {
            return Err(MoveError::InvalidPort { port, degree });
        }
        let (to, pin) = self.graph.traverse(from, port);
        self.moved[agent.index()] = true;
        self.positions[agent.index()] = to;
        let slot = self.at_node[from.index()]
            .iter()
            .position(|&a| a == agent)
            .expect("co-location index out of sync");
        self.at_node[from.index()].swap_remove(slot);
        self.at_node[to.index()].push(agent);
        self.metrics.record_move(agent);
        self.trace.record(TraceEvent::Move {
            agent,
            from,
            to,
            port,
            pin,
            time,
        });
        Ok(pin)
    }
}

/// An agent's restricted view of the world during one activation.
///
/// The context exposes exactly what the model allows an activated agent to
/// see and do: its own location's degree, the set of co-located agents, and
/// one move through a local port. Reading/writing co-located agents' *state*
/// is the protocol's business (the protocol owns all agent state); the
/// context provides the co-location information needed to do so lawfully.
pub struct ActivationCtx<'w> {
    world: &'w mut World,
    agent: AgentId,
    time: u64,
}

impl<'w> ActivationCtx<'w> {
    /// The agent being activated.
    #[inline]
    pub fn agent(&self) -> AgentId {
        self.agent
    }

    /// The node the agent currently occupies.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.world.positions[self.agent.index()]
    }

    /// Degree `δ_v` of the current node (the number of local ports).
    #[inline]
    pub fn degree(&self) -> usize {
        self.world.graph.degree(self.node())
    }

    /// The current simulation time (round number in SYNC, step number in
    /// ASYNC). Protocols may use it only for round-counting waits, which the
    /// model permits (agents can count their own activations).
    #[inline]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// All agents at the current node — **including** the activated agent —
    /// as a borrowed slice, in no particular order.
    ///
    /// This is the allocation-free view for the activation hot path: one
    /// co-location query per activation used to clone a `Vec`, which
    /// dominated the simulator profile on dense graphs. Filter out
    /// [`ActivationCtx::agent`] (or use [`ActivationCtx::colocated_iter`])
    /// to reason about peers only.
    #[inline]
    pub fn agents_here(&self) -> &[AgentId] {
        self.world.agents_at(self.node())
    }

    /// Iterator over the co-located agents (self excluded), borrowing from
    /// the world — no allocation.
    #[inline]
    pub fn colocated_iter(&self) -> impl Iterator<Item = AgentId> + '_ {
        let me = self.agent;
        self.agents_here().iter().copied().filter(move |&a| a != me)
    }

    /// Other agents co-located with this one (self excluded), as an owned
    /// vector. Prefer [`ActivationCtx::colocated_iter`] /
    /// [`ActivationCtx::agents_here`] in per-activation code — this variant
    /// allocates on every call.
    pub fn colocated(&self) -> Vec<AgentId> {
        self.colocated_iter().collect()
    }

    /// Number of co-located agents (self excluded).
    pub fn num_colocated(&self) -> usize {
        self.world.agents_at(self.node()).len() - 1
    }

    /// Whether this agent already used its move for this activation.
    #[inline]
    pub fn has_moved(&self) -> bool {
        self.world.moved[self.agent.index()]
    }

    /// Move through local port `port`; returns the incoming port (`pin`) at
    /// the destination.
    ///
    /// # Panics
    /// Panics if the agent already moved during this activation or the port
    /// is invalid — both indicate protocol bugs.
    pub fn move_via(&mut self, port: Port) -> Port {
        self.try_move_via(port)
            .unwrap_or_else(|e| panic!("agent {} illegal move: {e}", self.agent))
    }

    /// Fallible variant of [`ActivationCtx::move_via`].
    pub fn try_move_via(&mut self, port: Port) -> Result<Port, MoveError> {
        self.world.apply_move(self.agent, port, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;

    fn world_on_ring(k: usize) -> World {
        World::new_rooted(generators::ring(6), k, NodeId(0))
    }

    #[test]
    fn rooted_world_colocates_all_agents() {
        let w = world_on_ring(4);
        assert_eq!(w.num_agents(), 4);
        assert_eq!(w.agents_at(NodeId(0)).len(), 4);
        assert_eq!(w.agents_at(NodeId(1)).len(), 0);
        for a in 0..4 {
            assert_eq!(w.position(AgentId(a)), NodeId(0));
        }
    }

    #[test]
    fn move_updates_positions_and_colocation() {
        let mut w = world_on_ring(2);
        w.begin_activation(AgentId(0));
        let pin = w.ctx(AgentId(0), 0).move_via(Port(1));
        // Ring built with edges (i, i+1): port 1 of node 0 goes to node 1,
        // arriving on node 1's port 1.
        assert_eq!(pin, Port(1));
        assert_eq!(w.position(AgentId(0)), NodeId(1));
        assert_eq!(w.agents_at(NodeId(0)), &[AgentId(1)]);
        assert_eq!(w.agents_at(NodeId(1)), &[AgentId(0)]);
        assert_eq!(w.metrics().total_moves(), 1);
    }

    #[test]
    fn second_move_in_one_activation_is_rejected() {
        let mut w = world_on_ring(1);
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        ctx.move_via(Port(1));
        assert_eq!(ctx.try_move_via(Port(1)), Err(MoveError::AlreadyMoved));
    }

    #[test]
    fn next_activation_restores_move_budget() {
        let mut w = world_on_ring(1);
        for t in 0..6u64 {
            w.begin_activation(AgentId(0));
            w.ctx(AgentId(0), t).move_via(Port(2));
        }
        assert_eq!(w.metrics().total_moves(), 6);
        // Walking port 2 six times around a 6-ring returns to the start.
        assert_eq!(w.position(AgentId(0)), NodeId(0));
    }

    #[test]
    fn invalid_port_is_rejected() {
        let mut w = world_on_ring(1);
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        assert!(matches!(
            ctx.try_move_via(Port(3)),
            Err(MoveError::InvalidPort { .. })
        ));
        assert!(matches!(
            ctx.try_move_via(Port(0)),
            Err(MoveError::InvalidPort { .. })
        ));
    }

    #[test]
    fn colocated_excludes_self() {
        let mut w = world_on_ring(3);
        w.begin_activation(AgentId(1));
        let ctx = w.ctx(AgentId(1), 0);
        let peers = ctx.colocated();
        assert_eq!(peers.len(), 2);
        assert!(!peers.contains(&AgentId(1)));
        assert_eq!(ctx.num_colocated(), 2);
        // The borrowing views agree with the allocating one.
        assert_eq!(ctx.colocated_iter().collect::<Vec<_>>(), peers);
        assert_eq!(ctx.agents_here().len(), 3);
        assert!(ctx.agents_here().contains(&AgentId(1)));
    }

    #[test]
    #[should_panic(expected = "k ≤ n")]
    fn more_agents_than_nodes_is_rejected() {
        let _ = World::new_rooted(generators::ring(3), 4, NodeId(0));
    }

    #[test]
    fn trace_records_moves_when_enabled() {
        let mut w = world_on_ring(1);
        w.enable_trace();
        w.begin_activation(AgentId(0));
        w.ctx(AgentId(0), 7).move_via(Port(1));
        assert_eq!(w.trace().events().len(), 1);
        match w.trace().events()[0] {
            TraceEvent::Move {
                agent,
                from,
                to,
                time,
                ..
            } => {
                assert_eq!(agent, AgentId(0));
                assert_eq!(from, NodeId(0));
                assert_eq!(to, NodeId(1));
                assert_eq!(time, 7);
            }
            _ => panic!("expected a move event"),
        }
    }
}
