//! The world: agent positions, co-location, the movement API — and the
//! flat-state machinery that makes million-agent runs tractable.
//!
//! ## Flat state
//!
//! Positions are a flat array; per-node occupancy is an intrusive, index-
//! linked doubly-linked list (`head[v]` / `next[a]` / `prev[a]`), so a move
//! is O(1) pointer surgery with zero allocation and co-location queries
//! borrow straight from the arrays.
//!
//! ## The active-agent worklist
//!
//! The runners only activate agents on the world's *active* list. A protocol
//! may [`ActivationCtx::park`] an agent whose `on_activate` has become a
//! guaranteed no-op (a settled agent, a passenger waiting for extraction)
//! and must [`ActivationCtx::wake`] it when some other agent's action makes
//! it actionable again (a prober recruiting a settler). Skipped activations
//! are *credited* in the time accounting, so rounds/steps/epochs are
//! identical to activating everyone — the worklist only removes the O(k)
//! per-round scan over agents that would do nothing.
//!
//! **Contract**: parking an agent whose activation could still act changes
//! behaviour; the invariant harness (`crates/core/tests/invariants.rs`)
//! exists to catch such protocol bugs.
//!
//! ## Cohorts (convoy rides)
//!
//! DFS-style dispersion moves a whole group of unsettled agents one edge at
//! a time; simulating each passenger's move individually costs Θ(k²) work
//! on a rooted line. A *cohort* compresses the ride: a driver enrolls
//! co-located agents ([`ActivationCtx::enroll`]), moves the whole cohort
//! with one O(1) operation per edge ([`ActivationCtx::move_cohort_via`]),
//! and extracts members back into the world when they are needed
//! ([`ActivationCtx::extract`]). Every member is still charged one move per
//! edge ridden (`total_moves` eagerly, `moves_per_agent` on extraction), so
//! the reported metrics equal the per-agent execution's; the realized
//! schedule is the one where every passenger executes the driver's order
//! immediately — a valid refinement of the follower/flip-order movement
//! protocol (see `DESIGN.md` §8). Riding agents are parked and invisible to
//! co-location queries; their authoritative position is the cohort's node.

use crate::ids::AgentId;
use crate::metrics::Metrics;
use crate::trace::{Trace, TraceEvent};
use disp_graph::{EdgeLiveness, NodeId, Port, Topology};

const NONE: u32 = u32::MAX;

/// Errors that a movement attempt can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveError {
    /// The agent already traversed an edge during this activation.
    AlreadyMoved,
    /// The requested port does not exist at the agent's current node.
    InvalidPort {
        /// The requested port.
        port: Port,
        /// Degree of the node the agent is at.
        degree: usize,
    },
    /// The port exists but its edge is currently dead (dynamic world).
    /// Unlike [`MoveError::InvalidPort`] this is *not* a protocol bug: a
    /// dynamic adversary may cut any edge, and the model's response is to
    /// wait out the round — protocols recover via
    /// [`ActivationCtx::try_move_via`].
    EdgeDown {
        /// The requested port.
        port: Port,
    },
}

impl std::fmt::Display for MoveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveError::AlreadyMoved => write!(f, "agent already moved during this activation"),
            MoveError::InvalidPort { port, degree } => {
                write!(f, "port {port} invalid at a node of degree {degree}")
            }
            MoveError::EdgeDown { port } => {
                write!(f, "the edge behind port {port} is currently removed")
            }
        }
    }
}

impl std::error::Error for MoveError {}

#[derive(Debug, Clone)]
struct Cohort {
    /// Current node of the whole cohort.
    node: NodeId,
    /// Edges traversed by the cohort since creation.
    hops: u64,
    /// Number of riding members.
    members: u32,
    /// Head of the member list (threaded through `next`/`prev`).
    head: u32,
    /// The driving agent — needed to sever `driving` when the last member
    /// leaves and the slot goes back on the free list.
    driver: u32,
}

/// Mutable world state: where every agent is, plus bookkeeping.
///
/// The world does not know anything about the algorithm being run; protocols
/// keep their own per-agent state and interact with the world only through
/// [`ActivationCtx`].
#[derive(Debug, Clone)]
pub struct World {
    graph: Topology,
    /// Concrete position of every non-riding agent; for riders the
    /// authoritative position is their cohort's node.
    positions: Vec<NodeId>,
    /// Per-node occupancy list head (concrete agents only).
    head: Vec<u32>,
    /// Intrusive list links; an agent is threaded either through its node's
    /// occupancy list or through its cohort's member list.
    next: Vec<u32>,
    prev: Vec<u32>,
    cohorts: Vec<Cohort>,
    /// Recyclable `cohorts` slots: a cohort whose last member leaves goes
    /// back here, so trials that form and disband many convoys reuse a
    /// handful of slots instead of growing `cohorts` forever.
    free_cohorts: Vec<u32>,
    /// `agent → cohort` while riding, `NONE` otherwise.
    cohort_of: Vec<u32>,
    /// `agent → cohort` while driving one, `NONE` otherwise.
    driving: Vec<u32>,
    /// Cohort hop count at the moment the agent enrolled.
    ride_start: Vec<u64>,
    /// The scheduler worklist (unsorted; swap-removed on park).
    active: Vec<AgentId>,
    /// `agent → index in active`, `NONE` when parked.
    active_pos: Vec<u32>,
    /// Ascending copy of `active`, valid while `active_clean`. Runners read
    /// the sorted worklist every round/step but the worklist itself only
    /// changes on park/wake/crash — caching the sort here turns the common
    /// quiet round's snapshot into a no-op (ASYNC) or a small memcpy (SYNC).
    active_sorted: Vec<AgentId>,
    /// Whether `active_sorted` currently mirrors `active`.
    active_clean: bool,
    /// Genuine park/wake transitions (`true` = woke) since the last
    /// [`World::drain_transitions`] call, in occurrence order. The runners
    /// drain this every round/step: the SYNC runner to inject same-round
    /// wakes, the ASYNC runner to feed the adversary's timer structures and
    /// the clock's epoch requirement bookkeeping.
    transitions: Vec<(AgentId, bool)>,
    moved: Vec<bool>,
    /// Edge-liveness overlay; `None` (the common case) means every edge is
    /// alive and movement skips the liveness probe entirely.
    liveness: Option<EdgeLiveness>,
    /// Crash-fault flags: a dead agent is permanently parked, unlinked from
    /// occupancy, and excluded from dispersion verification.
    dead: Vec<bool>,
    dead_count: usize,
    metrics: Metrics,
    trace: Trace,
}

/// Reset `v` to `len` copies of `fill`, keeping its allocation.
fn refill<T: Copy>(v: &mut Vec<T>, len: usize, fill: T) {
    v.clear();
    v.resize(len, fill);
}

/// A recyclable allocation shell for [`World`]s.
///
/// Campaigns that run thousands of *small* trials (the batched micro-trial
/// path) spend a measurable share of their time in the ~15 `Vec`
/// allocations each `World::new` performs. A pool keeps the buffers of a
/// finished world and rebuilds the next trial's world inside them:
/// [`WorldPool::take`] is state-identical to [`World::new`] (the
/// `pooled_world_is_indistinguishable_from_a_fresh_one` test pins this), so
/// pooled and unpooled trials of the same seed produce byte-identical
/// outcomes. After the first trial of a batch, `take` allocates nothing as
/// long as instance sizes do not grow.
#[derive(Debug, Default)]
pub struct WorldPool {
    shell: Option<World>,
}

impl WorldPool {
    /// An empty pool; the first [`WorldPool::take`] falls back to
    /// [`World::new`].
    pub fn new() -> Self {
        WorldPool::default()
    }

    /// Build a world for `positions`, reusing the pooled allocations when
    /// available.
    pub fn take(&mut self, graph: impl Into<Topology>, positions: Vec<NodeId>) -> World {
        match self.shell.take() {
            None => World::new(graph, positions),
            Some(shell) => World::rebuild(shell, graph.into(), positions),
        }
    }

    /// Return a finished world's allocations to the pool (its graph and
    /// run state are discarded on the next [`WorldPool::take`]).
    pub fn put(&mut self, world: World) {
        self.shell = Some(world);
    }
}

impl World {
    /// Create a world with the given initial agent positions (`positions[i]`
    /// is the start node of agent `i`).
    pub fn new(graph: impl Into<Topology>, positions: Vec<NodeId>) -> Self {
        let graph = graph.into();
        let k = positions.len();
        Self::check_instance(&graph, &positions);
        let mut world = World {
            graph,
            positions,
            head: Vec::new(),
            next: Vec::new(),
            prev: Vec::new(),
            cohorts: Vec::new(),
            free_cohorts: Vec::new(),
            cohort_of: Vec::new(),
            driving: Vec::new(),
            ride_start: Vec::new(),
            active: Vec::new(),
            active_pos: Vec::new(),
            active_sorted: Vec::new(),
            active_clean: false,
            transitions: Vec::new(),
            moved: Vec::new(),
            liveness: None,
            dead: Vec::new(),
            dead_count: 0,
            metrics: Metrics::new(k),
            trace: Trace::disabled(),
        };
        world.init_buffers();
        world
    }

    /// Rebuild a world inside `shell`'s allocations — the [`WorldPool`]
    /// fast path. Must leave every field exactly as [`World::new`] would;
    /// the exhaustive destructure below makes adding a `World` field
    /// without deciding its reset policy a compile error.
    fn rebuild(shell: World, graph: Topology, positions: Vec<NodeId>) -> World {
        Self::check_instance(&graph, &positions);
        let k = positions.len();
        let World {
            graph: _,
            positions: _,
            head,
            next,
            prev,
            mut cohorts,
            mut free_cohorts,
            cohort_of,
            driving,
            ride_start,
            active,
            active_pos,
            mut active_sorted,
            active_clean: _,
            mut transitions,
            moved,
            liveness: _,
            dead,
            dead_count: _,
            metrics: old_metrics,
            trace: _,
        } = shell;
        cohorts.clear();
        free_cohorts.clear();
        active_sorted.clear();
        transitions.clear();
        let mut world = World {
            graph,
            positions,
            head,
            next,
            prev,
            cohorts,
            free_cohorts,
            cohort_of,
            driving,
            ride_start,
            active,
            active_pos,
            active_sorted,
            active_clean: false,
            transitions,
            moved,
            liveness: None,
            dead,
            dead_count: 0,
            metrics: old_metrics.into_reset(k),
            trace: Trace::disabled(),
        };
        world.init_buffers();
        world
    }

    fn check_instance(graph: &Topology, positions: &[NodeId]) {
        assert!(!positions.is_empty(), "a world needs at least one agent");
        assert!(
            positions.len() <= graph.num_nodes(),
            "the dispersion model requires k ≤ n (got k={} agents on n={} nodes)",
            positions.len(),
            graph.num_nodes()
        );
    }

    /// Size every per-node/per-agent buffer for the current instance and
    /// link the occupancy lists. Shared by [`World::new`] (fresh buffers)
    /// and [`World::rebuild`] (pooled buffers).
    fn init_buffers(&mut self) {
        let k = self.positions.len();
        let n = self.graph.num_nodes();
        refill(&mut self.head, n, NONE);
        refill(&mut self.next, k, NONE);
        refill(&mut self.prev, k, NONE);
        refill(&mut self.cohort_of, k, NONE);
        refill(&mut self.driving, k, NONE);
        refill(&mut self.ride_start, k, 0);
        refill(&mut self.moved, k, false);
        refill(&mut self.dead, k, false);
        self.active.clear();
        self.active.extend((0..k as u32).map(AgentId));
        self.active_pos.clear();
        self.active_pos.extend(0..k as u32);
        self.active_sorted.clear();
        self.active_clean = false;
        // Link occupancy lists in reverse so list order is ascending by id
        // (link_to_node rewrites positions[i] with the same value).
        for i in (0..k).rev() {
            let v = self.positions[i];
            assert!(v.index() < n, "agent {i} starts at nonexistent node {v}");
            self.link_to_node(i, v);
        }
    }

    /// Create a *rooted* initial configuration: all `k` agents start on
    /// `root`.
    pub fn new_rooted(graph: impl Into<Topology>, k: usize, root: NodeId) -> Self {
        World::new(graph, vec![root; k])
    }

    /// Enable event tracing (off by default; traces grow linearly with the
    /// number of moves).
    pub fn enable_trace(&mut self) {
        self.trace = Trace::enabled();
    }

    /// Enable event tracing with an explicit cap on recorded events (the
    /// trace drops further events and marks itself truncated past it).
    pub fn enable_trace_with_cap(&mut self, cap: usize) {
        self.trace = Trace::enabled_with_cap(cap);
    }

    /// Access the recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Take ownership of the recorded trace, leaving tracing disabled.
    /// Used by the trace-export path to hand the event log to an encoder
    /// without cloning it.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Number of agents `k`.
    #[inline]
    pub fn num_agents(&self) -> usize {
        self.positions.len()
    }

    /// The underlying topology.
    ///
    /// Intended for verifiers, metrics and the experiment harness. Protocol
    /// implementations must not use it for algorithmic decisions — agents only
    /// ever observe their local node through [`ActivationCtx`].
    #[inline]
    pub fn graph(&self) -> &Topology {
        &self.graph
    }

    /// Current node of `agent` (cohort-aware).
    #[inline]
    pub fn position(&self, agent: AgentId) -> NodeId {
        let c = self.cohort_of[agent.index()];
        if c == NONE {
            self.positions[agent.index()]
        } else {
            self.cohorts[c as usize].node
        }
    }

    /// Current positions of all agents, indexed by agent (materialized; use
    /// [`World::position`] for single lookups).
    pub fn snapshot_positions(&self) -> Vec<NodeId> {
        (0..self.num_agents())
            .map(|i| self.position(AgentId(i as u32)))
            .collect()
    }

    /// Concrete agents currently located at node `v`, in ascending-insertion
    /// order. Cohort members riding through `v` are *not* listed; they are
    /// only reachable through their driver (see the module docs).
    #[inline]
    pub fn agents_at(&self, v: NodeId) -> AgentIter<'_> {
        AgentIter {
            next: &self.next,
            cur: self.head[v.index()],
        }
    }

    /// Movement and memory metrics accumulated so far.
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    // ------------------------------------------------------------------
    // Dynamic edges (liveness overlay)
    // ------------------------------------------------------------------

    /// Attach the edge-liveness overlay (idempotent). Static worlds never
    /// pay for it: without an overlay, movement skips the liveness probe.
    pub fn enable_liveness(&mut self) {
        if self.liveness.is_none() {
            self.liveness = Some(EdgeLiveness::new(&self.graph));
        }
    }

    /// The edge-liveness overlay, if any edge dynamics were enabled.
    #[inline]
    pub fn liveness(&self) -> Option<&EdgeLiveness> {
        self.liveness.as_ref()
    }

    /// Kill the edge behind port `p` at node `v` (attaching the overlay on
    /// first use). Returns whether the edge was alive. Agents standing on
    /// either endpoint are unaffected until they try to cross it.
    pub fn kill_edge(&mut self, v: NodeId, p: Port) -> bool {
        self.enable_liveness();
        let live = self.liveness.as_mut().expect("just enabled");
        live.kill(&self.graph, v, p)
    }

    /// Restore the edge behind port `p` at node `v`. Returns whether the
    /// edge was dead.
    pub fn revive_edge(&mut self, v: NodeId, p: Port) -> bool {
        self.enable_liveness();
        let live = self.liveness.as_mut().expect("just enabled");
        live.revive(&self.graph, v, p)
    }

    // ------------------------------------------------------------------
    // Crash faults
    // ------------------------------------------------------------------

    /// Whether `agent` has crashed.
    #[inline]
    pub fn is_dead(&self, agent: AgentId) -> bool {
        self.dead[agent.index()]
    }

    /// Number of crashed agents.
    #[inline]
    pub fn dead_count(&self) -> usize {
        self.dead_count
    }

    /// Number of surviving agents (`k` minus crashes).
    #[inline]
    pub fn alive_count(&self) -> usize {
        self.num_agents() - self.dead_count
    }

    /// Crash `agent`: it permanently leaves the world. A settled victim's
    /// node is *orphaned* — the agent is unlinked from the occupancy list,
    /// so survivors see the node as free and may re-settle it. A driving
    /// victim's cohort disbands first (members rematerialize at the
    /// cohort's node, rides fully credited, and wake); a riding victim is
    /// extracted the same way before dying. The agent's last position stays
    /// readable via [`World::position`] for verification.
    ///
    /// Crashes are driven by the runners at round/step boundaries, never
    /// mid-activation.
    ///
    /// # Panics
    /// Panics if `agent` already crashed.
    pub fn crash(&mut self, agent: AgentId) {
        let a = agent.index();
        assert!(!self.dead[a], "agent {agent} crashed twice");
        if self.driving[a] != NONE {
            // Disband: extract members one at a time (each extract pops the
            // member list's head).
            while let Some(member) = self.cohort_members(agent).next() {
                self.extract_member(member);
            }
        }
        if self.cohort_of[a] != NONE {
            self.extract_member(agent);
        }
        self.unlink_from_node(a);
        self.park(agent);
        self.dead[a] = true;
        self.dead_count += 1;
    }

    /// Mutable access to metrics (used by the runners for memory sampling).
    #[inline]
    pub(crate) fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    // ------------------------------------------------------------------
    // Worklist
    // ------------------------------------------------------------------

    /// Whether `agent` is on the active worklist.
    #[inline]
    pub fn is_active(&self, agent: AgentId) -> bool {
        self.active_pos[agent.index()] != NONE
    }

    /// Number of active (schedulable) agents.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// The active list sorted ascending by agent id (the SYNC runner's
    /// per-round activation order and the ASYNC adversaries' canonical
    /// worklist view), served from the cache — the sort reruns only when a
    /// park/wake/crash dirtied the worklist since the last call.
    pub(crate) fn active_sorted(&mut self) -> &[AgentId] {
        if !self.active_clean {
            self.active_sorted.clear();
            self.active_sorted.extend_from_slice(&self.active);
            self.active_sorted.sort_unstable();
            self.active_clean = true;
        }
        &self.active_sorted
    }

    /// Copy the sorted active list into `buf` (for callers that go on to
    /// mutate their copy, like the SYNC runner's same-round wake injection).
    pub(crate) fn snapshot_active_sorted(&mut self, buf: &mut Vec<AgentId>) {
        self.active_sorted();
        buf.clear();
        buf.extend_from_slice(&self.active_sorted);
    }

    /// The active worklist in internal (unsorted) order — set semantics
    /// only; the clock's epoch bookkeeping iterates it.
    #[inline]
    pub(crate) fn active_slice(&self) -> &[AgentId] {
        &self.active
    }

    /// Drain the park/wake transitions recorded since the last call
    /// (`true` = woke), in occurrence order.
    pub(crate) fn drain_transitions(&mut self, buf: &mut Vec<(AgentId, bool)>) {
        buf.clear();
        buf.append(&mut self.transitions);
    }

    /// Remove `agent` from the worklist (no-op if already parked).
    pub fn park(&mut self, agent: AgentId) {
        let i = self.active_pos[agent.index()];
        if i == NONE {
            return;
        }
        let last = self.active.pop().expect("active_pos points into active");
        if last != agent {
            self.active[i as usize] = last;
            self.active_pos[last.index()] = i;
        }
        self.active_pos[agent.index()] = NONE;
        self.active_clean = false;
        self.transitions.push((agent, false));
    }

    /// Put `agent` back on the worklist (no-op if already active).
    pub fn wake(&mut self, agent: AgentId) {
        if self.active_pos[agent.index()] != NONE {
            return;
        }
        self.active_pos[agent.index()] = self.active.len() as u32;
        self.active.push(agent);
        self.active_clean = false;
        self.transitions.push((agent, true));
    }

    // ------------------------------------------------------------------
    // Occupancy list surgery
    // ------------------------------------------------------------------

    fn unlink_from_node(&mut self, a: usize) {
        let v = self.positions[a].index();
        let (p, n) = (self.prev[a], self.next[a]);
        if p == NONE {
            self.head[v] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
    }

    fn link_to_node(&mut self, a: usize, v: NodeId) {
        let h = self.head[v.index()];
        self.prev[a] = NONE;
        self.next[a] = h;
        if h != NONE {
            self.prev[h as usize] = a as u32;
        }
        self.head[v.index()] = a as u32;
        self.positions[a] = v;
    }

    // ------------------------------------------------------------------
    // Cohorts
    // ------------------------------------------------------------------

    /// Number of members riding in `driver`'s cohort (0 if it has none).
    pub fn cohort_len(&self, driver: AgentId) -> usize {
        match self.driving[driver.index()] {
            NONE => 0,
            c => self.cohorts[c as usize].members as usize,
        }
    }

    /// Iterator over the members of `driver`'s cohort (unspecified order).
    pub fn cohort_members(&self, driver: AgentId) -> AgentIter<'_> {
        let cur = match self.driving[driver.index()] {
            NONE => NONE,
            c => self.cohorts[c as usize].head,
        };
        AgentIter {
            next: &self.next,
            cur,
        }
    }

    fn enroll(&mut self, driver: AgentId, member: AgentId) {
        assert_ne!(driver, member, "a driver cannot enroll itself");
        let m = member.index();
        assert_eq!(
            self.cohort_of[m], NONE,
            "agent {member} is already riding a cohort"
        );
        assert_eq!(
            self.driving[m], NONE,
            "agent {member} drives a cohort and cannot ride one"
        );
        let at = self.positions[driver.index()];
        assert_eq!(
            self.positions[m], at,
            "cohort members must be co-located with the driver"
        );
        let c = match self.driving[driver.index()] {
            NONE => {
                let fresh = Cohort {
                    node: at,
                    hops: 0,
                    members: 0,
                    head: NONE,
                    driver: driver.0,
                };
                let c = match self.free_cohorts.pop() {
                    Some(c) => {
                        self.cohorts[c as usize] = fresh;
                        c
                    }
                    None => {
                        let c = self.cohorts.len() as u32;
                        self.cohorts.push(fresh);
                        c
                    }
                };
                self.driving[driver.index()] = c;
                c
            }
            c => c,
        } as usize;
        debug_assert_eq!(self.cohorts[c].node, at, "cohort strayed from driver");
        self.unlink_from_node(m);
        // Link into the cohort's member list.
        let h = self.cohorts[c].head;
        self.prev[m] = NONE;
        self.next[m] = h;
        if h != NONE {
            self.prev[h as usize] = m as u32;
        }
        self.cohorts[c].head = m as u32;
        self.cohorts[c].members += 1;
        self.cohort_of[m] = c as u32;
        self.ride_start[m] = self.cohorts[c].hops;
        self.park(member);
    }

    fn extract(&mut self, driver: AgentId, member: AgentId) {
        let c = self.cohort_of[member.index()];
        assert!(
            c != NONE && self.driving[driver.index()] == c,
            "agent {member} is not riding {driver}'s cohort"
        );
        self.extract_member(member);
    }

    /// Extract `member` from whatever cohort it rides, keyed by the
    /// member's own `cohort_of` link (the crash path has no driver in
    /// hand).
    fn extract_member(&mut self, member: AgentId) {
        let m = member.index();
        let c = self.cohort_of[m];
        assert!(c != NONE, "agent {member} is not riding a cohort");
        let c = c as usize;
        // Unlink from the member list.
        let (p, n) = (self.prev[m], self.next[m]);
        if p == NONE {
            self.cohorts[c].head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
        self.cohorts[c].members -= 1;
        self.cohort_of[m] = NONE;
        // Materialize at the cohort's node and settle the ride's accounting.
        let node = self.cohorts[c].node;
        let ridden = self.cohorts[c].hops - self.ride_start[m];
        self.metrics.credit_rider_moves(member, ridden);
        self.link_to_node(m, node);
        self.wake(member);
        // An emptied cohort's slot is recycled; the driver starts a fresh
        // one on its next enroll.
        if self.cohorts[c].members == 0 {
            self.driving[self.cohorts[c].driver as usize] = NONE;
            self.cohorts[c].head = NONE;
            self.free_cohorts.push(c as u32);
        }
    }

    /// Fold the pending per-agent move accounting of every live cohort into
    /// the metrics (runners call this before building an [`crate::Outcome`],
    /// so mid-ride limit hits still report faithful `max_moves_per_agent`).
    pub fn sync_ride_accounting(&mut self) {
        for c in 0..self.cohorts.len() {
            let hops = self.cohorts[c].hops;
            let mut m = self.cohorts[c].head;
            while m != NONE {
                let ridden = hops - self.ride_start[m as usize];
                self.ride_start[m as usize] = hops;
                self.metrics.credit_rider_moves(AgentId(m), ridden);
                m = self.next[m as usize];
            }
        }
    }

    // ------------------------------------------------------------------
    // Activation plumbing
    // ------------------------------------------------------------------

    /// Prepare `agent` for one activation (resets its per-activation move
    /// budget). Called by the runners.
    pub(crate) fn begin_activation(&mut self, agent: AgentId) {
        self.moved[agent.index()] = false;
    }

    /// Borrow an [`ActivationCtx`] for `agent`. Runners call this right after
    /// [`World::begin_activation`].
    pub(crate) fn ctx(&mut self, agent: AgentId, time: u64) -> ActivationCtx<'_> {
        ActivationCtx {
            world: self,
            agent,
            time,
        }
    }

    fn apply_move(&mut self, agent: AgentId, port: Port, time: u64) -> Result<Port, MoveError> {
        let a = agent.index();
        debug_assert_eq!(
            self.cohort_of[a], NONE,
            "riding agents are parked and never move themselves"
        );
        if self.moved[a] {
            return Err(MoveError::AlreadyMoved);
        }
        let from = self.positions[a];
        let degree = self.graph.degree(from);
        if port.0 == 0 || port.offset() >= degree {
            return Err(MoveError::InvalidPort { port, degree });
        }
        if let Some(live) = &self.liveness {
            if !live.is_alive(&self.graph, from, port) {
                return Err(MoveError::EdgeDown { port });
            }
        }
        // The port was just validated against `degree`, so take the
        // branch-free path (no re-validation, no internal dispatch work).
        let (to, pin) = self.graph.traverse_fast(from, port);
        self.moved[a] = true;
        self.unlink_from_node(a);
        self.link_to_node(a, to);
        self.metrics.record_move(agent);
        self.trace.record(TraceEvent::Move {
            agent,
            from,
            to,
            port,
            pin,
            time,
        });
        Ok(pin)
    }
}

/// Borrowed iterator over an intrusive agent list (node occupancy or cohort
/// membership). Zero allocation.
#[derive(Clone)]
pub struct AgentIter<'w> {
    next: &'w [u32],
    cur: u32,
}

impl Iterator for AgentIter<'_> {
    type Item = AgentId;

    #[inline]
    fn next(&mut self) -> Option<AgentId> {
        if self.cur == NONE {
            return None;
        }
        let a = AgentId(self.cur);
        self.cur = self.next[self.cur as usize];
        Some(a)
    }
}

/// An agent's restricted view of the world during one activation.
///
/// The context exposes exactly what the model allows an activated agent to
/// see and do: its own location's degree, the set of co-located agents, and
/// one move through a local port. Reading/writing co-located agents' *state*
/// is the protocol's business (the protocol owns all agent state); the
/// context provides the co-location information needed to do so lawfully —
/// plus the scheduling (park/wake) and cohort operations described in the
/// module docs, which are simulation-level accelerations of protocol-legal
/// behaviour.
pub struct ActivationCtx<'w> {
    world: &'w mut World,
    agent: AgentId,
    time: u64,
}

impl<'w> ActivationCtx<'w> {
    /// The agent being activated.
    #[inline]
    pub fn agent(&self) -> AgentId {
        self.agent
    }

    /// The node the agent currently occupies.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.world.positions[self.agent.index()]
    }

    /// Degree `δ_v` of the current node (the number of local ports).
    #[inline]
    pub fn degree(&self) -> usize {
        self.world.graph.degree(self.node())
    }

    /// The current simulation time (round number in SYNC, step number in
    /// ASYNC). Protocols may use it only for round-counting waits, which the
    /// model permits (agents can count their own activations).
    #[inline]
    pub fn time(&self) -> u64 {
        self.time
    }

    /// All concrete agents at the current node — **including** the activated
    /// agent — as a borrowing, zero-alloc iterator. Cohort members riding
    /// through the node are not listed (their driver speaks for them).
    #[inline]
    pub fn agents_here(&self) -> AgentIter<'_> {
        self.world.agents_at(self.node())
    }

    /// Iterator over the co-located agents (self excluded), borrowing from
    /// the world — no allocation.
    #[inline]
    pub fn colocated_iter(&self) -> impl Iterator<Item = AgentId> + '_ {
        let me = self.agent;
        self.agents_here().filter(move |&a| a != me)
    }

    /// Other agents co-located with this one (self excluded), as an owned
    /// vector. Prefer [`ActivationCtx::colocated_iter`] /
    /// [`ActivationCtx::agents_here`] in per-activation code — this variant
    /// allocates on every call.
    pub fn colocated(&self) -> Vec<AgentId> {
        self.colocated_iter().collect()
    }

    /// Number of co-located agents (self excluded).
    pub fn num_colocated(&self) -> usize {
        self.colocated_iter().count()
    }

    /// Whether this agent already used its move for this activation.
    #[inline]
    pub fn has_moved(&self) -> bool {
        self.world.moved[self.agent.index()]
    }

    /// Move through local port `port`; returns the incoming port (`pin`) at
    /// the destination.
    ///
    /// # Panics
    /// Panics if the agent already moved during this activation or the port
    /// is invalid — both indicate protocol bugs.
    pub fn move_via(&mut self, port: Port) -> Port {
        self.try_move_via(port)
            .unwrap_or_else(|e| panic!("agent {} illegal move: {e}", self.agent))
    }

    /// Fallible variant of [`ActivationCtx::move_via`]. In dynamic worlds
    /// this is the only lawful way to move: `Err(MoveError::EdgeDown)`
    /// means the adversary cut the edge this round, and the agent should
    /// wait (retry on a later activation) rather than panic.
    pub fn try_move_via(&mut self, port: Port) -> Result<Port, MoveError> {
        self.world.apply_move(self.agent, port, self.time)
    }

    /// Whether the edge behind `port` at the current node is alive right
    /// now. Always `true` in static worlds. Protocols may use this to avoid
    /// a doomed [`ActivationCtx::try_move_via`], but waiting on the error
    /// is equally correct.
    pub fn is_port_live(&self, port: Port) -> bool {
        match &self.world.liveness {
            Some(live) => live.is_alive(&self.world.graph, self.node(), port),
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Park `target` (often the activated agent itself): remove it from the
    /// runners' worklist. Only lawful when `target`'s future activations are
    /// guaranteed no-ops until some agent wakes it — see the module docs.
    pub fn park(&mut self, target: AgentId) {
        self.world.park(target);
    }

    /// Wake a parked agent (no-op when already active). Call whenever this
    /// agent's action makes `target` actionable again.
    pub fn wake(&mut self, target: AgentId) {
        self.world.wake(target);
    }

    /// Record a protocol-defined [`TraceEvent::Milestone`] for `target` at
    /// its current node (settlement, subsumption, phase change…). A no-op
    /// unless tracing is enabled, so protocols emit unconditionally; each
    /// protocol documents its `code` constants.
    pub fn milestone(&mut self, target: AgentId, code: u32) {
        if self.world.trace.is_enabled() {
            let node = self.world.positions[target.index()];
            self.world.trace.record(TraceEvent::Milestone {
                agent: target,
                node,
                code,
                time: self.time,
            });
        }
    }

    // ------------------------------------------------------------------
    // Cohorts
    // ------------------------------------------------------------------

    /// Enroll a co-located, concrete agent into this agent's cohort
    /// (creating the cohort on first use). The member is parked; its
    /// position follows the cohort until [`ActivationCtx::extract`].
    pub fn enroll(&mut self, member: AgentId) {
        self.world.enroll(self.agent, member);
    }

    /// Extract a member from this agent's cohort: it rematerializes at the
    /// cohort's node, is charged one move per edge ridden, and is woken.
    pub fn extract(&mut self, member: AgentId) {
        self.world.extract(self.agent, member);
    }

    /// Number of members currently riding this agent's cohort.
    pub fn cohort_len(&self) -> usize {
        self.world.cohort_len(self.agent)
    }

    /// Move this agent **and its cohort** through `port` as one operation:
    /// the driver pays a normal move, every member is charged one ride hop,
    /// and the cohort's node follows. Returns the driver's incoming port.
    ///
    /// # Panics
    /// Panics on an illegal driver move, or if the cohort is not at the
    /// driver's node (the driver wandered off on a solo trip and must return
    /// before moving the cohort).
    pub fn move_cohort_via(&mut self, port: Port) -> Port {
        self.try_move_cohort_via(port)
            .unwrap_or_else(|e| panic!("agent {} illegal cohort move: {e}", self.agent))
    }

    /// Fallible variant of [`ActivationCtx::move_cohort_via`]: returns
    /// `Err(MoveError::EdgeDown)` (leaving driver and cohort in place) when
    /// the adversary has cut the edge. A cohort away from the driver's node
    /// is still a protocol bug and still panics.
    pub fn try_move_cohort_via(&mut self, port: Port) -> Result<Port, MoveError> {
        let from = self.node();
        let c = self.world.driving[self.agent.index()];
        if c != NONE {
            let cohort = &self.world.cohorts[c as usize];
            assert_eq!(
                cohort.node, from,
                "cohort moves require the driver to be at the cohort's node"
            );
        }
        let pin = self.try_move_via(port)?;
        if c != NONE {
            let to = self.world.positions[self.agent.index()];
            let cohort = &mut self.world.cohorts[c as usize];
            cohort.node = to;
            if cohort.members > 0 {
                cohort.hops += 1;
                let members = cohort.members;
                self.world.metrics.record_cohort_move(members as u64);
                self.world.trace.record(TraceEvent::CohortMove {
                    driver: self.agent,
                    from,
                    to,
                    port,
                    members,
                    time: self.time,
                });
            }
        }
        Ok(pin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;

    fn world_on_ring(k: usize) -> World {
        World::new_rooted(generators::ring(6), k, NodeId(0))
    }

    fn at(w: &World, v: u32) -> Vec<AgentId> {
        w.agents_at(NodeId(v)).collect()
    }

    #[test]
    fn cohort_slots_are_recycled_when_a_cohort_empties() {
        let mut w = world_on_ring(4);
        w.begin_activation(AgentId(3));
        let mut ctx = w.ctx(AgentId(3), 0);
        ctx.enroll(AgentId(0));
        ctx.enroll(AgentId(1));
        ctx.move_cohort_via(Port(1));
        ctx.extract(AgentId(0));
        ctx.extract(AgentId(1));
        assert_eq!(w.cohort_len(AgentId(3)), 0);
        assert_eq!(w.cohorts.len(), 1);
        assert_eq!(w.free_cohorts, vec![0]);
        // A different driver's next convoy reuses the slot (agents 0 and 1
        // materialized at the old cohort's node, so 0 can drive 1).
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 1);
        ctx.enroll(AgentId(1));
        assert_eq!(w.cohorts.len(), 1);
        assert!(w.free_cohorts.is_empty());
        assert_eq!(w.cohort_len(AgentId(0)), 1);
        // The ride accounting starts fresh in the reused slot.
        assert_eq!(w.cohorts[0].hops, 0);
        assert_eq!(w.cohorts[0].driver, 0);
    }

    #[test]
    fn pooled_world_is_indistinguishable_from_a_fresh_one() {
        // Dirty a world thoroughly: convoys, moves, parks, a crash.
        let mut pool = WorldPool::new();
        let mut w = pool.take(generators::ring(6), vec![NodeId(0); 5]);
        w.begin_activation(AgentId(4));
        let mut ctx = w.ctx(AgentId(4), 0);
        ctx.enroll(AgentId(1));
        ctx.enroll(AgentId(2));
        ctx.move_cohort_via(Port(1));
        ctx.extract(AgentId(1));
        w.park(AgentId(0));
        w.crash(AgentId(3));
        pool.put(w);
        // Rebuild on a *different* instance and compare every field against
        // a from-scratch construction (Debug covers the full state).
        let spec = || (generators::line(7), vec![NodeId(3), NodeId(3), NodeId(0)]);
        let (g, pos) = spec();
        let recycled = pool.take(g, pos);
        let (g, pos) = spec();
        let fresh = World::new(g, pos);
        assert_eq!(format!("{recycled:?}"), format!("{fresh:?}"));
    }

    #[test]
    fn rooted_world_colocates_all_agents() {
        let w = world_on_ring(4);
        assert_eq!(w.num_agents(), 4);
        assert_eq!(at(&w, 0).len(), 4);
        assert_eq!(at(&w, 1).len(), 0);
        for a in 0..4 {
            assert_eq!(w.position(AgentId(a)), NodeId(0));
        }
        // List order is ascending by agent id at construction.
        assert_eq!(at(&w, 0), (0..4).map(AgentId).collect::<Vec<_>>());
    }

    #[test]
    fn move_updates_positions_and_colocation() {
        let mut w = world_on_ring(2);
        w.begin_activation(AgentId(0));
        let pin = w.ctx(AgentId(0), 0).move_via(Port(1));
        // Ring built with edges (i, i+1): port 1 of node 0 goes to node 1,
        // arriving on node 1's port 1.
        assert_eq!(pin, Port(1));
        assert_eq!(w.position(AgentId(0)), NodeId(1));
        assert_eq!(at(&w, 0), vec![AgentId(1)]);
        assert_eq!(at(&w, 1), vec![AgentId(0)]);
        assert_eq!(w.metrics().total_moves(), 1);
    }

    #[test]
    fn second_move_in_one_activation_is_rejected() {
        let mut w = world_on_ring(1);
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        ctx.move_via(Port(1));
        assert_eq!(ctx.try_move_via(Port(1)), Err(MoveError::AlreadyMoved));
    }

    #[test]
    fn next_activation_restores_move_budget() {
        let mut w = world_on_ring(1);
        for t in 0..6u64 {
            w.begin_activation(AgentId(0));
            w.ctx(AgentId(0), t).move_via(Port(2));
        }
        assert_eq!(w.metrics().total_moves(), 6);
        // Walking port 2 six times around a 6-ring returns to the start.
        assert_eq!(w.position(AgentId(0)), NodeId(0));
    }

    #[test]
    fn invalid_port_is_rejected() {
        let mut w = world_on_ring(1);
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        assert!(matches!(
            ctx.try_move_via(Port(3)),
            Err(MoveError::InvalidPort { .. })
        ));
        assert!(matches!(
            ctx.try_move_via(Port(0)),
            Err(MoveError::InvalidPort { .. })
        ));
    }

    #[test]
    fn colocated_excludes_self() {
        let mut w = world_on_ring(3);
        w.begin_activation(AgentId(1));
        let ctx = w.ctx(AgentId(1), 0);
        let peers = ctx.colocated();
        assert_eq!(peers.len(), 2);
        assert!(!peers.contains(&AgentId(1)));
        assert_eq!(ctx.num_colocated(), 2);
        // The borrowing views agree with the allocating one.
        assert_eq!(ctx.colocated_iter().collect::<Vec<_>>(), peers);
        assert_eq!(ctx.agents_here().count(), 3);
        assert!(ctx.agents_here().any(|a| a == AgentId(1)));
    }

    #[test]
    #[should_panic(expected = "k ≤ n")]
    fn more_agents_than_nodes_is_rejected() {
        let _ = World::new_rooted(generators::ring(3), 4, NodeId(0));
    }

    #[test]
    fn trace_records_moves_when_enabled() {
        let mut w = world_on_ring(1);
        w.enable_trace();
        w.begin_activation(AgentId(0));
        w.ctx(AgentId(0), 7).move_via(Port(1));
        assert_eq!(w.trace().events().len(), 1);
        match w.trace().events()[0] {
            TraceEvent::Move {
                agent,
                from,
                to,
                time,
                ..
            } => {
                assert_eq!(agent, AgentId(0));
                assert_eq!(from, NodeId(0));
                assert_eq!(to, NodeId(1));
                assert_eq!(time, 7);
            }
            _ => panic!("expected a move event"),
        }
    }

    #[test]
    fn park_and_wake_maintain_the_worklist() {
        let mut w = world_on_ring(4);
        assert_eq!(w.active_count(), 4);
        assert!(w.is_active(AgentId(2)));
        w.park(AgentId(2));
        w.park(AgentId(2)); // idempotent
        assert!(!w.is_active(AgentId(2)));
        assert_eq!(w.active_count(), 3);
        w.wake(AgentId(2));
        w.wake(AgentId(2)); // idempotent
        assert!(w.is_active(AgentId(2)));
        let mut buf = Vec::new();
        w.snapshot_active_sorted(&mut buf);
        assert_eq!(buf, (0..4).map(AgentId).collect::<Vec<_>>());
        // The transition log recorded the genuine transitions only (the
        // idempotent repeats left no trace).
        let mut log = Vec::new();
        w.drain_transitions(&mut log);
        assert_eq!(log, vec![(AgentId(2), false), (AgentId(2), true)]);
        w.drain_transitions(&mut log);
        assert!(log.is_empty());
    }

    #[test]
    fn cohort_ride_charges_members_and_tracks_position() {
        let mut w = world_on_ring(3);
        // Agent 2 drives agents 0 and 1 two hops around the ring.
        w.begin_activation(AgentId(2));
        let mut ctx = w.ctx(AgentId(2), 0);
        ctx.enroll(AgentId(0));
        ctx.enroll(AgentId(1));
        assert_eq!(ctx.cohort_len(), 2);
        ctx.move_cohort_via(Port(1));
        assert_eq!(w.position(AgentId(0)), NodeId(1));
        assert_eq!(w.position(AgentId(1)), NodeId(1));
        assert_eq!(at(&w, 1), vec![AgentId(2)], "riders are not listed");
        assert!(!w.is_active(AgentId(0)), "riders are parked");
        // 1 driver move + 2 rider hops.
        assert_eq!(w.metrics().total_moves(), 3);

        w.begin_activation(AgentId(2));
        w.ctx(AgentId(2), 1).move_cohort_via(Port(2));
        assert_eq!(w.metrics().total_moves(), 6);
        assert_eq!(w.position(AgentId(0)), NodeId(2));

        // Extraction materializes at the cohort node, charges the ride and
        // wakes the member.
        w.begin_activation(AgentId(2));
        let mut ctx = w.ctx(AgentId(2), 2);
        ctx.extract(AgentId(0));
        assert_eq!(ctx.cohort_len(), 1);
        assert_eq!(w.position(AgentId(0)), NodeId(2));
        assert!(w.is_active(AgentId(0)));
        assert!(at(&w, 2).contains(&AgentId(0)));
        assert_eq!(w.metrics().moves_of(AgentId(0)), 2);
        assert_eq!(w.metrics().moves_of(AgentId(1)), 0, "still pending");
        w.sync_ride_accounting();
        assert_eq!(w.metrics().moves_of(AgentId(1)), 2);
        assert_eq!(w.metrics().max_moves_per_agent(), 2);
    }

    #[test]
    fn driver_solo_trip_leaves_cohort_behind() {
        let mut w = world_on_ring(2);
        w.begin_activation(AgentId(1));
        let mut ctx = w.ctx(AgentId(1), 0);
        ctx.enroll(AgentId(0));
        ctx.move_via(Port(1)); // solo: cohort stays at node 0
        assert_eq!(w.position(AgentId(0)), NodeId(0));
        assert_eq!(w.position(AgentId(1)), NodeId(1));
        // Coming back, the driver may move the cohort again.
        w.begin_activation(AgentId(1));
        w.ctx(AgentId(1), 1).move_via(Port(1));
        assert_eq!(w.position(AgentId(1)), NodeId(0));
        w.begin_activation(AgentId(1));
        w.ctx(AgentId(1), 2).move_cohort_via(Port(2));
        assert_eq!(w.position(AgentId(0)), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "driver to be at the cohort's node")]
    fn moving_the_cohort_from_afar_is_rejected() {
        let mut w = world_on_ring(2);
        w.begin_activation(AgentId(1));
        let mut ctx = w.ctx(AgentId(1), 0);
        ctx.enroll(AgentId(0));
        ctx.move_via(Port(1));
        w.begin_activation(AgentId(1));
        w.ctx(AgentId(1), 1).move_cohort_via(Port(1));
    }

    #[test]
    fn snapshot_positions_sees_riders() {
        let mut w = world_on_ring(3);
        w.begin_activation(AgentId(2));
        let mut ctx = w.ctx(AgentId(2), 0);
        ctx.enroll(AgentId(0));
        ctx.move_cohort_via(Port(1));
        assert_eq!(
            w.snapshot_positions(),
            vec![NodeId(1), NodeId(0), NodeId(1)]
        );
    }

    // ------------------------------------------------------------------
    // Dynamic edges and crash faults
    // ------------------------------------------------------------------

    #[test]
    fn dead_edges_refuse_moves_until_revived() {
        let mut w = world_on_ring(1);
        assert!(w.kill_edge(NodeId(0), Port(1))); // edge 0–1 down
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        assert!(!ctx.is_port_live(Port(1)));
        assert!(ctx.is_port_live(Port(2)));
        assert!(matches!(
            ctx.try_move_via(Port(1)),
            Err(MoveError::EdgeDown { port: Port(1) })
        ));
        // A refused move does not consume the per-activation move budget
        // and leaves the agent in place.
        assert!(!ctx.has_moved());
        assert_eq!(w.position(AgentId(0)), NodeId(0));
        assert_eq!(w.metrics().total_moves(), 0);
        assert!(w.revive_edge(NodeId(0), Port(1)));
        w.begin_activation(AgentId(0));
        assert_eq!(w.ctx(AgentId(0), 1).try_move_via(Port(1)), Ok(Port(1)));
        assert_eq!(w.position(AgentId(0)), NodeId(1));
    }

    #[test]
    fn cohort_moves_respect_dead_edges() {
        let mut w = world_on_ring(2);
        w.kill_edge(NodeId(0), Port(1));
        w.begin_activation(AgentId(1));
        let mut ctx = w.ctx(AgentId(1), 0);
        ctx.enroll(AgentId(0));
        assert!(matches!(
            ctx.try_move_cohort_via(Port(1)),
            Err(MoveError::EdgeDown { .. })
        ));
        // Nothing moved: driver, rider and cohort node all stay put.
        assert_eq!(w.position(AgentId(1)), NodeId(0));
        assert_eq!(w.position(AgentId(0)), NodeId(0));
        assert_eq!(w.metrics().total_moves(), 0);
        w.begin_activation(AgentId(1));
        w.ctx(AgentId(1), 1).move_cohort_via(Port(2));
        assert_eq!(w.position(AgentId(0)), NodeId(5));
    }

    #[test]
    fn crashing_a_settled_agent_orphans_its_node() {
        let mut w = world_on_ring(2);
        w.begin_activation(AgentId(0));
        let mut ctx = w.ctx(AgentId(0), 0);
        ctx.park(AgentId(0)); // "settled" from the scheduler's viewpoint
        w.crash(AgentId(0));
        assert!(w.is_dead(AgentId(0)));
        assert_eq!(w.dead_count(), 1);
        assert_eq!(w.alive_count(), 1);
        // The node is orphaned: occupancy no longer lists the corpse, so a
        // surviving agent sees an empty node and may re-settle there …
        assert_eq!(at(&w, 0), vec![AgentId(1)]);
        // … but the last position stays readable for forensics/verify.
        assert_eq!(w.position(AgentId(0)), NodeId(0));
        assert!(!w.is_active(AgentId(0)));
    }

    #[test]
    fn crashing_a_driver_disbands_its_cohort_in_place() {
        let mut w = world_on_ring(3);
        w.begin_activation(AgentId(2));
        let mut ctx = w.ctx(AgentId(2), 0);
        ctx.enroll(AgentId(0));
        ctx.enroll(AgentId(1));
        ctx.move_cohort_via(Port(1));
        w.crash(AgentId(2));
        // Riders rematerialize at the cohort node, charged and woken; only
        // the driver is gone.
        assert_eq!(w.position(AgentId(0)), NodeId(1));
        assert_eq!(w.position(AgentId(1)), NodeId(1));
        assert!(w.is_active(AgentId(0)));
        assert!(w.is_active(AgentId(1)));
        assert!(!w.is_dead(AgentId(0)));
        assert!(w.is_dead(AgentId(2)));
        let here = at(&w, 1);
        assert!(here.contains(&AgentId(0)) && here.contains(&AgentId(1)));
        assert!(!here.contains(&AgentId(2)));
        assert_eq!(w.metrics().moves_of(AgentId(0)), 1);
    }

    #[test]
    fn crashing_a_rider_extracts_only_that_rider() {
        let mut w = world_on_ring(3);
        w.begin_activation(AgentId(2));
        let mut ctx = w.ctx(AgentId(2), 0);
        ctx.enroll(AgentId(0));
        ctx.enroll(AgentId(1));
        ctx.move_cohort_via(Port(1));
        w.crash(AgentId(0));
        // The crashed rider is accounted for (its ride hops are credited)
        // and removed; the cohort keeps rolling with the survivor.
        assert!(w.is_dead(AgentId(0)));
        assert_eq!(w.position(AgentId(0)), NodeId(1));
        assert!(!w.is_active(AgentId(0)));
        assert_eq!(w.cohort_len(AgentId(2)), 1);
        w.begin_activation(AgentId(2));
        w.ctx(AgentId(2), 1).move_cohort_via(Port(2));
        assert_eq!(w.position(AgentId(1)), NodeId(2));
        assert_eq!(w.position(AgentId(0)), NodeId(1), "corpse stays behind");
    }

    #[test]
    #[should_panic(expected = "crashed twice")]
    fn double_crash_is_rejected() {
        let mut w = world_on_ring(2);
        w.crash(AgentId(0));
        w.crash(AgentId(0));
    }
}
