//! The protocol trait implemented by dispersion algorithms.

use crate::ids::AgentId;
use crate::world::ActivationCtx;

/// A mobile-agent protocol.
///
/// The protocol object owns the persistent state of *all* agents (that is
/// just an implementation convenience — conceptually each agent owns its own
/// slice of it). The runners call [`AgentProtocol::on_activate`] once per CCM
/// cycle of an agent; the implementation must base its decisions only on
/// that agent's own state, the states of co-located agents (the paper's
/// local communication model allows reading and writing those), and the
/// local information exposed by [`ActivationCtx`].
pub trait AgentProtocol {
    /// One Communicate–Compute–Move cycle of `agent`.
    fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>);

    /// Whether the protocol has (locally detectably) finished. Runners stop
    /// at the end of the round/step in which this becomes true.
    fn is_terminated(&self) -> bool;

    /// Whether `agent` currently considers itself settled. Dispersion
    /// protocols should override this; it powers the every-step safety
    /// invariant ("no two settled agents share a node") checked by the
    /// invariant harness, and defaults to `false` for protocols without a
    /// settlement notion.
    fn is_settled(&self, _agent: AgentId) -> bool {
        false
    }

    /// Notification that `agent` crashed (crash-fault adversary). Called by
    /// the runners *after* the world has removed the agent, so the protocol
    /// can retract any claims the corpse held (e.g. un-count a settled node
    /// so survivors may re-settle it). Crash-tolerant protocols override
    /// this; the default ignores the fault, which is correct for protocols
    /// only ever run in fault-free worlds.
    fn on_crash(&mut self, _agent: AgentId) {}

    /// Persistent memory of `agent` in bits, counted as the paper counts it:
    /// the number of bits stored at the agent *between* CCM cycles (temporary
    /// compute-phase memory is free).
    fn memory_bits(&self, agent: AgentId) -> usize;

    /// The current maximum of [`memory_bits`](AgentProtocol::memory_bits)
    /// over all agents, if the protocol can produce it in `O(1)` — e.g. from
    /// per-role counts when the footprint is a function of the role alone.
    /// The runners' periodic memory sampling uses this fast path when it is
    /// available and falls back to the `O(k)` per-agent scan otherwise. An
    /// override MUST return exactly the value the scan would compute; the
    /// differential suite cross-checks this against scan-path references.
    fn max_memory_bits(&self) -> Option<usize> {
        None
    }

    /// Per-role class histogram: push one `(class-name, live-agent-count)`
    /// pair per protocol role, in the protocol's canonical order. The
    /// flight recorder ([`crate::timeline`]) calls this at every sampled
    /// round/epoch boundary, so an override must run in O(classes) — the
    /// SoA protocol cores satisfy that from their incrementally-maintained
    /// per-class counts. Protocols with a settlement notion must name the
    /// settled role exactly `"settled"`; the recorder derives its settled
    /// count by summing classes of that name. The default pushes nothing,
    /// which the recorder reports as an unknown class breakdown (settled
    /// count 0).
    fn class_counts(&self, _out: &mut Vec<(&'static str, u32)>) {}

    /// Human-readable protocol name (used in reports and traces).
    fn name(&self) -> &'static str {
        "unnamed-protocol"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Idle;
    impl AgentProtocol for Idle {
        fn on_activate(&mut self, _agent: AgentId, _ctx: &mut ActivationCtx<'_>) {}
        fn is_terminated(&self) -> bool {
            true
        }
        fn memory_bits(&self, _agent: AgentId) -> usize {
            0
        }
    }

    #[test]
    fn default_name() {
        assert_eq!(Idle.name(), "unnamed-protocol");
    }
}
