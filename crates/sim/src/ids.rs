//! Agent identifiers.

use std::fmt;

/// Index of an agent in a [`crate::World`] (`0..k`).
///
/// This is the *simulator's* handle for an agent. The *algorithmic* unique ID
/// (the paper's `a_i.ID ∈ [1, k^O(1)]`) is stored by the protocol itself and
/// accounted in its memory footprint; by default [`crate::World::new_rooted`]
/// and friends assign algorithmic IDs equal to `index + 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

impl AgentId {
    /// The underlying index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_and_index() {
        assert_eq!(AgentId(4).index(), 4);
        assert_eq!(format!("{:?}", AgentId(4)), "a4");
        assert_eq!(format!("{}", AgentId(4)), "4");
        assert!(AgentId(1) < AgentId(2));
    }
}
