//! Optional event tracing for debugging and for tests that assert on
//! fine-grained behaviour (e.g. "the seeker met the oscillating settler").

use crate::ids::AgentId;
use disp_graph::{NodeId, Port};

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An agent traversed an edge.
    Move {
        /// The agent that moved.
        agent: AgentId,
        /// Node it left.
        from: NodeId,
        /// Node it arrived at.
        to: NodeId,
        /// Port used at `from`.
        port: Port,
        /// Incoming port observed at `to`.
        pin: Port,
        /// Round (SYNC) or step (ASYNC) at which the move happened.
        time: u64,
    },
    /// A driver moved its whole cohort across an edge (one event for the
    /// `members` rides; the driver's own traversal is a separate
    /// [`TraceEvent::Move`]).
    CohortMove {
        /// The driving agent.
        driver: AgentId,
        /// Node the cohort left.
        from: NodeId,
        /// Node the cohort arrived at.
        to: NodeId,
        /// Port used at `from`.
        port: Port,
        /// Number of riding members charged one move each.
        members: u32,
        /// Round (SYNC) or step (ASYNC) at which the move happened.
        time: u64,
    },
    /// A protocol-defined milestone (settlement, subsumption, phase change…).
    Milestone {
        /// The agent the milestone concerns.
        agent: AgentId,
        /// Node at which it happened.
        node: NodeId,
        /// Protocol-defined code (documented by each protocol).
        code: u32,
        /// Round/step.
        time: u64,
    },
}

/// Default bound on recorded events ([`Trace::enabled`] uses it): enough
/// for every scale-campaign trial the repo runs, small enough that an
/// accidentally traced 10^6-agent run cannot eat the machine.
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

/// A bounded-growth event log. Disabled by default; when disabled, recording
/// is a no-op so protocols can emit milestones unconditionally. When the cap
/// is reached further events are dropped (never an error) and
/// [`Trace::truncated`] reports the loss.
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    dropped: u64,
    events: Vec<TraceEvent>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A trace that ignores all events.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            cap: DEFAULT_TRACE_CAP,
            dropped: 0,
            events: Vec::new(),
        }
    }

    /// A trace that records up to [`DEFAULT_TRACE_CAP`] events.
    pub fn enabled() -> Self {
        Trace::enabled_with_cap(DEFAULT_TRACE_CAP)
    }

    /// A trace that records up to `cap` events, then drops the rest and
    /// marks itself [`truncated`](Trace::truncated).
    pub fn enabled_with_cap(cap: usize) -> Self {
        Trace {
            enabled: true,
            cap,
            dropped: 0,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The bound on recorded events.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Whether any event was dropped because the cap was reached.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// How many events were dropped after the cap was reached. Exported in
    /// the `trace_end` marker of JSONL trace dumps so consumers can tell
    /// *how* lossy a truncated trace is, not just that it is.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record an event (no-op when disabled; drops once the cap is hit).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded `Move` events.
    pub fn move_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Move { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_ignores_events() {
        let mut t = Trace::disabled();
        t.record(TraceEvent::Milestone {
            agent: AgentId(0),
            node: NodeId(0),
            code: 1,
            time: 0,
        });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_counts() {
        let mut t = Trace::enabled();
        t.record(TraceEvent::Move {
            agent: AgentId(0),
            from: NodeId(0),
            to: NodeId(1),
            port: Port(1),
            pin: Port(2),
            time: 3,
        });
        t.record(TraceEvent::Milestone {
            agent: AgentId(0),
            node: NodeId(1),
            code: 9,
            time: 4,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.move_count(), 1);
        assert!(!t.truncated());
    }

    #[test]
    fn cap_bounds_growth_and_marks_truncation() {
        let mut t = Trace::enabled_with_cap(3);
        for i in 0..10 {
            t.record(TraceEvent::Milestone {
                agent: AgentId(0),
                node: NodeId(0),
                code: i,
                time: i as u64,
            });
        }
        assert_eq!(t.events().len(), 3);
        assert!(t.truncated());
        assert_eq!(t.dropped(), 7, "10 recorded, 3 kept, 7 dropped");
        assert_eq!(t.cap(), 3);
        // The retained prefix is the first `cap` events, in order.
        let codes: Vec<u32> = t
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Milestone { code, .. } => *code,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(codes, vec![0, 1, 2]);
    }

    #[test]
    fn disabled_trace_never_truncates() {
        let mut t = Trace::disabled();
        for _ in 0..5 {
            t.record(TraceEvent::Milestone {
                agent: AgentId(0),
                node: NodeId(0),
                code: 1,
                time: 0,
            });
        }
        assert!(t.events().is_empty());
        assert!(!t.truncated());
        assert_eq!(t.dropped(), 0);
    }
}
