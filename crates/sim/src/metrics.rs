//! Movement, time and memory metrics; the per-run [`Outcome`] summary.

use crate::ids::AgentId;

/// Counters accumulated while a protocol runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    total_moves: u64,
    moves_per_agent: Vec<u64>,
    peak_memory_bits: usize,
    memory_samples: u64,
}

impl Metrics {
    /// Fresh metrics for `k` agents.
    pub fn new(k: usize) -> Self {
        Metrics {
            total_moves: 0,
            moves_per_agent: vec![0; k],
            peak_memory_bits: 0,
            memory_samples: 0,
        }
    }

    /// Reset to the state of `Metrics::new(k)` while keeping the per-agent
    /// buffer's allocation (the `WorldPool` rebuild path).
    pub fn into_reset(mut self, k: usize) -> Self {
        self.total_moves = 0;
        self.moves_per_agent.clear();
        self.moves_per_agent.resize(k, 0);
        self.peak_memory_bits = 0;
        self.memory_samples = 0;
        self
    }

    /// Record one edge traversal by `agent`.
    pub fn record_move(&mut self, agent: AgentId) {
        self.total_moves += 1;
        self.moves_per_agent[agent.index()] += 1;
    }

    /// Record one cohort hop: `riders` members traversed an edge together.
    /// Only the total is bumped eagerly; per-agent attribution happens when
    /// a rider is extracted ([`Metrics::credit_rider_moves`]).
    pub fn record_cohort_move(&mut self, riders: u64) {
        self.total_moves += riders;
    }

    /// Attribute `delta` ridden edges to `agent` (extraction / accounting
    /// flush). Does not touch the total, which was counted per hop.
    pub fn credit_rider_moves(&mut self, agent: AgentId, delta: u64) {
        self.moves_per_agent[agent.index()] += delta;
    }

    /// Record a sample of the maximum per-agent persistent memory, in bits.
    pub fn record_memory_sample(&mut self, max_bits_over_agents: usize) {
        self.peak_memory_bits = self.peak_memory_bits.max(max_bits_over_agents);
        self.memory_samples += 1;
    }

    /// Total edge traversals by all agents.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Edge traversals of one agent.
    pub fn moves_of(&self, agent: AgentId) -> u64 {
        self.moves_per_agent[agent.index()]
    }

    /// The largest per-agent move count.
    pub fn max_moves_per_agent(&self) -> u64 {
        self.moves_per_agent.iter().copied().max().unwrap_or(0)
    }

    /// Peak (over sampled instants) of the maximum (over agents) persistent
    /// memory, in bits.
    pub fn peak_memory_bits(&self) -> usize {
        self.peak_memory_bits
    }

    /// Number of memory samples taken.
    pub fn memory_samples(&self) -> u64 {
        self.memory_samples
    }
}

/// Summary of one protocol execution, as produced by the runners.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Completed SYNC rounds (0 for ASYNC runs).
    pub rounds: u64,
    /// Completed ASYNC scheduler steps (0 for SYNC runs).
    pub steps: u64,
    /// Completed epochs (equals `rounds` for SYNC runs).
    pub epochs: u64,
    /// Total individual agent activations.
    pub activations: u64,
    /// Total edge traversals by all agents.
    pub total_moves: u64,
    /// Largest per-agent number of edge traversals.
    pub max_moves_per_agent: u64,
    /// Peak per-agent persistent memory observed, in bits.
    pub peak_memory_bits: usize,
    /// Whether the protocol reported termination (as opposed to hitting a
    /// runner limit).
    pub terminated: bool,
    /// Number of agents.
    pub k: usize,
    /// Number of graph nodes.
    pub n: usize,
    /// Number of graph edges.
    pub m: usize,
    /// Maximum degree of the graph.
    pub max_degree: usize,
}

impl Outcome {
    /// The time measure the paper uses: rounds for SYNC, epochs for ASYNC.
    pub fn time(&self) -> u64 {
        if self.steps == 0 {
            self.rounds
        } else {
            self.epochs
        }
    }

    /// Flatten into stable `(field, value)` pairs for streaming writers
    /// (JSONL, CSV). `terminated` is encoded as 0/1. The field names are part
    /// of the on-disk campaign format; [`Outcome::from_named`] is the inverse.
    pub fn flat_fields(&self) -> [(&'static str, u64); 12] {
        [
            ("rounds", self.rounds),
            ("steps", self.steps),
            ("epochs", self.epochs),
            ("activations", self.activations),
            ("total_moves", self.total_moves),
            ("max_moves_per_agent", self.max_moves_per_agent),
            ("peak_memory_bits", self.peak_memory_bits as u64),
            ("terminated", self.terminated as u64),
            ("k", self.k as u64),
            ("n", self.n as u64),
            ("m", self.m as u64),
            ("max_degree", self.max_degree as u64),
        ]
    }

    /// Rebuild an outcome from a field lookup (e.g. a parsed JSON object).
    /// Returns `None` if any field of the [`Outcome::flat_fields`] schema is
    /// missing.
    pub fn from_named(mut get: impl FnMut(&'static str) -> Option<u64>) -> Option<Outcome> {
        Some(Outcome {
            rounds: get("rounds")?,
            steps: get("steps")?,
            epochs: get("epochs")?,
            activations: get("activations")?,
            total_moves: get("total_moves")?,
            max_moves_per_agent: get("max_moves_per_agent")?,
            peak_memory_bits: get("peak_memory_bits")? as usize,
            terminated: get("terminated")? != 0,
            k: get("k")? as usize,
            n: get("n")? as usize,
            m: get("m")? as usize,
            max_degree: get("max_degree")? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn move_accounting() {
        let mut m = Metrics::new(3);
        m.record_move(AgentId(0));
        m.record_move(AgentId(0));
        m.record_move(AgentId(2));
        assert_eq!(m.total_moves(), 3);
        assert_eq!(m.moves_of(AgentId(0)), 2);
        assert_eq!(m.moves_of(AgentId(1)), 0);
        assert_eq!(m.max_moves_per_agent(), 2);
    }

    #[test]
    fn memory_peak_is_monotone() {
        let mut m = Metrics::new(1);
        m.record_memory_sample(10);
        m.record_memory_sample(4);
        m.record_memory_sample(25);
        m.record_memory_sample(7);
        assert_eq!(m.peak_memory_bits(), 25);
        assert_eq!(m.memory_samples(), 4);
    }

    #[test]
    fn outcome_time_prefers_rounds_for_sync() {
        let sync = Outcome {
            rounds: 12,
            steps: 0,
            epochs: 12,
            activations: 0,
            total_moves: 0,
            max_moves_per_agent: 0,
            peak_memory_bits: 0,
            terminated: true,
            k: 1,
            n: 1,
            m: 0,
            max_degree: 0,
        };
        assert_eq!(sync.time(), 12);
        let asynch = Outcome {
            rounds: 0,
            steps: 99,
            epochs: 7,
            ..sync.clone()
        };
        assert_eq!(asynch.time(), 7);
    }

    #[test]
    fn flat_fields_round_trip_through_from_named() {
        let out = Outcome {
            rounds: 12,
            steps: 34,
            epochs: 7,
            activations: 99,
            total_moves: 41,
            max_moves_per_agent: 6,
            peak_memory_bits: 17,
            terminated: true,
            k: 8,
            n: 9,
            m: 10,
            max_degree: 3,
        };
        let fields = out.flat_fields();
        let lookup = |name: &'static str| fields.iter().find(|(f, _)| *f == name).map(|&(_, v)| v);
        assert_eq!(Outcome::from_named(lookup), Some(out.clone()));
        assert_eq!(Outcome::from_named(|_| None), None);
    }
}
