//! The protocol **flight recorder**: a constant-space timeline of how a
//! run progresses, sampled at round (SYNC) or epoch (ASYNC) boundaries.
//!
//! Full traces ([`crate::trace`]) are O(steps) and unusable at `n = 10^6`;
//! the quantities that the paper's separations are *about* — settled
//! fraction, role churn, dead-edge pressure — change at boundary
//! granularity and are maintained incrementally by the protocol cores
//! anyway ([`crate::protocol::AgentProtocol::class_counts`]). The recorder
//! samples them into a fixed budget (default [`DEFAULT_TIMELINE_BUDGET`]
//! points) with **deterministic stride-doubling decimation**:
//!
//! * points are recorded at times divisible by the current `stride`
//!   (initially 1);
//! * when the buffer reaches the budget, every point whose time is not
//!   divisible by `2 × stride` is dropped and the stride doubles.
//!
//! Time 0 survives every decimation (`0 mod s = 0` for all `s`), the final
//! point is force-recorded, and which points survive depends only on the
//! sequence of sample times — never on wall clock, thread count, or
//! allocation addresses — so the recorded timeline is a **pure function of
//! the run**. A `10^6`-round run costs the same memory as a 100-round one:
//! the buffer never holds more than `budget + 1` points.

use std::fmt;

/// Default point budget: enough resolution for any plot, small enough that
/// a recorder is always O(1) memory regardless of run length.
pub const DEFAULT_TIMELINE_BUDGET: usize = 4096;

/// One sampled instant of a run, taken at a round/epoch boundary.
///
/// Counts are observations of world + protocol state; recording a point
/// never mutates either (the "observation, never content" rule — results
/// are byte-identical with the recorder on or off).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Boundary time: the round count (SYNC) or epoch count (ASYNC) at
    /// which the sample was taken.
    pub time: u64,
    /// Agents whose protocol class is named `"settled"` (0 when the
    /// protocol does not report class counts).
    pub settled: u64,
    /// Agents on the world's active worklist.
    pub active: u64,
    /// Agents neither active nor crashed (parked by the protocol).
    pub parked: u64,
    /// Agents removed by the crash-fault adversary.
    pub crashed: u64,
    /// Cumulative edge traversals so far.
    pub moves: u64,
    /// Edges currently down under the dynamic-graph adversary (0 in
    /// static worlds).
    pub dead_edges: u64,
    /// Size of the adversary batch executed just before the sample
    /// (0 under the SYNC scheduler and for the initial point).
    pub batch: u64,
    /// Per-role class histogram as reported by
    /// [`crate::protocol::AgentProtocol::class_counts`]: `(name, count)`
    /// pairs in the protocol's canonical order. Empty when the protocol
    /// does not maintain incremental counts.
    pub classes: Vec<(&'static str, u32)>,
}

/// A fixed-budget boundary sampler. Drive it with [`wants`] +
/// [`record`] at boundaries and [`record_final`] once at the end, then
/// take the result with [`finish`].
///
/// [`wants`]: TimelineRecorder::wants
/// [`record`]: TimelineRecorder::record
/// [`record_final`]: TimelineRecorder::record_final
/// [`finish`]: TimelineRecorder::finish
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    budget: usize,
    stride: u64,
    points: Vec<TimelinePoint>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        TimelineRecorder::new()
    }
}

impl TimelineRecorder {
    /// A recorder with the [`DEFAULT_TIMELINE_BUDGET`].
    pub fn new() -> Self {
        TimelineRecorder::with_budget(DEFAULT_TIMELINE_BUDGET)
    }

    /// A recorder bounded at `budget` points (clamped to ≥ 4 so the
    /// decimation always has room to halve).
    pub fn with_budget(budget: usize) -> Self {
        TimelineRecorder {
            budget: budget.max(4),
            stride: 1,
            points: Vec::new(),
        }
    }

    /// The point budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The current sampling stride (a power of two; 1 until the first
    /// decimation).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Whether a boundary at `time` should be sampled. Cheap enough for a
    /// per-round check in the hot loop: one modulo and one compare.
    pub fn wants(&self, time: u64) -> bool {
        time.is_multiple_of(self.stride) && self.points.last().is_none_or(|p| p.time != time)
    }

    /// Record a point sampled at a time for which [`wants`] returned
    /// `true`. When the buffer reaches the budget, points off the doubled
    /// stride are dropped and the stride doubles.
    ///
    /// [`wants`]: TimelineRecorder::wants
    pub fn record(&mut self, point: TimelinePoint) {
        debug_assert!(
            point.time.is_multiple_of(self.stride),
            "recorded time {} off stride {}",
            point.time,
            self.stride
        );
        self.points.push(point);
        if self.points.len() >= self.budget {
            let doubled = self.stride * 2;
            self.points.retain(|p| p.time.is_multiple_of(doubled));
            self.stride = doubled;
        }
    }

    /// Force-record the final point of a run regardless of stride. If the
    /// last recorded point has the same time it is replaced (the final
    /// state wins), so times stay strictly increasing.
    pub fn record_final(&mut self, point: TimelinePoint) {
        match self.points.last_mut() {
            Some(last) if last.time == point.time => *last = point,
            _ => self.points.push(point),
        }
    }

    /// Consume the recorder into the finished [`Timeline`].
    pub fn finish(self) -> Timeline {
        Timeline {
            stride: self.stride,
            budget: self.budget,
            points: self.points,
        }
    }
}

/// The finished product of a [`TimelineRecorder`]: the surviving points in
/// strictly increasing time order, plus the stride they ended up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// Surviving sample points, time-sorted. All interior points lie on
    /// `stride`; the final point is exact.
    pub points: Vec<TimelinePoint>,
    /// The sampling stride after the last decimation (a power of two).
    pub stride: u64,
    /// The budget the recorder ran with.
    pub budget: usize,
}

impl Timeline {
    /// How many times the recorder decimated: `log2(stride)`. Exported as
    /// a gauge so lossy-looking timelines are visible on `/metrics`.
    pub fn decimation_level(&self) -> u32 {
        self.stride.trailing_zeros()
    }

    /// The settled count of the final point (0 for an empty timeline).
    pub fn final_settled(&self) -> u64 {
        self.points.last().map_or(0, |p| p.settled)
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "timeline: {} points, stride {}, decimation level {}",
            self.points.len(),
            self.stride,
            self.decimation_level()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(time: u64) -> TimelinePoint {
        TimelinePoint {
            time,
            settled: time / 2,
            active: 10,
            parked: 0,
            crashed: 0,
            moves: time * 3,
            dead_edges: 0,
            batch: 0,
            classes: Vec::new(),
        }
    }

    /// Drive a recorder over `0..=t_max` boundaries the way a runner does.
    fn drive(budget: usize, t_max: u64) -> Timeline {
        let mut rec = TimelineRecorder::with_budget(budget);
        for t in 0..=t_max {
            if rec.wants(t) {
                rec.record(point(t));
            }
        }
        rec.record_final(point(t_max));
        rec.finish()
    }

    #[test]
    fn short_runs_keep_every_boundary() {
        let tl = drive(4096, 100);
        assert_eq!(tl.points.len(), 101);
        assert_eq!(tl.stride, 1);
        assert_eq!(tl.decimation_level(), 0);
        let times: Vec<u64> = tl.points.iter().map(|p| p.time).collect();
        assert_eq!(times, (0..=100).collect::<Vec<_>>());
    }

    #[test]
    fn long_runs_stay_within_budget_plus_final() {
        for t_max in [1_000u64, 10_000, 1_000_000] {
            let tl = drive(64, t_max);
            assert!(
                tl.points.len() <= 64 + 1,
                "t_max={t_max}: {} points exceed budget",
                tl.points.len()
            );
            assert!(tl.stride.is_power_of_two());
            assert!(tl.stride > 1, "t_max={t_max} must have decimated");
        }
    }

    #[test]
    fn first_and_last_points_always_survive() {
        for t_max in [5u64, 63, 64, 65, 4096, 100_000] {
            let tl = drive(16, t_max);
            assert_eq!(tl.points.first().unwrap().time, 0, "t_max={t_max}");
            assert_eq!(tl.points.last().unwrap().time, t_max, "t_max={t_max}");
        }
    }

    #[test]
    fn times_are_strictly_increasing_and_on_stride() {
        let tl = drive(32, 12_345);
        for w in tl.points.windows(2) {
            assert!(w[0].time < w[1].time);
        }
        // All but the forced final point lie on the stride.
        for p in &tl.points[..tl.points.len() - 1] {
            assert_eq!(
                p.time % tl.stride,
                0,
                "time {} off stride {}",
                p.time,
                tl.stride
            );
        }
    }

    #[test]
    fn decimated_timeline_is_a_subsequence_of_the_undecimated_one() {
        // The property-test half of satellite 3, at the unit level: every
        // surviving point appears verbatim in a run recorded with an
        // effectively unbounded budget.
        let t_max = 50_000u64;
        let reference = drive(1 << 20, t_max);
        let decimated = drive(64, t_max);
        let mut ref_iter = reference.points.iter();
        for p in &decimated.points {
            assert!(
                ref_iter.any(|r| r == p),
                "point at t={} missing from (or out of order in) the reference",
                p.time
            );
        }
    }

    #[test]
    fn recording_is_deterministic() {
        let a = drive(64, 99_999);
        let b = drive(64, 99_999);
        assert_eq!(a, b);
    }

    #[test]
    fn final_point_replaces_same_time_sample() {
        let mut rec = TimelineRecorder::with_budget(16);
        rec.record(point(0));
        rec.record(point(1));
        let mut fin = point(1);
        fin.settled = 42;
        rec.record_final(fin);
        let tl = rec.finish();
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points.last().unwrap().settled, 42);
    }

    #[test]
    fn zero_length_run_records_one_point() {
        let tl = drive(16, 0);
        assert_eq!(tl.points.len(), 1);
        assert_eq!(tl.points[0].time, 0);
    }

    #[test]
    fn wants_dedups_and_respects_stride() {
        let mut rec = TimelineRecorder::with_budget(4);
        assert!(rec.wants(0));
        rec.record(point(0));
        assert!(!rec.wants(0), "same boundary must not sample twice");
        for t in 1..=200 {
            if rec.wants(t) {
                rec.record(point(t));
            }
        }
        assert!(rec.stride() > 1);
        assert!(!rec.wants(rec.stride() + 1), "off-stride time refused");
    }
}
