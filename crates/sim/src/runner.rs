//! Synchronous and asynchronous execution drivers.
//!
//! Both runners schedule off the world's **active-agent worklist** (see
//! [`crate::world`]): agents parked by the protocol are skipped instead of
//! activated into a guaranteed no-op. In SYNC the skipped activations are
//! credited per round; in ASYNC the event-driven adversary schedules only
//! active agents and the clock bulk-credits parked agents once per epoch at
//! the boundary (the adversarial procrastination rule — see
//! [`crate::clock::Clock`]), which makes a scheduler step cost O(active),
//! never O(k).

use crate::adversary::{Adversary, StepView};
use crate::clock::Clock;
use crate::fault::{CrashPlan, DynamicAdversary};
use crate::ids::AgentId;
use crate::metrics::Outcome;
use crate::protocol::AgentProtocol;
use crate::timeline::{TimelinePoint, TimelineRecorder};
use crate::world::World;

/// Limits and sampling knobs for a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Maximum SYNC rounds before the runner gives up.
    pub max_rounds: u64,
    /// Maximum ASYNC scheduler steps before the runner gives up.
    pub max_steps: u64,
    /// Sample per-agent memory every this many rounds/steps (a final sample
    /// is always taken). Smaller values catch short-lived peaks at the cost
    /// of `O(k)` work per sample. **`0` selects geometric sampling** (powers
    /// of two), which bounds total sampling work at `O(k log T)` — what
    /// million-agent runs need.
    pub memory_sample_interval: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 5_000_000,
            max_steps: 20_000_000,
            memory_sample_interval: 4,
        }
    }
}

impl RunConfig {
    /// A config with explicit round/step limits (useful for tests that want
    /// small bounds).
    pub fn with_limits(max_rounds: u64, max_steps: u64) -> Self {
        RunConfig {
            max_rounds,
            max_steps,
            ..RunConfig::default()
        }
    }
}

/// Why a run did not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The protocol did not report termination within the configured limit
    /// (or stalled: every agent parked with the protocol unterminated, in
    /// which case no future activation can ever act and the runner gives up
    /// immediately instead of spinning to the limit).
    /// Carries the partial outcome observed so far.
    LimitExceeded {
        /// Metrics accumulated up to the point the limit was hit.
        outcome: Outcome,
    },
    /// The adversary broke its scheduling contract (an out-of-range agent
    /// id, a mid-run agent-count change, a backwards or empty batch). A
    /// buggy adversary fails its trial with this typed error; it must never
    /// take down the campaign process.
    Adversary {
        /// The scheduler step at which the fault surfaced.
        step: u64,
        /// What the adversary did wrong.
        reason: String,
        /// Metrics accumulated up to the fault (boxed to keep the error
        /// variant small on the happy path).
        outcome: Box<Outcome>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::LimitExceeded { outcome } => write!(
                f,
                "protocol did not terminate within the limit (rounds={}, steps={}, epochs={})",
                outcome.rounds, outcome.steps, outcome.epochs
            ),
            RunError::Adversary { step, reason, .. } => {
                write!(f, "adversary fault at step {step}: {reason}")
            }
        }
    }
}

impl std::error::Error for RunError {}

fn sample_memory<P: AgentProtocol + ?Sized>(world: &mut World, protocol: &P) {
    let max_bits = match protocol.max_memory_bits() {
        Some(max) => max,
        None => {
            let k = world.num_agents();
            (0..k)
                .map(|i| protocol.memory_bits(AgentId(i as u32)))
                .max()
                .unwrap_or(0)
        }
    };
    world.metrics_mut().record_memory_sample(max_bits);
}

fn should_sample(t: u64, interval: u64) -> bool {
    if interval == 0 {
        t.is_power_of_two()
    } else {
        t.is_multiple_of(interval)
    }
}

/// Sample one flight-recorder point from the current world + protocol
/// state. Pure observation: nothing here mutates either, so a recorded run
/// is byte-identical to an unrecorded one. Cost is O(classes) plus one
/// small allocation per sample — and samples happen once per *stride*
/// boundaries, never per activation.
fn timeline_point<P: AgentProtocol + ?Sized>(
    world: &World,
    protocol: &P,
    time: u64,
    batch: u64,
) -> TimelinePoint {
    let mut classes: Vec<(&'static str, u32)> = Vec::new();
    protocol.class_counts(&mut classes);
    let settled = classes
        .iter()
        .filter(|(name, _)| *name == "settled")
        .map(|&(_, count)| count as u64)
        .sum();
    let k = world.num_agents() as u64;
    let active = world.active_count() as u64;
    let crashed = world.dead_count() as u64;
    TimelinePoint {
        time,
        settled,
        active,
        parked: k.saturating_sub(active + crashed),
        crashed,
        moves: world.metrics().total_moves(),
        dead_edges: world.liveness().map_or(0, |l| l.dead_edges() as u64),
        batch,
        classes,
    }
}

fn build_outcome(world: &World, clock: &Clock, terminated: bool) -> Outcome {
    Outcome {
        rounds: clock.rounds(),
        steps: clock.steps(),
        epochs: clock.epochs(),
        activations: clock.total_activations(),
        total_moves: world.metrics().total_moves(),
        max_moves_per_agent: world.metrics().max_moves_per_agent(),
        peak_memory_bits: world.metrics().peak_memory_bits(),
        terminated,
        k: world.num_agents(),
        n: world.graph().num_nodes(),
        m: world.graph().num_edges(),
        max_degree: world.graph().max_degree(),
    }
}

/// Drives a protocol under the synchronous scheduler: every **active** agent
/// is activated once per round, in agent-index order; parked agents' no-op
/// activations are credited without being executed.
///
/// Activating agents sequentially within a round is a deterministic
/// refinement of the synchronous model (it only ever gives agents *fresher*
/// information than true simultaneity would); the paper's algorithms are
/// leader-driven and insensitive to the difference, and the round counting —
/// which is what the reproduction measures — is identical. An agent woken
/// mid-round by a lower-id agent's action is activated later in the same
/// round, exactly as the full id-order sweep would have.
#[derive(Debug, Clone, Default)]
pub struct SyncRunner {
    config: RunConfig,
    dynamics: Option<DynamicAdversary>,
    crashes: Option<CrashPlan>,
}

impl SyncRunner {
    /// A runner with the given configuration.
    pub fn new(config: RunConfig) -> Self {
        SyncRunner {
            config,
            dynamics: None,
            crashes: None,
        }
    }

    /// Attach a dynamic-graph adversary: it advances at every round
    /// boundary (the previous round's removed edges come back, the next
    /// seeded batch goes down) before any agent of the round activates.
    pub fn with_dynamics(mut self, dynamics: DynamicAdversary) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Attach a crash plan: due victims crash at the round boundary, before
    /// the round's worklist snapshot, and the protocol is notified via
    /// [`AgentProtocol::on_crash`].
    pub fn with_crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = Some(crashes);
        self
    }

    /// Run `protocol` on `world` until it terminates or the round limit is
    /// hit.
    pub fn run<P: AgentProtocol + ?Sized>(
        &self,
        world: &mut World,
        protocol: &mut P,
    ) -> Result<Outcome, RunError> {
        self.run_recorded(world, protocol, None)
    }

    /// Like [`run`](SyncRunner::run), but samples a flight-recorder point
    /// into `recorder` at every round boundary the recorder's stride
    /// selects (plus the initial state and a forced final point — also on
    /// the limit-exceeded path, so partial runs keep their tail).
    pub fn run_recorded<P: AgentProtocol + ?Sized>(
        &self,
        world: &mut World,
        protocol: &mut P,
        mut recorder: Option<&mut TimelineRecorder>,
    ) -> Result<Outcome, RunError> {
        let k = world.num_agents();
        let mut clock = Clock::new(k);
        let mut queue: Vec<AgentId> = Vec::new();
        let mut transitions: Vec<(AgentId, bool)> = Vec::new();
        // Fault plans are cloned so the runner stays reusable (`&self`).
        let mut dynamics = self.dynamics.clone();
        let mut crashes = self.crashes.clone();
        sample_memory(world, protocol);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(timeline_point(world, protocol, 0, 0));
        }
        while !protocol.is_terminated() {
            if clock.rounds() >= self.config.max_rounds || world.active_count() == 0 {
                world.sync_ride_accounting();
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.record_final(timeline_point(world, protocol, clock.rounds(), 0));
                }
                return Err(RunError::LimitExceeded {
                    outcome: build_outcome(world, &clock, false),
                });
            }
            let now = clock.rounds();
            // Round boundary: the world changes before any agent acts.
            if let Some(dynamics) = dynamics.as_mut() {
                dynamics.advance(world);
            }
            if let Some(crashes) = crashes.as_mut() {
                let mut any = false;
                while let Some(victim) = crashes.next_due(now) {
                    world.crash(victim);
                    protocol.on_crash(victim);
                    any = true;
                }
                if any {
                    // Crash-induced parks/wakes are already reflected in the
                    // worklist the snapshot below reads; discard the log so
                    // the in-round wake bookkeeping doesn't replay them.
                    world.drain_transitions(&mut transitions);
                }
            }
            world.snapshot_active_sorted(&mut queue);
            let mut i = 0;
            while i < queue.len() {
                let agent = queue[i];
                i += 1;
                if !world.is_active(agent) {
                    // Parked earlier this round: its activation is a no-op.
                    continue;
                }
                world.begin_activation(agent);
                let mut ctx = world.ctx(agent, now);
                protocol.on_activate(agent, &mut ctx);
                // Wakes with a larger id are still due this round.
                world.drain_transitions(&mut transitions);
                for &(w, woke) in &transitions {
                    if woke && w > agent {
                        if let Err(pos) = queue[i..].binary_search(&w) {
                            queue.insert(i + pos, w);
                        }
                    }
                }
            }
            clock.credit_round(k);
            if should_sample(clock.rounds(), self.config.memory_sample_interval) {
                sample_memory(world, protocol);
            }
            if let Some(rec) = recorder.as_deref_mut() {
                if rec.wants(clock.rounds()) {
                    rec.record(timeline_point(world, protocol, clock.rounds(), 0));
                }
            }
        }
        world.sync_ride_accounting();
        sample_memory(world, protocol);
        if let Some(rec) = recorder {
            rec.record_final(timeline_point(world, protocol, clock.rounds(), 0));
        }
        Ok(build_outcome(world, &clock, true))
    }
}

/// Drives a protocol under an asynchronous scheduler controlled by an
/// event-driven [`Adversary`]. Time is reported in epochs.
///
/// Per step the adversary receives a [`StepView`] — the sorted active
/// worklist, the wake transitions of the previous batch and the protocol's
/// victim designation (`!is_settled`) — and writes the batch into a reused
/// buffer, returning the step it fires at (empty steps are skipped
/// wholesale). Parked agents are never scheduled; the clock bulk-credits
/// each of them one activation per epoch at the boundary. Adversary
/// contract violations surface as typed [`RunError::Adversary`] values.
pub struct AsyncRunner<A: Adversary> {
    config: RunConfig,
    adversary: A,
    dynamics: Option<DynamicAdversary>,
    crashes: Option<CrashPlan>,
}

impl<A: Adversary> AsyncRunner<A> {
    /// A runner with the given configuration and adversary.
    pub fn new(config: RunConfig, adversary: A) -> Self {
        AsyncRunner {
            config,
            adversary,
            dynamics: None,
            crashes: None,
        }
    }

    /// Attach a dynamic-graph adversary: it advances once before the first
    /// step and then at every epoch boundary (the ASYNC analogue of the
    /// SYNC per-round edge churn).
    pub fn with_dynamics(mut self, dynamics: DynamicAdversary) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Attach a crash plan keyed on scheduler steps: due victims crash
    /// before the step's worklist snapshot, so a batch never contains a
    /// freshly-crashed agent.
    pub fn with_crashes(mut self, crashes: CrashPlan) -> Self {
        self.crashes = Some(crashes);
        self
    }

    /// The adversary's name (for reports).
    pub fn adversary_name(&self) -> &'static str {
        self.adversary.name()
    }

    /// Run `protocol` on `world` until it terminates or the step limit is
    /// hit.
    pub fn run<P: AgentProtocol + ?Sized>(
        &mut self,
        world: &mut World,
        protocol: &mut P,
    ) -> Result<Outcome, RunError> {
        self.run_recorded(world, protocol, None)
    }

    /// Like [`run`](AsyncRunner::run), but samples a flight-recorder point
    /// into `recorder` at every **epoch boundary** the recorder's stride
    /// selects (plus the initial state and a forced final point — also on
    /// the limit-exceeded paths). Timeline time is measured in epochs; the
    /// `batch` field carries the size of the adversary batch that closed
    /// the epoch.
    pub fn run_recorded<P: AgentProtocol + ?Sized>(
        &mut self,
        world: &mut World,
        protocol: &mut P,
        mut recorder: Option<&mut TimelineRecorder>,
    ) -> Result<Outcome, RunError> {
        let k = world.num_agents();
        let mut clock = Clock::new(k);
        let mut batch: Vec<AgentId> = Vec::new();
        let mut transitions: Vec<(AgentId, bool)> = Vec::new();
        let mut woken_for_adv: Vec<AgentId> = Vec::new();
        // Pre-run park/wake calls are already reflected in the worklist;
        // the adversary discovers pre-parked agents lazily.
        world.drain_transitions(&mut transitions);
        clock.init_epoch(world.active_slice().iter().copied());
        if let Some(dynamics) = self.dynamics.as_mut() {
            dynamics.advance(world);
        }
        sample_memory(world, protocol);
        if let Some(rec) = recorder.as_deref_mut() {
            rec.record(timeline_point(world, protocol, 0, 0));
        }
        while !protocol.is_terminated() {
            if clock.steps() >= self.config.max_steps || world.active_count() == 0 {
                world.sync_ride_accounting();
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.record_final(timeline_point(world, protocol, clock.epochs(), 0));
                }
                return Err(RunError::LimitExceeded {
                    outcome: build_outcome(world, &clock, false),
                });
            }
            if let Some(crashes) = self.crashes.as_mut() {
                let now = clock.steps();
                let mut any = false;
                while let Some(victim) = crashes.next_due(now) {
                    world.crash(victim);
                    protocol.on_crash(victim);
                    any = true;
                }
                if any {
                    // Feed the crash-induced transitions to the epoch
                    // bookkeeping and the adversary's wake feed.
                    world.drain_transitions(&mut transitions);
                    for &(a, woke) in &transitions {
                        if woke {
                            woken_for_adv.push(a);
                        } else {
                            clock.note_park(a);
                        }
                    }
                    // A crash may have terminated the protocol (the victim
                    // was the last unsettled agent) or emptied the active
                    // set; re-evaluate the loop conditions before asking
                    // the adversary to schedule anything.
                    continue;
                }
            }
            let scheduled = {
                let victims = |a: AgentId| !protocol.is_settled(a);
                // Borrows the world's cached sorted worklist — no copy, and
                // the sort itself only reruns after a park/wake/crash.
                let view = StepView::new(
                    k,
                    clock.steps(),
                    world.active_sorted(),
                    &woken_for_adv,
                    &victims,
                );
                self.adversary.next_step(&view, &mut batch)
            };
            let fault = |world: &mut World, clock: &Clock, reason: String| {
                world.sync_ride_accounting();
                RunError::Adversary {
                    step: clock.steps(),
                    reason,
                    outcome: Box::new(build_outcome(world, clock, false)),
                }
            };
            let fire = match scheduled {
                Err(e) => return Err(fault(world, &clock, e.to_string())),
                Ok(fire) if fire < clock.steps() => {
                    return Err(fault(
                        world,
                        &clock,
                        format!("batch fired at step {fire}, before the current step"),
                    ))
                }
                Ok(_) if batch.is_empty() => {
                    return Err(fault(
                        world,
                        &clock,
                        "empty batch although agents are active".into(),
                    ))
                }
                Ok(fire) => fire,
            };
            if fire >= self.config.max_steps {
                // The next activity lies at or beyond the limit: the empty
                // steps up to the limit elapsed, nothing beyond it ran.
                clock.cap_steps(self.config.max_steps);
                world.sync_ride_accounting();
                if let Some(rec) = recorder.as_deref_mut() {
                    rec.record_final(timeline_point(world, protocol, clock.epochs(), 0));
                }
                return Err(RunError::LimitExceeded {
                    outcome: build_outcome(world, &clock, false),
                });
            }
            for &agent in batch.iter() {
                if agent.index() >= k {
                    return Err(fault(
                        world,
                        &clock,
                        format!("agent id {agent} out of range (k = {k})"),
                    ));
                }
                if !world.is_active(agent) {
                    // Parked by an earlier batch member; skipped (its
                    // activations are bulk-credited at epoch boundaries).
                    continue;
                }
                world.begin_activation(agent);
                let mut ctx = world.ctx(agent, fire);
                protocol.on_activate(agent, &mut ctx);
                clock.note_exec(agent);
            }
            woken_for_adv.clear();
            world.drain_transitions(&mut transitions);
            for &(a, woke) in &transitions {
                if woke {
                    woken_for_adv.push(a);
                } else {
                    clock.note_park(a);
                }
            }
            if clock.epoch_ready() {
                if protocol.is_terminated() {
                    // Time stops at the boundary: the epoch completed, but
                    // the parked agents' procrastinated boundary
                    // activations never happen.
                    clock.finish_final_epoch();
                } else {
                    clock.begin_epoch(world.active_slice().iter().copied());
                    if let Some(dynamics) = self.dynamics.as_mut() {
                        dynamics.advance(world);
                    }
                    if let Some(rec) = recorder.as_deref_mut() {
                        if rec.wants(clock.epochs()) {
                            rec.record(timeline_point(
                                world,
                                protocol,
                                clock.epochs(),
                                batch.len() as u64,
                            ));
                        }
                    }
                }
            }
            clock.finish_step(fire);
            if should_sample(clock.steps(), self.config.memory_sample_interval) {
                sample_memory(world, protocol);
            }
        }
        world.sync_ride_accounting();
        sample_memory(world, protocol);
        if let Some(rec) = recorder {
            rec.record_final(timeline_point(world, protocol, clock.epochs(), 0));
        }
        Ok(build_outcome(world, &clock, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        AdversaryError, LaggingAdversary, RandomSubsetAdversary, RoundRobinAdversary,
        TargetedAdversary,
    };
    use crate::world::ActivationCtx;
    use disp_graph::{generators, NodeId, Port};

    /// Every agent walks once around the ring (n moves each), then stops.
    struct WalkAround {
        laps_left: Vec<u32>,
    }

    impl WalkAround {
        fn new(k: usize, n: u32) -> Self {
            WalkAround {
                laps_left: vec![n; k],
            }
        }
    }

    impl AgentProtocol for WalkAround {
        fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
            if self.laps_left[agent.index()] > 0 {
                ctx.move_via(Port(2));
                self.laps_left[agent.index()] -= 1;
            }
        }
        fn is_terminated(&self) -> bool {
            self.laps_left.iter().all(|&l| l == 0)
        }
        fn memory_bits(&self, agent: AgentId) -> usize {
            crate::bits::counter_bits(self.laps_left[agent.index()] as u64)
        }
        fn name(&self) -> &'static str {
            "walk-around"
        }
    }

    /// Like [`WalkAround`] but agents park themselves when done — outcomes
    /// must match the non-parking version exactly.
    struct WalkAroundParking {
        laps_left: Vec<u32>,
    }

    impl AgentProtocol for WalkAroundParking {
        fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
            if self.laps_left[agent.index()] > 0 {
                ctx.move_via(Port(2));
                self.laps_left[agent.index()] -= 1;
                if self.laps_left[agent.index()] == 0 {
                    ctx.park(agent);
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.laps_left.iter().all(|&l| l == 0)
        }
        fn memory_bits(&self, agent: AgentId) -> usize {
            crate::bits::counter_bits(self.laps_left[agent.index()] as u64)
        }
    }

    #[test]
    fn sync_runner_counts_rounds_and_moves() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.rounds, 8);
        assert_eq!(out.epochs, 8);
        assert_eq!(out.activations, 24);
        assert_eq!(out.total_moves, 24);
        assert_eq!(out.max_moves_per_agent, 8);
        assert_eq!(out.k, 3);
        assert_eq!(out.n, 8);
        // Everyone is back at the root.
        for i in 0..3 {
            assert_eq!(world.position(AgentId(i)), NodeId(0));
        }
    }

    #[test]
    fn parking_agents_does_not_change_the_outcome() {
        let g = generators::ring(8);
        let mut w1 = World::new_rooted(g.clone(), 3, NodeId(0));
        let mut w2 = World::new_rooted(g, 3, NodeId(0));
        let mut plain = WalkAround::new(3, 8);
        let mut parking = WalkAroundParking {
            laps_left: vec![8; 3],
        };
        let a = SyncRunner::new(RunConfig::default())
            .run(&mut w1, &mut plain)
            .unwrap();
        let b = SyncRunner::new(RunConfig::default())
            .run(&mut w2, &mut parking)
            .unwrap();
        assert_eq!(a, b, "credited activations must equal executed ones");
    }

    #[test]
    fn async_parking_at_the_end_matches_the_plain_run() {
        // All three agents finish and park in the same round-robin step;
        // the final epoch completes without spurious boundary credits.
        let g = generators::ring(8);
        let mut w1 = World::new_rooted(g.clone(), 3, NodeId(0));
        let mut w2 = World::new_rooted(g, 3, NodeId(0));
        let mut plain = WalkAround::new(3, 8);
        let mut parking = WalkAroundParking {
            laps_left: vec![8; 3],
        };
        let a = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(3))
            .run(&mut w1, &mut plain)
            .unwrap();
        let b = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(3))
            .run(&mut w2, &mut parking)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sync_runner_reports_limit_exceeded() {
        struct Never;
        impl AgentProtocol for Never {
            fn on_activate(&mut self, _a: AgentId, _c: &mut ActivationCtx<'_>) {}
            fn is_terminated(&self) -> bool {
                false
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let err = SyncRunner::new(RunConfig::with_limits(10, 10))
            .run(&mut world, &mut Never)
            .unwrap_err();
        match err {
            RunError::LimitExceeded { outcome } => {
                assert_eq!(outcome.rounds, 10);
                assert!(!outcome.terminated);
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn stalled_worklist_fails_fast_instead_of_spinning() {
        // A buggy protocol that parks everyone without terminating must not
        // spin for max_rounds empty rounds.
        struct ParkAll;
        impl AgentProtocol for ParkAll {
            fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
                ctx.park(agent);
            }
            fn is_terminated(&self) -> bool {
                false
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let err = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut ParkAll)
            .unwrap_err();
        match err {
            RunError::LimitExceeded { outcome } => {
                assert!(
                    outcome.rounds <= 2,
                    "must fail fast, ran {}",
                    outcome.rounds
                );
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn async_round_robin_matches_sync_epochs() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(3))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.epochs, 8);
        assert_eq!(out.total_moves, 24);
        assert_eq!(out.activations, 24);
    }

    #[test]
    fn async_random_subset_takes_more_steps_but_same_moves() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = AsyncRunner::new(RunConfig::default(), RandomSubsetAdversary::new(0.4, 3, 17))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 24);
        assert!(
            out.steps >= out.epochs,
            "steps {} < epochs {}",
            out.steps,
            out.epochs
        );
        assert!(out.epochs >= 1);
        // With per-step activation probability 0.4, finishing 8 activations
        // per agent requires clearly more scheduler steps than rounds the
        // SYNC run needed.
        assert!(out.steps > 8);
    }

    #[test]
    fn async_lagging_adversary_still_terminates() {
        let g = generators::ring(6);
        let mut world = World::new_rooted(g, 4, NodeId(2));
        let mut proto = WalkAround::new(4, 6);
        let out = AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(7, 4, 23))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 24);
        assert_eq!(out.max_moves_per_agent, 6);
        assert!(out.epochs >= 1);
        assert!(out.steps >= out.epochs, "lagging stretches steps per epoch");
    }

    #[test]
    fn async_targeted_adversary_starves_walkers_but_terminates() {
        // WalkAround agents never settle, so everyone is a victim: the
        // adversary lags the whole schedule and steps ≈ max_lag · epochs.
        let g = generators::ring(6);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 6);
        let out = AsyncRunner::new(RunConfig::default(), TargetedAdversary::new(4, 3))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 18);
        assert_eq!(out.epochs, 6);
        assert_eq!(out.steps, 6 * 4, "victims fire every 4th step only");
    }

    #[test]
    fn adversary_faults_are_typed_errors_not_panics() {
        struct OutOfRange;
        impl Adversary for OutOfRange {
            fn next_step(
                &mut self,
                view: &StepView<'_>,
                out: &mut Vec<AgentId>,
            ) -> Result<u64, AdversaryError> {
                out.clear();
                out.push(AgentId(99));
                Ok(view.step)
            }
            fn name(&self) -> &'static str {
                "out-of-range"
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 4);
        let err = AsyncRunner::new(RunConfig::default(), OutOfRange)
            .run(&mut world, &mut proto)
            .unwrap_err();
        match err {
            RunError::Adversary {
                reason, outcome, ..
            } => {
                assert!(reason.contains("out of range"), "{reason}");
                assert!(!outcome.terminated);
            }
            other => panic!("expected Adversary, got {other:?}"),
        }

        struct WrongK;
        impl Adversary for WrongK {
            fn next_step(
                &mut self,
                view: &StepView<'_>,
                _out: &mut Vec<AgentId>,
            ) -> Result<u64, AdversaryError> {
                Err(AdversaryError::AgentCountChanged {
                    expected: 7,
                    got: view.k,
                })
            }
            fn name(&self) -> &'static str {
                "wrong-k"
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 4);
        let err = AsyncRunner::new(RunConfig::default(), WrongK)
            .run(&mut world, &mut proto)
            .unwrap_err();
        assert!(matches!(err, RunError::Adversary { .. }), "{err:?}");
        assert!(err.to_string().contains("adversary fault"));
    }

    #[test]
    fn skipped_empty_steps_respect_the_step_limit() {
        // An adversary that always fires far in the future: the runner must
        // clamp the jump at max_steps and report LimitExceeded.
        struct FarFuture;
        impl Adversary for FarFuture {
            fn next_step(
                &mut self,
                view: &StepView<'_>,
                out: &mut Vec<AgentId>,
            ) -> Result<u64, AdversaryError> {
                out.clear();
                out.extend_from_slice(view.active);
                Ok(view.step + 1_000_000)
            }
            fn name(&self) -> &'static str {
                "far-future"
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 4);
        let err = AsyncRunner::new(RunConfig::with_limits(10, 1000), FarFuture)
            .run(&mut world, &mut proto)
            .unwrap_err();
        match err {
            RunError::LimitExceeded { outcome } => {
                assert_eq!(outcome.steps, 1000, "steps clamp at the limit");
                assert!(!outcome.terminated);
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn recorded_sync_run_matches_unrecorded_and_samples_boundaries() {
        let g = generators::ring(8);
        let mut w1 = World::new_rooted(g.clone(), 3, NodeId(0));
        let mut w2 = World::new_rooted(g, 3, NodeId(0));
        let mut p1 = WalkAround::new(3, 8);
        let mut p2 = WalkAround::new(3, 8);
        let runner = SyncRunner::new(RunConfig::default());
        let plain = runner.run(&mut w1, &mut p1).unwrap();
        let mut rec = crate::timeline::TimelineRecorder::new();
        let recorded = runner
            .run_recorded(&mut w2, &mut p2, Some(&mut rec))
            .unwrap();
        assert_eq!(plain, recorded, "observation must never change results");
        let tl = rec.finish();
        // 8 rounds: initial point + one per boundary, no decimation.
        let times: Vec<u64> = tl.points.iter().map(|p| p.time).collect();
        assert_eq!(times, (0..=8).collect::<Vec<_>>());
        assert_eq!(tl.stride, 1);
        assert_eq!(tl.points[0].moves, 0);
        assert_eq!(tl.points.last().unwrap().moves, 24);
        assert_eq!(tl.points[0].active, 3);
        // WalkAround reports no classes: settled stays 0, histogram empty.
        assert!(tl
            .points
            .iter()
            .all(|p| p.classes.is_empty() && p.settled == 0));
    }

    #[test]
    fn recorded_async_run_samples_epoch_boundaries() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let mut rec = crate::timeline::TimelineRecorder::new();
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary::new(3))
            .run_recorded(&mut world, &mut proto, Some(&mut rec))
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.epochs, 8);
        let tl = rec.finish();
        assert_eq!(tl.points.first().unwrap().time, 0);
        assert_eq!(tl.points.last().unwrap().time, 8);
        for w in tl.points.windows(2) {
            assert!(w[0].time < w[1].time, "epoch times strictly increase");
            assert!(w[0].moves <= w[1].moves, "moves are cumulative");
        }
        // Interior boundary points carry the closing batch size (the
        // round-robin adversary schedules all 3 walkers per step).
        assert!(tl.points[1..tl.points.len() - 1]
            .iter()
            .all(|p| p.batch == 3));
    }

    #[test]
    fn recorded_limit_exceeded_run_keeps_its_tail() {
        struct Never;
        impl AgentProtocol for Never {
            fn on_activate(&mut self, _a: AgentId, _c: &mut ActivationCtx<'_>) {}
            fn is_terminated(&self) -> bool {
                false
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut rec = crate::timeline::TimelineRecorder::new();
        let err = SyncRunner::new(RunConfig::with_limits(10, 10))
            .run_recorded(&mut world, &mut Never, Some(&mut rec))
            .unwrap_err();
        assert!(matches!(err, RunError::LimitExceeded { .. }));
        let tl = rec.finish();
        assert_eq!(tl.points.first().unwrap().time, 0);
        assert_eq!(tl.points.last().unwrap().time, 10);
    }

    #[test]
    fn memory_peak_reflects_protocol_reports() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 8);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        // counter_bits(8) = 4 bits is the largest footprint.
        assert_eq!(out.peak_memory_bits, 4);
    }

    #[test]
    fn geometric_sampling_still_reports_a_peak() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 8);
        let config = RunConfig {
            memory_sample_interval: 0,
            ..RunConfig::default()
        };
        let out = SyncRunner::new(config).run(&mut world, &mut proto).unwrap();
        assert_eq!(out.peak_memory_bits, 4);
    }

    #[test]
    fn already_terminated_protocol_runs_zero_rounds() {
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 1, NodeId(0));
        let mut proto = WalkAround::new(1, 0);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.total_moves, 0);
        assert!(out.terminated);
    }

    #[test]
    fn mid_round_wakes_with_larger_ids_run_in_the_same_round() {
        // Agent 0 wakes agent 2 (parked) on round 0; id-order semantics
        // require agent 2's activation to happen in that same round.
        struct Waker {
            woke: bool,
            acted: Vec<u64>,
        }
        impl AgentProtocol for Waker {
            fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
                if agent == AgentId(0) && !self.woke {
                    self.woke = true;
                    ctx.wake(AgentId(2));
                }
                if agent == AgentId(2) {
                    self.acted.push(ctx.time());
                }
            }
            fn is_terminated(&self) -> bool {
                self.woke && !self.acted.is_empty()
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(5);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        world.park(AgentId(2));
        let mut proto = Waker {
            woke: false,
            acted: Vec::new(),
        };
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        assert_eq!(out.rounds, 1);
        assert_eq!(proto.acted, vec![0], "agent 2 must act in round 0");
    }

    /// Like [`WalkAround`] but crash-aware: the walk is done when every
    /// *surviving* agent finished its laps.
    struct CrashAwareWalk {
        laps_left: Vec<u32>,
        dead: Vec<bool>,
        crashes_seen: Vec<AgentId>,
    }

    impl CrashAwareWalk {
        fn new(k: usize, n: u32) -> Self {
            CrashAwareWalk {
                laps_left: vec![n; k],
                dead: vec![false; k],
                crashes_seen: Vec::new(),
            }
        }
    }

    impl AgentProtocol for CrashAwareWalk {
        fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
            if self.laps_left[agent.index()] > 0 {
                ctx.move_via(Port(2));
                self.laps_left[agent.index()] -= 1;
            }
        }
        fn is_terminated(&self) -> bool {
            self.laps_left
                .iter()
                .zip(&self.dead)
                .all(|(&l, &d)| d || l == 0)
        }
        fn on_crash(&mut self, agent: AgentId) {
            self.dead[agent.index()] = true;
            self.crashes_seen.push(agent);
        }
        fn memory_bits(&self, _a: AgentId) -> usize {
            0
        }
    }

    #[test]
    fn sync_crash_plan_fires_and_notifies_the_protocol() {
        let run = |seed: u64| {
            let g = generators::ring(8);
            let mut world = World::new_rooted(g, 3, NodeId(0));
            let mut proto = CrashAwareWalk::new(3, 8);
            let plan = crate::fault::CrashPlan::new(seed, 3, 1, 4);
            let victim = plan.events()[0].1;
            let out = SyncRunner::new(RunConfig::default())
                .with_crashes(plan)
                .run(&mut world, &mut proto)
                .unwrap();
            assert!(out.terminated);
            assert_eq!(proto.crashes_seen, vec![victim]);
            assert!(world.is_dead(victim));
            assert_eq!(world.dead_count(), 1);
            // The corpse stopped mid-walk; survivors finished all laps.
            assert!(proto.laps_left[victim.index()] > 0);
            (out, victim)
        };
        let (a, va) = run(11);
        let (b, vb) = run(11);
        assert_eq!(a, b, "crash runs are deterministic");
        assert_eq!(va, vb);
    }

    #[test]
    fn async_crash_plan_is_deterministic_too() {
        let run = || {
            let g = generators::ring(8);
            let mut world = World::new_rooted(g, 3, NodeId(0));
            let mut proto = CrashAwareWalk::new(3, 8);
            AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(3, 3, 7))
                .with_crashes(crate::fault::CrashPlan::new(13, 3, 1, 10))
                .run(&mut world, &mut proto)
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.terminated);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_dynamic_edges_make_agents_wait_not_panic() {
        use crate::world::MoveError;
        // Patient walkers: on a dead edge they wait the round out instead
        // of crashing the run.
        struct PatientWalk {
            laps_left: Vec<u32>,
            waits: u64,
        }
        impl AgentProtocol for PatientWalk {
            fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
                if self.laps_left[agent.index()] > 0 {
                    match ctx.try_move_via(Port(2)) {
                        Ok(_) => self.laps_left[agent.index()] -= 1,
                        Err(MoveError::EdgeDown { .. }) => self.waits += 1,
                        Err(e) => panic!("unexpected move error: {e}"),
                    }
                }
            }
            fn is_terminated(&self) -> bool {
                self.laps_left.iter().all(|&l| l == 0)
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = PatientWalk {
            laps_left: vec![8; 3],
            waits: 0,
        };
        let out = SyncRunner::new(RunConfig::default())
            .with_dynamics(crate::fault::DynamicAdversary::new(21, 1))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 24, "waits do not consume moves");
        assert!(proto.waits > 0, "with 1/8 edges down someone must wait");
        assert!(
            out.rounds > 8,
            "waiting stretches rounds past the fault-free 8"
        );
    }

    #[test]
    fn async_woken_agents_reenter_the_lagging_schedule() {
        // Agent 1 parks itself at the start; agent 0 wakes it after its
        // fourth move. Both must finish their laps under the timer wheel.
        struct ParkThenWake {
            laps_left: Vec<u32>,
            parked_once: bool,
        }
        impl AgentProtocol for ParkThenWake {
            fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
                if agent == AgentId(1) && !self.parked_once {
                    self.parked_once = true;
                    ctx.park(agent);
                    return;
                }
                if self.laps_left[agent.index()] > 0 {
                    ctx.move_via(Port(2));
                    self.laps_left[agent.index()] -= 1;
                    if agent == AgentId(0) && self.laps_left[0] == 2 {
                        ctx.wake(AgentId(1));
                    }
                }
            }
            fn is_terminated(&self) -> bool {
                self.laps_left.iter().all(|&l| l == 0)
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(6);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = ParkThenWake {
            laps_left: vec![6; 2],
            parked_once: false,
        };
        let out = AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(3, 2, 5))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 12);
    }
}
