//! Synchronous and asynchronous execution drivers.

use crate::adversary::Adversary;
use crate::clock::Clock;
use crate::ids::AgentId;
use crate::metrics::Outcome;
use crate::protocol::AgentProtocol;
use crate::world::World;

/// Limits and sampling knobs for a run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Maximum SYNC rounds before the runner gives up.
    pub max_rounds: u64,
    /// Maximum ASYNC scheduler steps before the runner gives up.
    pub max_steps: u64,
    /// Sample per-agent memory every this many rounds/steps (a final sample
    /// is always taken). Smaller values catch short-lived peaks at the cost
    /// of `O(k)` work per sample.
    pub memory_sample_interval: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_rounds: 5_000_000,
            max_steps: 20_000_000,
            memory_sample_interval: 4,
        }
    }
}

impl RunConfig {
    /// A config with explicit round/step limits (useful for tests that want
    /// small bounds).
    pub fn with_limits(max_rounds: u64, max_steps: u64) -> Self {
        RunConfig {
            max_rounds,
            max_steps,
            ..RunConfig::default()
        }
    }
}

/// Why a run did not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The protocol did not report termination within the configured limit.
    /// Carries the partial outcome observed so far.
    LimitExceeded {
        /// Metrics accumulated up to the point the limit was hit.
        outcome: Outcome,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::LimitExceeded { outcome } => write!(
                f,
                "protocol did not terminate within the limit (rounds={}, steps={}, epochs={})",
                outcome.rounds, outcome.steps, outcome.epochs
            ),
        }
    }
}

impl std::error::Error for RunError {}

fn sample_memory<P: AgentProtocol + ?Sized>(world: &mut World, protocol: &P) {
    let k = world.num_agents();
    let max_bits = (0..k)
        .map(|i| protocol.memory_bits(AgentId(i as u32)))
        .max()
        .unwrap_or(0);
    world.metrics_mut().record_memory_sample(max_bits);
}

fn build_outcome(world: &World, clock: &Clock, terminated: bool) -> Outcome {
    Outcome {
        rounds: clock.rounds(),
        steps: clock.steps(),
        epochs: clock.epochs(),
        activations: clock.total_activations(),
        total_moves: world.metrics().total_moves(),
        max_moves_per_agent: world.metrics().max_moves_per_agent(),
        peak_memory_bits: world.metrics().peak_memory_bits(),
        terminated,
        k: world.num_agents(),
        n: world.graph().num_nodes(),
        m: world.graph().num_edges(),
        max_degree: world.graph().max_degree(),
    }
}

/// Drives a protocol under the synchronous scheduler: every agent is
/// activated once per round, in agent-index order.
///
/// Activating agents sequentially within a round is a deterministic
/// refinement of the synchronous model (it only ever gives agents *fresher*
/// information than true simultaneity would); the paper's algorithms are
/// leader-driven and insensitive to the difference, and the round counting —
/// which is what the reproduction measures — is identical.
#[derive(Debug, Clone, Default)]
pub struct SyncRunner {
    config: RunConfig,
}

impl SyncRunner {
    /// A runner with the given configuration.
    pub fn new(config: RunConfig) -> Self {
        SyncRunner { config }
    }

    /// Run `protocol` on `world` until it terminates or the round limit is
    /// hit.
    pub fn run<P: AgentProtocol + ?Sized>(
        &self,
        world: &mut World,
        protocol: &mut P,
    ) -> Result<Outcome, RunError> {
        let k = world.num_agents();
        let mut clock = Clock::new(k);
        sample_memory(world, protocol);
        while !protocol.is_terminated() {
            if clock.rounds() >= self.config.max_rounds {
                return Err(RunError::LimitExceeded {
                    outcome: build_outcome(world, &clock, false),
                });
            }
            let now = clock.rounds();
            for i in 0..k {
                let agent = AgentId(i as u32);
                world.begin_activation(agent);
                let mut ctx = world.ctx(agent, now);
                protocol.on_activate(agent, &mut ctx);
                clock.note_activation(i);
            }
            clock.end_round();
            if clock
                .rounds()
                .is_multiple_of(self.config.memory_sample_interval)
            {
                sample_memory(world, protocol);
            }
        }
        sample_memory(world, protocol);
        Ok(build_outcome(world, &clock, true))
    }
}

/// Drives a protocol under an asynchronous scheduler controlled by an
/// [`Adversary`]. Time is reported in epochs.
pub struct AsyncRunner<A: Adversary> {
    config: RunConfig,
    adversary: A,
}

impl<A: Adversary> AsyncRunner<A> {
    /// A runner with the given configuration and adversary.
    pub fn new(config: RunConfig, adversary: A) -> Self {
        AsyncRunner { config, adversary }
    }

    /// The adversary's name (for reports).
    pub fn adversary_name(&self) -> &'static str {
        self.adversary.name()
    }

    /// Run `protocol` on `world` until it terminates or the step limit is
    /// hit.
    pub fn run<P: AgentProtocol + ?Sized>(
        &mut self,
        world: &mut World,
        protocol: &mut P,
    ) -> Result<Outcome, RunError> {
        let k = world.num_agents();
        let mut clock = Clock::new(k);
        sample_memory(world, protocol);
        while !protocol.is_terminated() {
            if clock.steps() >= self.config.max_steps {
                return Err(RunError::LimitExceeded {
                    outcome: build_outcome(world, &clock, false),
                });
            }
            let now = clock.steps();
            let activations = self.adversary.next_step(k, now);
            for agent in activations {
                assert!(
                    agent.index() < k,
                    "adversary produced an out-of-range agent id"
                );
                world.begin_activation(agent);
                let mut ctx = world.ctx(agent, now);
                protocol.on_activate(agent, &mut ctx);
                clock.note_activation(agent.index());
            }
            clock.end_step();
            if clock
                .steps()
                .is_multiple_of(self.config.memory_sample_interval)
            {
                sample_memory(world, protocol);
            }
        }
        sample_memory(world, protocol);
        Ok(build_outcome(world, &clock, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{LaggingAdversary, RandomSubsetAdversary, RoundRobinAdversary};
    use crate::world::ActivationCtx;
    use disp_graph::{generators, NodeId, Port};

    /// Every agent walks once around the ring (n moves each), then stops.
    struct WalkAround {
        laps_left: Vec<u32>,
    }

    impl WalkAround {
        fn new(k: usize, n: u32) -> Self {
            WalkAround {
                laps_left: vec![n; k],
            }
        }
    }

    impl AgentProtocol for WalkAround {
        fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
            if self.laps_left[agent.index()] > 0 {
                ctx.move_via(Port(2));
                self.laps_left[agent.index()] -= 1;
            }
        }
        fn is_terminated(&self) -> bool {
            self.laps_left.iter().all(|&l| l == 0)
        }
        fn memory_bits(&self, agent: AgentId) -> usize {
            crate::bits::counter_bits(self.laps_left[agent.index()] as u64)
        }
        fn name(&self) -> &'static str {
            "walk-around"
        }
    }

    #[test]
    fn sync_runner_counts_rounds_and_moves() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.rounds, 8);
        assert_eq!(out.epochs, 8);
        assert_eq!(out.total_moves, 24);
        assert_eq!(out.max_moves_per_agent, 8);
        assert_eq!(out.k, 3);
        assert_eq!(out.n, 8);
        // Everyone is back at the root.
        for i in 0..3 {
            assert_eq!(world.position(AgentId(i)), NodeId(0));
        }
    }

    #[test]
    fn sync_runner_reports_limit_exceeded() {
        struct Never;
        impl AgentProtocol for Never {
            fn on_activate(&mut self, _a: AgentId, _c: &mut ActivationCtx<'_>) {}
            fn is_terminated(&self) -> bool {
                false
            }
            fn memory_bits(&self, _a: AgentId) -> usize {
                0
            }
        }
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let err = SyncRunner::new(RunConfig::with_limits(10, 10))
            .run(&mut world, &mut Never)
            .unwrap_err();
        match err {
            RunError::LimitExceeded { outcome } => {
                assert_eq!(outcome.rounds, 10);
                assert!(!outcome.terminated);
            }
        }
    }

    #[test]
    fn async_round_robin_matches_sync_epochs() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = AsyncRunner::new(RunConfig::default(), RoundRobinAdversary)
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.epochs, 8);
        assert_eq!(out.total_moves, 24);
    }

    #[test]
    fn async_random_subset_takes_more_steps_but_same_moves() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 3, NodeId(0));
        let mut proto = WalkAround::new(3, 8);
        let out = AsyncRunner::new(RunConfig::default(), RandomSubsetAdversary::new(0.4, 17))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 24);
        assert!(
            out.steps >= out.epochs,
            "steps {} < epochs {}",
            out.steps,
            out.epochs
        );
        assert!(out.epochs >= 1);
        // With per-step activation probability 0.4, finishing 8 activations
        // per agent requires clearly more scheduler steps than rounds the
        // SYNC run needed.
        assert!(out.steps > 8);
    }

    #[test]
    fn async_lagging_adversary_still_terminates() {
        let g = generators::ring(6);
        let mut world = World::new_rooted(g, 4, NodeId(2));
        let mut proto = WalkAround::new(4, 6);
        let out = AsyncRunner::new(RunConfig::default(), LaggingAdversary::new(7, 23))
            .run(&mut world, &mut proto)
            .unwrap();
        assert!(out.terminated);
        assert_eq!(out.total_moves, 24);
        assert_eq!(out.max_moves_per_agent, 6);
        assert!(out.epochs >= 1);
    }

    #[test]
    fn memory_peak_reflects_protocol_reports() {
        let g = generators::ring(8);
        let mut world = World::new_rooted(g, 2, NodeId(0));
        let mut proto = WalkAround::new(2, 8);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        // counter_bits(8) = 4 bits is the largest footprint.
        assert_eq!(out.peak_memory_bits, 4);
    }

    #[test]
    fn already_terminated_protocol_runs_zero_rounds() {
        let g = generators::ring(4);
        let mut world = World::new_rooted(g, 1, NodeId(0));
        let mut proto = WalkAround::new(1, 0);
        let out = SyncRunner::new(RunConfig::default())
            .run(&mut world, &mut proto)
            .unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.total_moves, 0);
        assert!(out.terminated);
    }
}
