//! # disp-sim
//!
//! Discrete execution engine for mobile-agent algorithms on anonymous
//! port-labeled graphs, following the model of *"Dispersion is (Almost)
//! Optimal under (A)synchrony"* (SPAA 2025).
//!
//! ## Model
//!
//! * `k ≤ n` agents with unique IDs live on the nodes of a
//!   [`disp_graph::PortGraph`]. Nodes are memory-less; all persistent state
//!   lives inside agents.
//! * An activated agent performs one **Communicate–Compute–Move (CCM)
//!   cycle**: it reads the memory of co-located agents, computes, optionally
//!   writes to co-located agents, and optionally moves across **one** edge
//!   identified by a local port.
//! * **SYNC**: every agent is activated once per *round*; time = rounds.
//! * **ASYNC**: an adversary activates agents in arbitrary order and
//!   frequency (every agent infinitely often); time is measured in *epochs*,
//!   the minimal intervals in which every agent completes ≥ 1 CCM cycle.
//!
//! ## Pieces
//!
//! * [`World`] — agent positions, co-location index, the movement API that
//!   enforces "at most one edge per activation".
//! * [`AgentProtocol`] — the trait algorithm crates implement; the protocol
//!   owns all per-agent state and is invoked once per activation with an
//!   [`ActivationCtx`] restricted to that agent's local view.
//! * [`SyncRunner`] / [`AsyncRunner`] — drive a protocol to termination under
//!   the two schedulers, producing an [`Outcome`] (rounds, epochs, moves,
//!   peak per-agent memory bits).
//! * [`adversary`] — pluggable ASYNC activation adversaries.
//! * [`fault`] — deterministic fault plans: the [`DynamicAdversary`]
//!   (one seeded edge removed per round, the arXiv 2408.12220 dynamic-ring
//!   model) and the [`CrashPlan`] crash-fault schedule.
//! * [`trip`] — a small reusable "itinerary" helper for the round-trip /
//!   oscillation movement patterns that dispersion algorithms use heavily.
//! * [`bits`] — helpers for accounting persistent agent memory in bits.
//!
//! ## Example
//!
//! ```
//! use disp_graph::prelude::*;
//! use disp_sim::prelude::*;
//!
//! // A protocol in which every agent walks to the port-1 neighbor once.
//! struct OneHop { moved: Vec<bool> }
//! impl AgentProtocol for OneHop {
//!     fn on_activate(&mut self, agent: AgentId, ctx: &mut ActivationCtx<'_>) {
//!         if !self.moved[agent.index()] && ctx.degree() > 0 {
//!             ctx.move_via(Port(1));
//!             self.moved[agent.index()] = true;
//!         }
//!     }
//!     fn is_terminated(&self) -> bool { self.moved.iter().all(|&m| m) }
//!     fn memory_bits(&self, _agent: AgentId) -> usize { 1 }
//! }
//!
//! let g = generators::ring(5);
//! let mut world = World::new(g, vec![NodeId(0); 3]);
//! let mut proto = OneHop { moved: vec![false; 3] };
//! let outcome = SyncRunner::new(RunConfig::default()).run(&mut world, &mut proto).unwrap();
//! assert_eq!(outcome.rounds, 1);
//! assert_eq!(outcome.total_moves, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arena;
pub mod bits;
pub mod clock;
pub mod fault;
pub mod ids;
pub mod metrics;
pub mod placement;
pub mod protocol;
pub mod runner;
pub mod timeline;
pub mod trace;
pub mod trip;
pub mod world;

pub use adversary::{
    Adversary, AdversaryError, AdversaryKind, LaggingAdversary, RandomSubsetAdversary,
    RoundRobinAdversary, StepView, TargetedAdversary,
};
pub use arena::{ListArena, ListHandle};
pub use clock::Clock;
pub use fault::{CrashPlan, DynamicAdversary};
pub use ids::AgentId;
pub use metrics::{Metrics, Outcome};
pub use placement::Placement;
pub use protocol::AgentProtocol;
pub use runner::{AsyncRunner, RunConfig, RunError, SyncRunner};
pub use timeline::{Timeline, TimelinePoint, TimelineRecorder, DEFAULT_TIMELINE_BUDGET};
pub use trace::{Trace, TraceEvent, DEFAULT_TRACE_CAP};
pub use trip::{Trip, TripProgress, TripStatus, TripStep};
pub use world::{ActivationCtx, MoveError, World, WorldPool};

/// Convenient glob import for downstream crates.
pub mod prelude {
    pub use crate::adversary::{
        Adversary, AdversaryError, AdversaryKind, LaggingAdversary, RandomSubsetAdversary,
        RoundRobinAdversary, StepView, TargetedAdversary,
    };
    pub use crate::bits;
    pub use crate::fault::{CrashPlan, DynamicAdversary};
    pub use crate::ids::AgentId;
    pub use crate::metrics::{Metrics, Outcome};
    pub use crate::placement::Placement;
    pub use crate::protocol::AgentProtocol;
    pub use crate::runner::{AsyncRunner, RunConfig, RunError, SyncRunner};
    pub use crate::timeline::{Timeline, TimelinePoint, TimelineRecorder, DEFAULT_TIMELINE_BUDGET};
    pub use crate::trip::{Trip, TripProgress, TripStatus, TripStep};
    pub use crate::world::{ActivationCtx, MoveError, World};
}
