//! Time accounting: rounds (SYNC), steps and epochs (ASYNC).

use crate::ids::AgentId;

/// Tracks simulated time.
///
/// * In SYNC, a *round* activates every agent once; an epoch equals a round.
///   The worklist-based SYNC runner credits whole rounds in O(1)
///   ([`Clock::credit_round`]).
/// * In ASYNC, the adversary activates agents in arbitrary order; an *epoch*
///   is the smallest interval in which every agent has completed at least
///   one CCM cycle (the standard definition, [Cord-Landwehr et al.,
///   ICALP'11], used by the paper).
///
/// ## Count-based epoch crediting (worklist integration)
///
/// The event-driven ASYNC runner schedules only **active** agents; parked
/// agents (whose activations are provably no-ops) are not scheduled
/// per-step but *credited in bulk*: the adversary procrastinates them to
/// the fairness limit, activating each exactly once per epoch, at the
/// boundary. Concretely the clock keeps the current epoch's *requirement
/// set* — the agents active when the epoch began — as one flag array plus a
/// single counter:
///
/// * an executed activation of a required agent decrements the counter
///   ([`Clock::note_exec`]);
/// * parking a required agent removes it from the requirement
///   ([`Clock::note_park`]) — it joins the bulk-credited parked pool;
/// * when the counter hits zero the epoch is complete
///   ([`Clock::epoch_ready`]); [`Clock::begin_epoch`] then credits every
///   currently-parked agent one activation (`k − |active|` additions in
///   O(1)) and snapshots the new requirement from the active worklist;
/// * agents woken mid-epoch join the requirement at the next boundary.
///
/// Park/wake effects are applied at batch (step) granularity — the runner
/// drains the world's transition log after each batch — so the accounting
/// is a deterministic function of the executed schedule. The differential
/// test below proves the counter-based bookkeeping byte-identical to a
/// naive per-agent-scan model fed the same event stream.
#[derive(Debug, Clone)]
pub struct Clock {
    rounds: u64,
    steps: u64,
    epochs: u64,
    total_activations: u64,
    k: usize,
    /// `need[a]`: agent `a` is in the current epoch's requirement set and
    /// has not yet activated (or parked) since the epoch began.
    need: Vec<bool>,
    /// Number of `true` entries in `need`.
    remaining: usize,
}

impl Clock {
    /// New clock for `k` agents. The first epoch's requirement defaults to
    /// all `k` agents; ASYNC runners refine it with [`Clock::init_epoch`]
    /// from the world's actual worklist before the first step.
    pub fn new(k: usize) -> Self {
        Clock {
            rounds: 0,
            steps: 0,
            epochs: 0,
            total_activations: 0,
            k,
            need: vec![true; k],
            remaining: k,
        }
    }

    /// Completed SYNC rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Completed ASYNC scheduler steps (one step = one adversary batch;
    /// skipped empty steps count — the counter jumps).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total individual agent activations (executed + bulk-credited).
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Record one complete SYNC round over `k` agents in O(1): every agent
    /// is credited one activation and the round is an epoch. The
    /// worklist-based SYNC runner uses this — parked agents' activations
    /// are no-ops but still count, exactly as if they had been executed.
    pub fn credit_round(&mut self, k: usize) {
        self.total_activations += k as u64;
        self.rounds += 1;
        self.epochs += 1;
    }

    // ------------------------------------------------------------------
    // ASYNC epoch accounting
    // ------------------------------------------------------------------

    /// Set the first epoch's requirement to the given (active) agents
    /// without completing an epoch. Call once before the first step.
    pub fn init_epoch(&mut self, active: impl Iterator<Item = AgentId>) {
        self.need.fill(false);
        let mut count = 0usize;
        for a in active {
            if !self.need[a.index()] {
                self.need[a.index()] = true;
                count += 1;
            }
        }
        self.remaining = count;
    }

    /// Record one executed activation of `agent`.
    pub fn note_exec(&mut self, agent: AgentId) {
        self.total_activations += 1;
        let i = agent.index();
        if self.need[i] {
            self.need[i] = false;
            self.remaining -= 1;
        }
    }

    /// Record that `agent` was parked: it leaves the requirement set (its
    /// remaining activations this epoch are bulk-credited at the boundary).
    pub fn note_park(&mut self, agent: AgentId) {
        let i = agent.index();
        if self.need[i] {
            self.need[i] = false;
            self.remaining -= 1;
        }
    }

    /// Whether every required agent has activated (or parked) — the epoch
    /// is complete and [`Clock::begin_epoch`] must be called.
    pub fn epoch_ready(&self) -> bool {
        self.remaining == 0
    }

    /// Complete the current epoch and begin the next: bump the epoch
    /// counter, bulk-credit one activation to every agent *not* in the new
    /// requirement (the parked pool, activated once at the boundary by the
    /// procrastinating adversary), and snapshot the new requirement from
    /// the currently-active agents.
    pub fn begin_epoch(&mut self, active: impl Iterator<Item = AgentId>) {
        debug_assert!(self.epoch_ready(), "epoch began before completion");
        self.epochs += 1;
        let mut count = 0usize;
        for a in active {
            if !self.need[a.index()] {
                self.need[a.index()] = true;
                count += 1;
            }
        }
        self.total_activations += (self.k - count) as u64;
        self.remaining = count;
    }

    /// Complete the final epoch of a terminated run: the epoch counter
    /// bumps, but no parked-agent bulk credits are added — time stops at
    /// the boundary, so the procrastinated boundary activations never
    /// happen. (This is also what keeps a run whose agents all park at the
    /// finish line byte-identical to its non-parking twin.)
    pub fn finish_final_epoch(&mut self) {
        debug_assert!(self.epoch_ready(), "final epoch finished early");
        self.epochs += 1;
    }

    /// Record the completion of the ASYNC batch that fired at `fire` (the
    /// steps counter jumps over the skipped empty steps in between).
    pub fn finish_step(&mut self, fire: u64) {
        debug_assert!(fire >= self.steps, "steps went backwards");
        self.steps = fire + 1;
    }

    /// Clamp the steps counter to the runner's limit when the adversary's
    /// next batch would fire at or beyond it (the empty steps up to the
    /// limit still elapsed; what lies beyond never ran).
    pub fn cap_steps(&mut self, max_steps: u64) {
        self.steps = self.steps.max(max_steps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_rng::prelude::*;

    #[test]
    fn sync_rounds_count() {
        let mut c = Clock::new(3);
        for _ in 0..5 {
            c.credit_round(3);
        }
        assert_eq!(c.rounds(), 5);
        assert_eq!(c.epochs(), 5);
        assert_eq!(c.total_activations(), 15);
    }

    #[test]
    fn epoch_requires_every_active_agent() {
        let mut c = Clock::new(3);
        c.init_epoch((0..3).map(AgentId));
        for _ in 0..10 {
            c.note_exec(AgentId(0));
        }
        assert!(!c.epoch_ready());
        c.note_exec(AgentId(1));
        assert!(!c.epoch_ready());
        c.note_exec(AgentId(2));
        assert!(c.epoch_ready());
        c.begin_epoch((0..3).map(AgentId));
        assert_eq!(c.epochs(), 1);
        // The window resets afterwards.
        c.note_exec(AgentId(1));
        c.note_exec(AgentId(2));
        assert!(!c.epoch_ready());
        c.note_exec(AgentId(0));
        assert!(c.epoch_ready());
    }

    #[test]
    fn parked_agents_are_bulk_credited_once_per_epoch() {
        let mut c = Clock::new(4);
        c.init_epoch((0..4).map(AgentId));
        // Agent 3 parks before activating; the others activate.
        c.note_park(AgentId(3));
        for a in 0..3 {
            c.note_exec(AgentId(a));
        }
        assert!(c.epoch_ready());
        // New epoch over the remaining 3 active agents: the parked agent
        // gets exactly one credited activation at the boundary.
        c.begin_epoch((0..3).map(AgentId));
        assert_eq!(c.epochs(), 1);
        assert_eq!(c.total_activations(), 3 + 1);
    }

    #[test]
    fn woken_agents_join_the_next_epoch() {
        let mut c = Clock::new(3);
        c.init_epoch((0..2).map(AgentId)); // agent 2 parked pre-run
        c.note_exec(AgentId(0));
        // Agent 2 wakes mid-epoch: nothing to do now, it simply shows up in
        // the active set at the next boundary.
        c.note_exec(AgentId(1));
        assert!(c.epoch_ready(), "the woken agent is not required yet");
        c.begin_epoch((0..3).map(AgentId));
        // Active at the boundary → no bulk credit; it joins the next
        // epoch's requirement instead.
        assert_eq!(c.total_activations(), 2);
        c.note_exec(AgentId(0));
        c.note_exec(AgentId(1));
        assert!(!c.epoch_ready(), "agent 2 is required from this epoch on");
        c.note_exec(AgentId(2));
        assert!(c.epoch_ready());
    }

    #[test]
    fn steps_jump_over_skipped_empty_steps() {
        let mut c = Clock::new(1);
        c.finish_step(0);
        assert_eq!(c.steps(), 1);
        c.finish_step(7); // batches at steps 1..=6 were empty and skipped
        assert_eq!(c.steps(), 8);
        c.cap_steps(20);
        assert_eq!(c.steps(), 20);
    }

    /// The count-based bookkeeping must match a naive per-agent-scan model
    /// fed the same event stream, for every interleaving of exec/park/wake.
    #[test]
    fn differential_count_based_vs_naive_scan_model() {
        struct Naive {
            epochs: u64,
            activations: u64,
            active: Vec<bool>,
            done: Vec<bool>,
        }
        impl Naive {
            fn boundary_scan(&mut self) {
                // Epoch complete iff every active agent that was required
                // has activated; `done` is only meaningful for required
                // agents, which are exactly those still marked.
                if self.done.iter().any(|&d| !d) {
                    return;
                }
                self.epochs += 1;
                // Bulk rule, naively: every parked agent is activated once
                // at the boundary.
                for (a, &act) in self.active.iter().enumerate() {
                    let _ = a;
                    if !act {
                        self.activations += 1;
                    }
                }
                self.done = self.active.iter().map(|&a| !a).collect();
            }
        }
        let k = 12;
        for case in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(mix(&[0xC10C, case]));
            let mut clock = Clock::new(k);
            let mut active = vec![true; k];
            clock.init_epoch((0..k as u32).map(AgentId));
            let mut naive = Naive {
                epochs: 0,
                activations: 0,
                active: active.clone(),
                done: vec![false; k],
            };
            for _ in 0..400 {
                let a = rng.random_range(0..k);
                match rng.random_range(0..4u32) {
                    0 | 1 => {
                        if active[a] {
                            clock.note_exec(AgentId(a as u32));
                            naive.activations += 1;
                            naive.done[a] = true;
                        }
                    }
                    2 => {
                        if active[a] {
                            active[a] = false;
                            clock.note_park(AgentId(a as u32));
                            naive.active[a] = false;
                            naive.done[a] = true;
                        }
                    }
                    _ => {
                        if !active[a] {
                            active[a] = true;
                            naive.active[a] = true;
                            // Woken agents join at the next boundary: the
                            // naive model marks them done for this epoch.
                            naive.done[a] = true;
                        }
                    }
                }
                // Batch boundary: evaluate epoch completion in both models.
                if clock.epoch_ready() {
                    clock.begin_epoch(
                        active
                            .iter()
                            .enumerate()
                            .filter(|(_, &on)| on)
                            .map(|(i, _)| AgentId(i as u32)),
                    );
                }
                naive.boundary_scan();
                assert_eq!(clock.epochs(), naive.epochs, "case {case}");
                assert_eq!(clock.total_activations(), naive.activations, "case {case}");
            }
            assert!(clock.epochs() > 0, "case {case} never completed an epoch");
        }
    }
}
