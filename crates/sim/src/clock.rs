//! Time accounting: rounds (SYNC), steps and epochs (ASYNC).

/// Tracks simulated time.
///
/// * In SYNC, a *round* activates every agent once; an epoch equals a round.
/// * In ASYNC, the adversary activates agents in arbitrary order; an *epoch*
///   is the smallest interval in which every agent has completed at least one
///   CCM cycle (the standard definition, [Cord-Landwehr et al., ICALP'11],
///   used by the paper).
#[derive(Debug, Clone)]
pub struct Clock {
    rounds: u64,
    steps: u64,
    epochs: u64,
    activated_this_epoch: Vec<bool>,
    remaining_this_epoch: usize,
    total_activations: u64,
}

impl Clock {
    /// New clock for `k` agents.
    pub fn new(k: usize) -> Self {
        Clock {
            rounds: 0,
            steps: 0,
            epochs: 0,
            activated_this_epoch: vec![false; k],
            remaining_this_epoch: k,
            total_activations: 0,
        }
    }

    /// Completed SYNC rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Completed ASYNC scheduler steps (one step = one adversary decision).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Total individual agent activations.
    pub fn total_activations(&self) -> u64 {
        self.total_activations
    }

    /// Record that agent `index` completed a CCM cycle; updates the epoch
    /// counter when every agent has been active since the last epoch boundary.
    pub fn note_activation(&mut self, index: usize) {
        self.total_activations += 1;
        if !self.activated_this_epoch[index] {
            self.activated_this_epoch[index] = true;
            self.remaining_this_epoch -= 1;
            if self.remaining_this_epoch == 0 {
                self.epochs += 1;
                self.activated_this_epoch.fill(false);
                self.remaining_this_epoch = self.activated_this_epoch.len();
            }
        }
    }

    /// Record the end of a SYNC round (the runner activates every agent
    /// before calling this, so a round is also an epoch).
    pub fn end_round(&mut self) {
        self.rounds += 1;
    }

    /// Record one complete SYNC round over `k` agents in O(1): every agent is
    /// credited one activation and the round is an epoch. The worklist-based
    /// SYNC runner uses this instead of `k` [`Clock::note_activation`] calls —
    /// parked agents' activations are no-ops but still count as activations,
    /// exactly as if they had been executed.
    pub fn credit_round(&mut self, k: usize) {
        self.total_activations += k as u64;
        self.rounds += 1;
        self.epochs += 1;
    }

    /// Record the end of one ASYNC scheduler step.
    pub fn end_step(&mut self) {
        self.steps += 1;
    }

    /// The current time value handed to activation contexts: rounds in SYNC
    /// runs, steps in ASYNC runs (they are interchangeable for the purpose of
    /// local wait counting).
    pub fn now(&self) -> u64 {
        self.rounds.max(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_rounds_count() {
        let mut c = Clock::new(3);
        for _ in 0..5 {
            for a in 0..3 {
                c.note_activation(a);
            }
            c.end_round();
        }
        assert_eq!(c.rounds(), 5);
        assert_eq!(c.epochs(), 5);
        assert_eq!(c.total_activations(), 15);
    }

    #[test]
    fn epoch_requires_every_agent() {
        let mut c = Clock::new(3);
        // Agent 0 is activated many times; no epoch completes until 1 and 2
        // have also been activated.
        for _ in 0..10 {
            c.note_activation(0);
        }
        assert_eq!(c.epochs(), 0);
        c.note_activation(1);
        assert_eq!(c.epochs(), 0);
        c.note_activation(2);
        assert_eq!(c.epochs(), 1);
        // Epoch window resets afterwards.
        c.note_activation(1);
        c.note_activation(2);
        assert_eq!(c.epochs(), 1);
        c.note_activation(0);
        assert_eq!(c.epochs(), 2);
    }

    #[test]
    fn single_agent_epochs_equal_activations() {
        let mut c = Clock::new(1);
        for i in 1..=7 {
            c.note_activation(0);
            assert_eq!(c.epochs(), i);
        }
    }
}
