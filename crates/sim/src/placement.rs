//! Initial-placement families: how the `k` agents are laid out on the graph
//! before the first activation.
//!
//! The paper's experiments only ever start *rooted* (all agents on one
//! node), but the surrounding literature runs the same algorithms from
//! scattered and clustered starts. A [`Placement`] is the value-level,
//! seed-deterministic description of such a start configuration: the same
//! `(placement, graph, k, seed)` always produces the same position vector,
//! which is what lets the campaign engine reproduce trials byte-for-byte
//! from recorded seeds.

use crate::ids::AgentId;
use disp_graph::{NodeId, Topology};
use disp_rng::prelude::*;

/// A named, parameterized family of initial configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All `k` agents start on node 0 — the paper's rooted configuration.
    Rooted,
    /// Each agent starts at an independently, uniformly drawn node
    /// (seeded, **with** replacement — collisions form multi-agent groups,
    /// the general configuration of Kshemkalyani et al.). Note that
    /// sampling *without* replacement would already be a valid dispersion.
    ScatteredUniform,
    /// Agents split round-robin across `clusters` distinct, uniformly drawn
    /// camp nodes (seeded). `cluster1` is a rooted start at a random node.
    Clustered {
        /// Number of camps the agents are divided into (≥ 1).
        clusters: usize,
    },
    /// The adversarial two-camp configuration: agents split evenly across
    /// two nodes at (approximately) diametral BFS distance — found by a
    /// seeded double sweep, ties to the smallest node id — so the camps'
    /// DFS territories must interleave across the whole graph.
    AdversarialSpread,
}

impl Placement {
    /// Canonical label (part of the scenario-label grammar): `rooted`,
    /// `scatter`, `cluster<c>`, `spread`.
    pub fn label(&self) -> String {
        match *self {
            Placement::Rooted => "rooted".into(),
            Placement::ScatteredUniform => "scatter".into(),
            Placement::Clustered { clusters } => format!("cluster{clusters}"),
            Placement::AdversarialSpread => "spread".into(),
        }
    }

    /// Inverse of [`Placement::label`].
    pub fn from_label(label: &str) -> Option<Placement> {
        match label {
            "rooted" => Some(Placement::Rooted),
            "scatter" => Some(Placement::ScatteredUniform),
            "spread" => Some(Placement::AdversarialSpread),
            _ => {
                let digits = label.strip_prefix("cluster")?;
                let clusters: usize = digits.parse().ok().filter(|&c| c >= 1)?;
                // Canonical integers only ("cluster04", "cluster+4" are
                // rejected) — placement labels stay a bijection.
                (clusters.to_string() == digits).then_some(Placement::Clustered { clusters })
            }
        }
    }

    /// Whether every agent starts on the same node (what the paper's rooted
    /// algorithms require).
    pub fn is_rooted(&self) -> bool {
        matches!(
            *self,
            Placement::Rooted | Placement::Clustered { clusters: 1 }
        )
    }

    /// One representative of every placement family, in report order.
    pub fn all() -> Vec<Placement> {
        vec![
            Placement::Rooted,
            Placement::ScatteredUniform,
            Placement::Clustered { clusters: 4 },
            Placement::AdversarialSpread,
        ]
    }

    /// The start node of every agent (`positions[i]` is agent `i`'s node),
    /// fully determined by `(self, graph, k, seed)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n` (the dispersion model requires
    /// `k ≤ n`).
    pub fn positions(&self, graph: &Topology, k: usize, seed: u64) -> Vec<NodeId> {
        let n = graph.num_nodes();
        assert!(k >= 1, "a placement needs at least one agent");
        assert!(
            k <= n,
            "placement {} requires k ≤ n (got k={k}, n={n})",
            self.label()
        );
        match *self {
            Placement::Rooted => vec![NodeId(0); k],
            Placement::ScatteredUniform => {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..k)
                    .map(|_| NodeId(rng.random_range(0..n as u64) as u32))
                    .collect()
            }
            Placement::Clustered { clusters } => {
                let camps = clusters.clamp(1, k.min(n));
                let centers = sample_distinct(n, camps, seed);
                (0..k).map(|i| NodeId(centers[i % camps] as u32)).collect()
            }
            Placement::AdversarialSpread => two_diametral_camps(graph, k, seed),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// `count` distinct values from `0..n`, uniformly, via a partial
/// Fisher–Yates shuffle (order matters: the draw order is part of the
/// deterministic contract).
fn sample_distinct(n: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..count {
        let j = rng.random_range(i as u64..n as u64) as usize;
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// The two-camp adversarial start: a seeded double sweep (farthest node
/// from a random start, then farthest node from that) lands on an
/// approximately diametral node pair; agents alternate between the camps.
fn two_diametral_camps(graph: &Topology, k: usize, seed: u64) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let start = NodeId(rng.random_range(0..n as u64) as u32);
    let a = farthest_from(graph, start);
    let b = farthest_from(graph, a);
    (0..k).map(|i| if i % 2 == 0 { a } else { b }).collect()
}

/// The node at maximum BFS distance from `v` (ties to the smallest id).
fn farthest_from(graph: &Topology, v: NodeId) -> NodeId {
    let dist = bfs_from(graph, v);
    let far = (0..graph.num_nodes())
        .filter(|&u| dist[u] != usize::MAX)
        .max_by_key(|&u| (dist[u], std::cmp::Reverse(u)))
        .expect("graphs are non-empty");
    NodeId(far as u32)
}

/// BFS distances on a connected graph (unreachable nodes get `usize::MAX`
/// so they are never preferred).
fn bfs_from(graph: &Topology, start: NodeId) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut dist = vec![usize::MAX; n];
    dist[start.index()] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for port in 1..=graph.degree(v) {
            let (u, _) = graph.traverse(v, disp_graph::Port(port as u32));
            if dist[u.index()] == usize::MAX {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Group agents by their start node — handy for tests and reports.
pub fn occupied_nodes(positions: &[NodeId]) -> Vec<(NodeId, Vec<AgentId>)> {
    let mut groups: std::collections::BTreeMap<u32, Vec<AgentId>> = Default::default();
    for (i, &v) in positions.iter().enumerate() {
        groups.entry(v.0).or_default().push(AgentId(i as u32));
    }
    groups
        .into_iter()
        .map(|(v, agents)| (NodeId(v), agents))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;

    fn graphs() -> Vec<Topology> {
        vec![
            generators::line(17).into(),
            generators::ring(12).into(),
            generators::star(20).into(),
            generators::grid2d(5, 5).into(),
            generators::random_tree(24, 3).into(),
            Topology::complete(16),
            Topology::torus(4, 5),
        ]
    }

    #[test]
    fn labels_round_trip() {
        for p in Placement::all() {
            assert_eq!(Placement::from_label(&p.label()), Some(p), "{p}");
        }
        assert_eq!(
            Placement::from_label("cluster7"),
            Some(Placement::Clustered { clusters: 7 })
        );
        assert_eq!(Placement::from_label("cluster0"), None);
        assert_eq!(Placement::from_label("cluster04"), None);
        assert_eq!(Placement::from_label("cluster+4"), None);
        assert_eq!(Placement::from_label("clusterx"), None);
        assert_eq!(Placement::from_label("nope"), None);
    }

    #[test]
    fn positions_are_valid_and_seed_deterministic() {
        for g in graphs() {
            for p in Placement::all() {
                for k in [1, 2, g.num_nodes() / 2, g.num_nodes()] {
                    let a = p.positions(&g, k, 42);
                    let b = p.positions(&g, k, 42);
                    let c = p.positions(&g, k, 43);
                    assert_eq!(a, b, "{p} on {} must be deterministic", g.name());
                    assert_eq!(a.len(), k);
                    assert!(a.iter().all(|v| v.index() < g.num_nodes()));
                    // A different seed may coincide for tiny/rooted cases but
                    // must not crash; for the seeded families at half
                    // occupancy it should actually move something. (The
                    // two-camp spread is exempt: the double sweep lands on
                    // the same diametral pair from almost every start.)
                    if k >= 4
                        && !p.is_rooted()
                        && p != Placement::AdversarialSpread
                        && k <= g.num_nodes() / 2
                    {
                        assert_ne!(a, c, "{p} on {} ignored its seed", g.name());
                    }
                }
            }
        }
    }

    #[test]
    fn rooted_stacks_everyone_on_node_zero() {
        let g = Topology::from(generators::ring(9));
        assert_eq!(Placement::Rooted.positions(&g, 4, 7), vec![NodeId(0); 4]);
        assert!(Placement::Rooted.is_rooted());
        assert!(Placement::Clustered { clusters: 1 }.is_rooted());
        assert!(!Placement::ScatteredUniform.is_rooted());
    }

    #[test]
    fn scattered_draws_with_replacement() {
        // Independent uniform draws collide (birthday bound): the start is
        // a *general* configuration with multi-agent groups, not an
        // already-valid dispersion. 30 iid draws over 36 nodes leave
        // distinct-node probability < 2e-7, so any seed works here.
        let g = Topology::from(generators::grid2d(6, 6));
        let pos = Placement::ScatteredUniform.positions(&g, 30, 5);
        let mut nodes: Vec<_> = pos.iter().map(|v| v.index()).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert!(
            nodes.len() < 30,
            "iid uniform draws should produce at least one collision"
        );
        assert!(nodes.len() > 10, "but not collapse onto a few nodes");
    }

    #[test]
    fn clustered_uses_exactly_the_camp_count() {
        let g = Topology::from(generators::grid2d(6, 6));
        let pos = Placement::Clustered { clusters: 4 }.positions(&g, 19, 11);
        let groups = occupied_nodes(&pos);
        assert_eq!(groups.len(), 4);
        // Round-robin assignment balances camps within one agent.
        let sizes: Vec<usize> = groups.iter().map(|(_, a)| a.len()).collect();
        assert!(sizes.iter().all(|&s| s == 4 || s == 5), "{sizes:?}");
        // More camps than agents degrades to one agent per camp.
        let few = Placement::Clustered { clusters: 9 }.positions(&g, 3, 11);
        assert_eq!(occupied_nodes(&few).len(), 3);
    }

    #[test]
    fn spread_forms_two_camps_at_diametral_distance() {
        let g = Topology::from(generators::line(21));
        for seed in [0, 9, 77] {
            let pos = Placement::AdversarialSpread.positions(&g, 9, seed);
            let groups = occupied_nodes(&pos);
            // On a line the double sweep always lands on the endpoints,
            // whatever the seeded start was.
            let camps: Vec<usize> = groups.iter().map(|(v, _)| v.index()).collect();
            assert_eq!(camps, vec![0, 20], "seed {seed}");
            let sizes: Vec<usize> = groups.iter().map(|(_, a)| a.len()).collect();
            assert_eq!(sizes.iter().sum::<usize>(), 9);
            assert!(sizes.iter().all(|&s| s == 4 || s == 5), "{sizes:?}");
        }
    }

    #[test]
    #[should_panic(expected = "k ≤ n")]
    fn too_many_agents_rejected() {
        let g = Topology::from(generators::ring(4));
        let _ = Placement::ScatteredUniform.positions(&g, 5, 0);
    }
}
