//! Deterministic fault plans: edge churn and crash-faulty agents.
//!
//! Both fault models are **plans**, fully derived from a seed before the run
//! starts, never from execution state. That is what makes faulty campaigns
//! reproducible: the same seed yields the same kill schedule regardless of
//! thread count, kill/resume, or protocol behavior — the adversary is
//! oblivious, exactly like the activation adversaries of
//! [`crate::adversary`].
//!
//! * [`DynamicAdversary`] — the dynamic-graph model of *Time Optimal
//!   Distance-k-Dispersion on Dynamic Ring* (arXiv 2408.12220): at every
//!   round boundary the previously removed edge is restored and one seeded
//!   edge is removed, so exactly `rate` edges are missing while a round
//!   executes. Backed by the O(1) [`disp_graph::EdgeLiveness`] overlay.
//! * [`CrashPlan`] — `f` distinct victims drawn by a seeded partial
//!   Fisher–Yates shuffle, each assigned a crash time uniform in
//!   `[1, horizon]`. The runners apply due crashes at round boundaries
//!   (SYNC) / step boundaries (ASYNC) *before* snapshotting the worklist,
//!   so a batch never contains a freshly-crashed agent.

use crate::ids::AgentId;
use crate::world::World;
use disp_graph::{NodeId, Port};
use disp_rng::prelude::*;
use disp_rng::splitmix64;

/// Seed tag for the dynamic adversary's edge draws.
const SEED_DYN_EDGE: u64 = 0xFA17_0001;
/// Seed tag for the crash plan's victim/time draws.
const SEED_CRASH: u64 = 0xFA17_0002;

/// Seeded one-edge-per-round (generalized to `rate` edges) dynamic-graph
/// adversary. Each [`DynamicAdversary::advance`] restores the previous
/// round's removed edges and removes `rate` freshly drawn ones; the draw
/// sequence depends only on the seed and the advance count.
#[derive(Debug, Clone)]
pub struct DynamicAdversary {
    rate: u32,
    /// Splitmix stream state, derived once from the seed; each advance
    /// consumes `rate` draws, so the sequence is a pure function of the
    /// seed and the advance count — same obliviousness, no per-round
    /// multi-word hashing. `advance` runs at every round boundary of a
    /// dynamic run (worklist rounds are otherwise nearly free), so its
    /// constant matters: this keeps the dynamic-ring bench within the 2×
    /// envelope of the static ring.
    stream: u64,
    down: Vec<(NodeId, Port)>,
}

impl DynamicAdversary {
    /// A dynamic adversary removing `rate ≥ 1` edges per round.
    pub fn new(seed: u64, rate: u32) -> DynamicAdversary {
        assert!(rate >= 1, "a dynamic adversary must remove at least 1 edge");
        DynamicAdversary {
            rate,
            stream: mix(&[SEED_DYN_EDGE, seed]),
            down: Vec::with_capacity(rate as usize),
        }
    }

    /// Edges removed per round.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// Advance one round boundary: restore last round's edges, remove the
    /// next seeded batch. O(`rate`) regardless of graph size.
    pub fn advance(&mut self, world: &mut World) {
        for (v, p) in self.down.drain(..) {
            let revived = world.revive_edge(v, p);
            debug_assert!(revived, "dynamic adversary lost track of ({v},{p})");
        }
        let n = world.graph().num_nodes() as u64;
        for _ in 0..self.rate {
            // One 64-bit draw per edge; both range reductions are Lemire
            // multiply-shifts (no division on the per-round path).
            let x = splitmix64(&mut self.stream);
            let v = NodeId((((x as u128 * n as u128) >> 64) as u64) as u32);
            let deg = world.graph().degree(v) as u64;
            if deg == 0 {
                continue;
            }
            let p = Port((((x >> 32) * deg) >> 32) as u32 + 1);
            // Two draws may hit the same edge; kill() reports the no-op and
            // the duplicate simply is not recorded (still deterministic).
            if world.kill_edge(v, p) {
                self.down.push((v, p));
            }
        }
    }

    /// Restore every edge this adversary currently holds down.
    pub fn restore_all(&mut self, world: &mut World) {
        for (v, p) in self.down.drain(..) {
            world.revive_edge(v, p);
        }
    }
}

/// A deterministic crash schedule: `f` distinct victims, each with a crash
/// time in `[1, horizon]`, applied by the runners at time boundaries via
/// [`CrashPlan::next_due`].
#[derive(Debug, Clone)]
pub struct CrashPlan {
    /// Crash events sorted by `(time, agent)`.
    events: Vec<(u64, AgentId)>,
    next: usize,
}

impl CrashPlan {
    /// Derive a plan killing `f` of `k` agents at seeded times in
    /// `[1, horizon]`. Victims are drawn without replacement (a partial
    /// Fisher–Yates over `0..k`), so no agent crashes twice.
    pub fn new(seed: u64, k: usize, f: usize, horizon: u64) -> CrashPlan {
        assert!(f <= k, "cannot crash {f} of {k} agents");
        let mut rng = StdRng::seed_from_u64(mix(&[SEED_CRASH, seed]));
        let mut ids: Vec<u32> = (0..k as u32).collect();
        let horizon = horizon.max(1);
        let mut events = Vec::with_capacity(f);
        for i in 0..f {
            let j = i + rng.random_range(0..(k - i) as u64) as usize;
            ids.swap(i, j);
            let time = 1 + rng.random_range(0..horizon);
            events.push((time, AgentId(ids[i])));
        }
        events.sort_unstable();
        CrashPlan { events, next: 0 }
    }

    /// Number of crashes in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan holds no crashes at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The full `(time, victim)` schedule (sorted), for tests and reports.
    pub fn events(&self) -> &[(u64, AgentId)] {
        &self.events
    }

    /// Pop the next victim whose crash time is `≤ now`, if any. Runners
    /// call this in a loop at every time boundary.
    pub fn next_due(&mut self, now: u64) -> Option<AgentId> {
        match self.events.get(self.next) {
            Some(&(time, victim)) if time <= now => {
                self.next += 1;
                Some(victim)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_graph::generators;

    #[test]
    fn crash_plans_are_deterministic_distinct_and_sorted() {
        let a = CrashPlan::new(42, 100, 10, 64);
        let b = CrashPlan::new(42, 100, 10, 64);
        assert_eq!(a.events(), b.events(), "same seed, same plan");
        assert_eq!(a.len(), 10);
        let mut victims: Vec<u32> = a.events().iter().map(|&(_, v)| v.0).collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 10, "victims are distinct");
        for w in a.events().windows(2) {
            assert!(w[0] <= w[1], "events sorted");
        }
        for &(t, _) in a.events() {
            assert!((1..=64).contains(&t), "time {t} outside [1, horizon]");
        }
        let c = CrashPlan::new(43, 100, 10, 64);
        assert_ne!(a.events(), c.events(), "different seed, different plan");
    }

    #[test]
    fn next_due_pops_in_time_order() {
        let mut plan = CrashPlan::new(7, 10, 3, 8);
        let times: Vec<u64> = plan.events().iter().map(|&(t, _)| t).collect();
        let mut popped = Vec::new();
        for now in 0..=8 {
            while let Some(v) = plan.next_due(now) {
                popped.push((now, v));
            }
        }
        assert_eq!(popped.len(), 3);
        for (i, &(now, _)) in popped.iter().enumerate() {
            assert!(times[i] <= now, "event {i} fired before its time");
        }
        assert_eq!(plan.next_due(u64::MAX), None, "plan exhausted");
    }

    #[test]
    fn dynamic_adversary_holds_exactly_rate_edges_down() {
        let mut world = World::new_rooted(generators::ring(1000), 1, NodeId(0));
        let mut dynamics = DynamicAdversary::new(9, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            dynamics.advance(&mut world);
            let live = world.liveness().expect("advance enables liveness");
            assert_eq!(live.dead_edges(), 1);
            seen.insert(dynamics.down[0]);
        }
        assert!(seen.len() > 50, "draws must spread over the ring");
        dynamics.restore_all(&mut world);
        assert!(world.liveness().unwrap().all_alive());
    }

    #[test]
    fn dynamic_adversary_is_reproducible() {
        let mut w1 = World::new_rooted(generators::ring(64), 1, NodeId(0));
        let mut w2 = World::new_rooted(generators::ring(64), 1, NodeId(0));
        let mut d1 = DynamicAdversary::new(5, 2);
        let mut d2 = DynamicAdversary::new(5, 2);
        for _ in 0..50 {
            d1.advance(&mut w1);
            d2.advance(&mut w2);
            assert_eq!(d1.down, d2.down);
        }
    }
}
