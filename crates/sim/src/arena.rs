//! A slab of index-linked agent lists — the allocation-free backing store
//! for protocol-side bookkeeping (rider queues, idle-guest pools, returned
//! prober lists).
//!
//! Dispersion protocols keep several small, disjoint waiting lists of
//! agents: the cohort riders still to be settled, the recruited guests
//! idling at the DFS head, the probers that have reported back. Holding
//! each list in its own `Vec<AgentId>` means per-trial heap churn
//! (allocation on growth, memmove on sorted insertion) — measurable across
//! the thousands of small trials a campaign grid runs.
//!
//! [`ListArena`] replaces all of them with one pair of `u32` link arrays
//! sized to the agent count: each agent is a slab slot, each list is a
//! [`ListHandle`] (head/tail/len), and membership is *intrusive* — an agent
//! threads through at most one list at a time, which is exactly the
//! protocol invariant (an agent is a rider *or* an idle guest *or* a
//! returned prober, never two at once; debug builds assert it). After
//! construction the arena never allocates: insertion and removal relink
//! indices, and [`ListArena::reset`] returns the slab to the empty state in
//! one pass for reuse across trials.
//!
//! Order is part of the protocol contract, so the arena is a *sequence*
//! slab, not a set: [`push_back`](ListArena::push_back) +
//! [`pop_front`](ListArena::pop_front) give FIFO,
//! [`insert_sorted`](ListArena::insert_sorted) maintains ascending index
//! order (agent ids are index + 1, so ascending index = ascending id).

use crate::ids::AgentId;

/// Sentinel for "no slot".
const NONE: u32 = u32::MAX;

/// One intrusive list threaded through a [`ListArena`]. Plain data —
/// copyable, default-empty; the arena does the linking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListHandle {
    head: u32,
    tail: u32,
    len: u32,
}

impl Default for ListHandle {
    fn default() -> Self {
        ListHandle::new()
    }
}

impl ListHandle {
    /// An empty list.
    pub const fn new() -> ListHandle {
        ListHandle {
            head: NONE,
            tail: NONE,
            len: 0,
        }
    }

    /// Number of agents in the list.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first agent, if any (for ascending-sorted lists: the smallest).
    pub fn front(&self) -> Option<AgentId> {
        (self.head != NONE).then_some(AgentId(self.head))
    }
}

/// The shared slab: one `next` link per agent slot. Singly linked — the
/// protocol lists only ever insert in order and remove from the front, so
/// back-links would be dead weight.
#[derive(Debug, Clone)]
pub struct ListArena {
    next: Vec<u32>,
    /// Debug-only membership flag (an agent may thread through at most one
    /// list); in release builds correctness rests on the protocol invariant.
    #[cfg(debug_assertions)]
    linked: Vec<bool>,
}

impl ListArena {
    /// An arena for `k` agent slots. This is the only allocation the arena
    /// ever performs.
    pub fn new(k: usize) -> ListArena {
        ListArena {
            next: vec![NONE; k],
            #[cfg(debug_assertions)]
            linked: vec![false; k],
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.next.len()
    }

    /// Return every slot to the unlinked state (the caller must also reset
    /// its handles to [`ListHandle::new`]). One pass, no allocation — the
    /// reuse point for batched trials.
    pub fn reset(&mut self) {
        self.next.fill(NONE);
        #[cfg(debug_assertions)]
        self.linked.fill(false);
    }

    #[cfg(debug_assertions)]
    fn mark_linked(&mut self, slot: usize) {
        debug_assert!(!self.linked[slot], "agent {slot} already threads a list");
        self.linked[slot] = true;
    }

    #[cfg(debug_assertions)]
    fn mark_unlinked(&mut self, slot: usize) {
        debug_assert!(self.linked[slot], "agent {slot} not in any list");
        self.linked[slot] = false;
    }

    #[cfg(not(debug_assertions))]
    fn mark_linked(&mut self, _slot: usize) {}

    #[cfg(not(debug_assertions))]
    fn mark_unlinked(&mut self, _slot: usize) {}

    /// Append `agent` at the back of `list`.
    pub fn push_back(&mut self, list: &mut ListHandle, agent: AgentId) {
        let slot = agent.index();
        self.mark_linked(slot);
        self.next[slot] = NONE;
        if list.tail == NONE {
            list.head = slot as u32;
        } else {
            self.next[list.tail as usize] = slot as u32;
        }
        list.tail = slot as u32;
        list.len += 1;
    }

    /// Remove and return the front agent, if any.
    pub fn pop_front(&mut self, list: &mut ListHandle) -> Option<AgentId> {
        if list.head == NONE {
            return None;
        }
        let slot = list.head as usize;
        list.head = self.next[slot];
        if list.head == NONE {
            list.tail = NONE;
        }
        self.next[slot] = NONE;
        list.len -= 1;
        self.mark_unlinked(slot);
        Some(AgentId(slot as u32))
    }

    /// Insert `agent` keeping the list in ascending slot order. A linear
    /// front scan — the protocol lists are short and insertions cluster
    /// near the front (returning probers are the smallest unsettled ids).
    pub fn insert_sorted(&mut self, list: &mut ListHandle, agent: AgentId) {
        let slot = agent.index() as u32;
        if list.head == NONE || slot < list.head {
            self.mark_linked(slot as usize);
            self.next[slot as usize] = list.head;
            if list.head == NONE {
                list.tail = slot;
            }
            list.head = slot;
            list.len += 1;
            return;
        }
        self.mark_linked(slot as usize);
        let mut at = list.head;
        while self.next[at as usize] != NONE && self.next[at as usize] < slot {
            at = self.next[at as usize];
        }
        self.next[slot as usize] = self.next[at as usize];
        self.next[at as usize] = slot;
        if self.next[slot as usize] == NONE {
            list.tail = slot;
        }
        list.len += 1;
    }

    /// Iterate the list front to back without removing.
    pub fn iter<'a>(&'a self, list: &ListHandle) -> ListIter<'a> {
        ListIter {
            arena: self,
            at: list.head,
        }
    }

    /// Drain the whole list front to back into `out` (appending), leaving
    /// the handle empty. The caller-supplied buffer keeps this
    /// allocation-free after warm-up.
    pub fn drain_into(&mut self, list: &mut ListHandle, out: &mut Vec<AgentId>) {
        let mut at = list.head;
        while at != NONE {
            out.push(AgentId(at));
            let next = self.next[at as usize];
            self.next[at as usize] = NONE;
            self.mark_unlinked(at as usize);
            at = next;
        }
        *list = ListHandle::new();
    }
}

/// Front-to-back iterator over one list. See [`ListArena::iter`].
pub struct ListIter<'a> {
    arena: &'a ListArena,
    at: u32,
}

impl Iterator for ListIter<'_> {
    type Item = AgentId;

    fn next(&mut self) -> Option<AgentId> {
        if self.at == NONE {
            return None;
        }
        let slot = self.at as usize;
        self.at = self.arena.next[slot];
        Some(AgentId(slot as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(arena: &ListArena, list: &ListHandle) -> Vec<u32> {
        arena.iter(list).map(|a| a.0).collect()
    }

    #[test]
    fn fifo_push_pop() {
        let mut arena = ListArena::new(8);
        let mut list = ListHandle::new();
        for i in [3u32, 1, 5] {
            arena.push_back(&mut list, AgentId(i));
        }
        assert_eq!(list.len(), 3);
        assert_eq!(ids(&arena, &list), vec![3, 1, 5]);
        assert_eq!(arena.pop_front(&mut list), Some(AgentId(3)));
        assert_eq!(arena.pop_front(&mut list), Some(AgentId(1)));
        assert_eq!(arena.pop_front(&mut list), Some(AgentId(5)));
        assert_eq!(arena.pop_front(&mut list), None);
        assert!(list.is_empty());
        assert_eq!(list, ListHandle::new());
    }

    #[test]
    fn sorted_insertion_keeps_ascending_order() {
        let mut arena = ListArena::new(16);
        let mut list = ListHandle::new();
        for i in [7u32, 2, 11, 0, 5, 9] {
            arena.insert_sorted(&mut list, AgentId(i));
        }
        assert_eq!(ids(&arena, &list), vec![0, 2, 5, 7, 9, 11]);
        // pop_front on a sorted list yields the smallest.
        assert_eq!(arena.pop_front(&mut list), Some(AgentId(0)));
        // Re-insertion after removal lands back in order, including at the
        // tail (tail link must follow).
        arena.insert_sorted(&mut list, AgentId(15));
        arena.insert_sorted(&mut list, AgentId(3));
        assert_eq!(ids(&arena, &list), vec![2, 3, 5, 7, 9, 11, 15]);
        arena.push_back(&mut list, AgentId(0));
        assert_eq!(ids(&arena, &list).last(), Some(&0));
    }

    #[test]
    fn drain_preserves_order_and_empties() {
        let mut arena = ListArena::new(8);
        let mut list = ListHandle::new();
        for i in [4u32, 6, 1] {
            arena.push_back(&mut list, AgentId(i));
        }
        let mut out = Vec::new();
        arena.drain_into(&mut list, &mut out);
        assert_eq!(out, vec![AgentId(4), AgentId(6), AgentId(1)]);
        assert!(list.is_empty());
        // Drained slots are immediately reusable.
        arena.insert_sorted(&mut list, AgentId(6));
        arena.insert_sorted(&mut list, AgentId(4));
        assert_eq!(ids(&arena, &list), vec![4, 6]);
    }

    #[test]
    fn independent_lists_share_one_slab() {
        let mut arena = ListArena::new(8);
        let mut riders = ListHandle::new();
        let mut guests = ListHandle::new();
        arena.insert_sorted(&mut riders, AgentId(2));
        arena.insert_sorted(&mut riders, AgentId(5));
        arena.insert_sorted(&mut guests, AgentId(3));
        assert_eq!(ids(&arena, &riders), vec![2, 5]);
        assert_eq!(ids(&arena, &guests), vec![3]);
        // Moving an agent between lists: remove, then insert.
        assert_eq!(arena.pop_front(&mut riders), Some(AgentId(2)));
        arena.insert_sorted(&mut guests, AgentId(2));
        assert_eq!(ids(&arena, &guests), vec![2, 3]);
    }

    #[test]
    fn reset_restores_the_empty_state() {
        let mut arena = ListArena::new(4);
        let mut list = ListHandle::new();
        for i in 0..4 {
            arena.push_back(&mut list, AgentId(i));
        }
        arena.reset();
        let mut list = ListHandle::new();
        arena.insert_sorted(&mut list, AgentId(1));
        assert_eq!(ids(&arena, &list), vec![1]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already threads a list")]
    fn double_membership_is_caught_in_debug() {
        let mut arena = ListArena::new(4);
        let mut a = ListHandle::new();
        let mut b = ListHandle::new();
        arena.push_back(&mut a, AgentId(1));
        arena.push_back(&mut b, AgentId(1));
    }
}
