//! End-to-end cluster tests: boot a coordinator on an ephemeral port, run
//! real worker loops against it over real sockets, and check the claims
//! the subsystem makes:
//!
//! 1. **Sharded determinism** — a grid executed by four workers (batches
//!    of one, interleaved arbitrarily) streams JSONL byte-identical to an
//!    offline `disp-campaign` run of the same grid.
//! 2. **Crash recovery** — a worker that leases a batch and dies without
//!    completing it (simulated SIGKILL: no heartbeat, no upload) delays
//!    nothing but its own lease TTL; the batch is requeued, re-executed,
//!    and the bytes still match.
//! 3. **Cache-tier reconciliation** — with the coordinator's shared cache
//!    squeezed to one entry, a resubmitted grid is served from the
//!    worker's *local* cache via the digest handshake, byte-identical,
//!    without re-executing a single trial.

use disp_analysis::json::Json;
use disp_analysis::TrialRecord;
use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::run::run_campaign;
use disp_cluster::{Coordinator, LeaseReply, WorkerShared, WorkerStats, WorkerSummary};
use disp_core::scenario::{Registry, ScenarioSpec};
use disp_serve::cache::CacheBudget;
use disp_serve::cluster::HttpCoordinator;
use disp_serve::{
    parse_metric, Client, CoordinatorConfig, ServeConfig, Server, WorkerProcessConfig,
};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn mini_labels() -> Vec<String> {
    let spec = CampaignSpec::mini(Mode::Quick, 0);
    spec.sections
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.point_id()))
        .collect()
}

fn mini_submission(seed: u64) -> Json {
    Json::Obj(vec![
        (
            "scenarios".into(),
            Json::Arr(mini_labels().into_iter().map(Json::Str).collect()),
        ),
        ("reps".into(), Json::Num(2.0)),
        ("seed".into(), Json::from_u64_lossless(seed)),
    ])
}

/// What `disp-campaign run` would produce offline for the same grid.
fn offline_jsonl(seed: u64) -> String {
    let scenarios: Vec<ScenarioSpec> = mini_labels()
        .iter()
        .map(|l| ScenarioSpec::from_label(l).unwrap())
        .collect();
    let spec = CampaignSpec::custom(scenarios, 2, seed);
    let (records, _) = run_campaign(&spec, None, 1, &Registry::builtin()).unwrap();
    let mut out = String::new();
    for rec in &records {
        out.push_str(&TrialRecord::to_json_line(rec));
        out.push('\n');
    }
    out
}

fn submit(client: &mut Client, seed: u64) -> String {
    let resp = client.post_json("/runs", &mini_submission(seed)).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    resp.json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

fn wait_done(client: &mut Client, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let doc = client.get(&format!("/runs/{id}")).unwrap().json().unwrap();
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => return doc,
            Some("queued") | Some("running") => {
                assert!(
                    Instant::now() < deadline,
                    "run {id} never finished: {doc:?}"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("run {id} ended in {other:?}"),
        }
    }
}

fn metric(client: &mut Client, name: &str) -> u64 {
    let body = client.get("/metrics").unwrap().text();
    parse_metric(&body, name).unwrap_or_else(|| panic!("metric {name} missing"))
}

/// A real worker loop on a thread; stopped via its `WorkerShared`.
fn spawn_worker(
    addr: &str,
    id: &str,
) -> (Arc<WorkerShared>, JoinHandle<Result<WorkerSummary, String>>) {
    let shared = WorkerShared::new();
    let handle = {
        let addr = addr.to_string();
        let cfg = WorkerProcessConfig {
            id: id.to_string(),
            threads: 1,
            cache_dir: None,
            poll: Duration::from_millis(25),
        };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || disp_serve::run_worker(&addr, &cfg, &shared))
    };
    (shared, handle)
}

#[test]
fn four_workers_shard_a_grid_byte_identically_even_through_a_worker_crash() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            http_threads: 4,
            coordinator: Some(CoordinatorConfig {
                batch_size: 1,
                lease_ttl: Duration::from_millis(1500),
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let expected = offline_jsonl(7);
    let total = 2 * mini_labels().len() as u64;

    let mut client = Client::new(&addr);
    let id = submit(&mut client, 7);

    // A "worker" that leases one batch and dies without heartbeating or
    // completing — the observable behaviour of SIGKILL mid-batch. Leasing
    // happens *before* the healthy workers start, so the crash is
    // guaranteed to be in the execution path, not a lucky miss.
    let crashed_batch = {
        let mut transport = HttpCoordinator::new(&addr);
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match transport.lease("crasher", WorkerStats::default()).unwrap() {
                LeaseReply::Batch(a) => break a,
                _ => {
                    assert!(Instant::now() < deadline, "job never published a batch");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    };

    let workers: Vec<_> = (1..=4)
        .map(|i| spawn_worker(&addr, &format!("w{i}")))
        .collect();

    wait_done(&mut client, &id);
    let results = client.get(&format!("/runs/{id}/results")).unwrap();
    assert_eq!(results.status, 200);
    assert_eq!(
        results.text(),
        expected,
        "cluster results differ from the offline run"
    );

    // The crasher's lease expired and its batch was re-executed: recovery
    // is visible in the metrics, and no trial ran twice *observably* (a
    // stale late completion would be dropped, not double-counted).
    assert!(metric(&mut client, "disp_leases_expired_total") >= 1);
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
    let body = client.get("/metrics").unwrap().text();
    assert!(
        body.contains("disp_cluster_worker_trials_total{worker=\"w"),
        "per-worker trial gauges missing:\n{body}"
    );

    // The event stream tagged completions with the executing worker.
    let events = client.get(&format!("/runs/{id}/events")).unwrap().text();
    assert!(
        events.contains("\"worker\":\"w"),
        "no worker-tagged completion events:\n{events}"
    );

    // Workers drain cleanly; between them they uploaded the whole grid
    // (the crasher uploaded nothing).
    let mut uploaded = 0;
    for (shared, handle) in workers {
        shared.request_stop();
        let summary = handle.join().unwrap().unwrap();
        uploaded += summary.uploaded;
    }
    assert_eq!(uploaded, total, "workers uploaded a different trial count");
    assert_eq!(metric(&mut client, "disp_cluster_workers_busy"), 0);
    assert_eq!(metric(&mut client, "disp_leases_active"), 0);
    server.shutdown();

    // The crashed batch really was a grid batch (sanity on the setup).
    assert_eq!(crashed_batch.slots.len(), 1);
}

#[test]
fn a_squeezed_shared_cache_is_refilled_from_worker_caches_not_re_execution() {
    // One entry of shared cache: after the first run, the coordinator has
    // forgotten nearly everything and only the worker's local cache still
    // holds the records.
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            http_threads: 2,
            cache_budget: CacheBudget {
                max_entries: 1,
                ..CacheBudget::default()
            },
            coordinator: Some(CoordinatorConfig {
                batch_size: 4,
                lease_ttl: Duration::from_secs(10),
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let expected = offline_jsonl(7);
    let total = 2 * mini_labels().len() as u64;

    // A single worker, so its local cache provably covers the whole grid.
    let (shared, handle) = spawn_worker(&addr, "w1");
    let mut client = Client::new(&addr);

    let first = submit(&mut client, 7);
    wait_done(&mut client, &first);
    assert_eq!(
        client
            .get(&format!("/runs/{first}/results"))
            .unwrap()
            .text(),
        expected
    );
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
    assert!(metric(&mut client, "disp_cache_evictions_total") > 0);
    assert_eq!(metric(&mut client, "disp_cache_entries"), 1);

    // Resubmission: the digest handshake finds the coordinator's job store
    // empty, the worker answers from its local cache (zero wall time), and
    // the executed-trials counter does not move at all.
    let second = submit(&mut client, 7);
    let status = wait_done(&mut client, &second);
    assert_eq!(
        client
            .get(&format!("/runs/{second}/results"))
            .unwrap()
            .text(),
        expected
    );
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
    assert_eq!(status.get("executed").and_then(Json::as_u64), Some(0));

    shared.request_stop();
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.executed, total, "first run executed every trial");
    assert!(
        summary.local_hits >= total - 1,
        "second run should have been local cache hits, got {}",
        summary.local_hits
    );
    server.shutdown();
}
