//! End-to-end tests for the live-telemetry surface: the SSE event stream,
//! the per-point streaming statistics on run status, the trace endpoint,
//! and the latency/duration histograms on `/metrics`.

use disp_analysis::json::Json;
use disp_serve::{parse_metric, Client, ServeConfig, Server};

fn boot() -> (Server, String) {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            http_threads: 4,
            job_threads: 2,
            cache_dir: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn small_submission(seed: u64) -> Json {
    Json::Obj(vec![
        (
            "scenarios".into(),
            Json::Arr(vec![
                Json::Str("star/k12/rooted/sync/probe-dfs".into()),
                Json::Str("rtree/k12/rooted/async-rand0.7/ks-dfs".into()),
            ]),
        ),
        ("reps".into(), Json::Num(3.0)),
        ("seed".into(), Json::from_u64_lossless(seed)),
    ])
}

fn submit(client: &mut Client, seed: u64) -> (String, usize) {
    let resp = client.post_json("/runs", &small_submission(seed)).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    let doc = resp.json().unwrap();
    let id = doc.get("id").and_then(Json::as_str).unwrap().to_string();
    let total = doc.get("total").and_then(Json::as_u64).unwrap() as usize;
    (id, total)
}

/// Collect the `data:` payloads of an SSE body as parsed JSON objects.
fn sse_events(body: &str) -> Vec<Json> {
    body.lines()
        .filter_map(|line| line.strip_prefix("data: "))
        .map(|payload| Json::parse(payload).expect("SSE payload parses"))
        .collect()
}

fn kind_count(events: &[Json], kind: &str) -> usize {
    events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some(kind))
        .count()
}

/// The event stream delivers one started+completed pair per executed
/// trial, lifecycle events bracket the run, the stream closes cleanly
/// when the job settles — and a warm re-submission streams `cached`
/// events instead of going silent.
#[test]
fn event_stream_accounts_for_every_trial_and_closes_cleanly() {
    let (server, addr) = boot();
    let mut client = Client::new(&addr);
    let (id, total) = submit(&mut client, 11);

    // Subscribing from a second connection while the run executes: the
    // GET blocks until the server closes the stream at settle time, so a
    // complete response body *is* the clean-close witness (a severed
    // chunked stream would fail to decode).
    let mut subscriber = Client::new(&addr);
    let resp = subscriber.get(&format!("/runs/{id}/events")).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/event-stream")));
    let events = sse_events(&resp.text());
    assert_eq!(kind_count(&events, "started"), total);
    assert_eq!(kind_count(&events, "completed"), total);
    assert_eq!(kind_count(&events, "cached"), 0);
    assert_eq!(kind_count(&events, "overflow"), 0);
    // Lifecycle: queued → running → done, in order.
    let states: Vec<String> = events
        .iter()
        .filter(|e| e.get("event").and_then(Json::as_str) == Some("job_state"))
        .map(|e| e.get("state").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert_eq!(states, ["queued", "running", "done"]);
    // Every completed event carries wall-clock micros (non-content, so it
    // lives here and never in the results stream).
    for event in &events {
        if event.get("event").and_then(Json::as_str) == Some("completed") {
            assert!(event.get("wall_micros").and_then(Json::as_u64).is_some());
        }
    }

    // Warm re-submission: the grid is a pure cache hit, and the stream
    // says so explicitly.
    let (warm_id, _) = submit(&mut client, 11);
    let resp = subscriber.get(&format!("/runs/{warm_id}/events")).unwrap();
    let events = sse_events(&resp.text());
    assert_eq!(kind_count(&events, "cached"), total);
    assert_eq!(kind_count(&events, "started"), 0);

    server.shutdown();
}

/// Polling `GET /runs/:id` while the job runs: `done` is monotone, and the
/// final document carries per-point streaming statistics that agree with
/// the grid (count = reps per label) plus the throughput clock.
#[test]
fn run_status_counts_are_monotone_and_point_stats_cover_the_grid() {
    let (server, addr) = boot();
    let mut client = Client::new(&addr);
    let (id, total) = submit(&mut client, 23);

    let mut last_done = 0u64;
    let final_doc = loop {
        let doc = client.get(&format!("/runs/{id}")).unwrap().json().unwrap();
        let done = doc.get("done").and_then(Json::as_u64).unwrap();
        assert!(
            done >= last_done,
            "done went backwards: {last_done} → {done}"
        );
        last_done = done;
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => break doc,
            Some("queued" | "running") => std::thread::sleep(std::time::Duration::from_millis(2)),
            other => panic!("run ended {other:?}"),
        }
    };

    let points = match final_doc.get("points") {
        Some(Json::Obj(entries)) => entries,
        other => panic!("no points object: {other:?}"),
    };
    assert_eq!(points.len(), 2, "one stats entry per grid label");
    let mut counted = 0;
    for (label, stats) in points {
        let count = stats.get("count").and_then(Json::as_u64).unwrap();
        assert_eq!(count, 3, "label {label} saw {count} trials");
        counted += count as usize;
        for measure in ["moves", "time"] {
            let m = stats.get(measure).unwrap();
            let mean = m.get("mean").and_then(Json::as_f64).unwrap();
            let min = m.get("min").and_then(Json::as_f64).unwrap();
            let max = m.get("max").and_then(Json::as_f64).unwrap();
            let p50 = m.get("p50").and_then(Json::as_f64).unwrap();
            assert!(mean > 0.0 && min <= mean && mean <= max);
            assert!(p50 >= min && p50 <= max);
        }
    }
    assert_eq!(counted, total);
    assert!(final_doc
        .get("elapsed_secs")
        .and_then(Json::as_f64)
        .is_some_and(|s| s >= 0.0));
    assert!(final_doc
        .get("throughput_per_sec")
        .and_then(Json::as_f64)
        .is_some_and(|t| t > 0.0));

    server.shutdown();
}

/// `GET /trace` renders the same bytes for the same (scenario, seed),
/// truncates at the requested cap, and rejects bad requests with typed
/// 400s instead of running anything.
#[test]
fn trace_endpoint_is_deterministic_capped_and_validated() {
    let (server, addr) = boot();
    let mut client = Client::new(&addr);
    let path = "/trace?scenario=star/k8/rooted/sync/probe-dfs&seed=5";
    let a = client.get(path).unwrap();
    assert_eq!(a.status, 200);
    let b = client.get(path).unwrap();
    assert_eq!(a.text(), b.text(), "trace is not deterministic");
    let tail = a.text();
    let end = tail.lines().last().unwrap().to_string();
    let end = Json::parse(&end).unwrap();
    assert_eq!(end.get("event").and_then(Json::as_str), Some("trace_end"));
    assert_eq!(end.get("truncated"), Some(&Json::Bool(false)));
    // The probe-dfs settle milestone (code 1) appears in the log.
    assert!(tail.contains("\"event\":\"milestone\""), "{tail}");

    let capped = client.get(&format!("{path}&cap=3")).unwrap();
    let capped = capped.text();
    let end = Json::parse(capped.lines().last().unwrap()).unwrap();
    assert_eq!(end.get("events").and_then(Json::as_u64), Some(3));
    assert_eq!(end.get("truncated"), Some(&Json::Bool(true)));

    for bad in [
        "/trace",
        "/trace?scenario=nope/k8",
        "/trace?scenario=star/k8/rooted/sync/probe-dfs&seed=minus",
        "/trace?scenario=star/k8/rooted/sync/probe-dfs&cap=0",
    ] {
        let resp = client.get(bad).unwrap();
        assert_eq!(resp.status, 400, "{bad}");
        assert!(resp.json().unwrap().get("error").is_some(), "{bad}");
    }

    server.shutdown();
}

/// `/metrics` exposes the new histograms and gauges with live counts:
/// request latency observes every request, trial durations observe every
/// executed trial, and the queue-wait histogram sees each job once.
#[test]
fn metrics_histograms_observe_requests_trials_and_queue_waits() {
    let (server, addr) = boot();
    let mut client = Client::new(&addr);
    let (id, total) = submit(&mut client, 31);
    // Wait for settle via the event stream (blocks until close).
    let _ = client.get(&format!("/runs/{id}/events")).unwrap();

    let body = client.get("/metrics").unwrap().text();
    let get =
        |name: &str| parse_metric(&body, name).unwrap_or_else(|| panic!("missing metric {name}"));
    assert!(get("disp_http_request_duration_us_count") >= 2);
    assert_eq!(
        get("disp_http_request_duration_us_bucket{le=\"+Inf\"}"),
        get("disp_http_request_duration_us_count"),
    );
    assert_eq!(get("disp_trial_duration_us_count"), total as u64);
    assert_eq!(get("disp_job_queue_wait_us_count"), 1);
    assert_eq!(get("disp_http_workers"), 4);
    // This very request is being served, so at least one worker is busy.
    assert!(get("disp_http_workers_busy") >= 1);
    assert_eq!(get("disp_jobs_evicted_total"), 0);

    server.shutdown();
}
