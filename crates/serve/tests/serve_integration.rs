//! End-to-end service tests: boot `disp-serve` on an ephemeral port, drive
//! it over real sockets with the `disp_serve::client`, and check the two
//! properties the subsystem exists for:
//!
//! 1. **Determinism over HTTP** — the streamed JSONL for a fixed
//!    `(labels, seed, reps)` submission is byte-identical to an offline
//!    `disp-campaign` run of the same grid, no matter how many clients
//!    race their submissions.
//! 2. **Content-addressed caching** — a repeated submission executes zero
//!    new trials (`/metrics` is the witness) and still returns the same
//!    bytes.

use disp_analysis::json::Json;
use disp_analysis::TrialRecord;
use disp_campaign::grid::{CampaignSpec, Mode};
use disp_campaign::run::run_campaign;
use disp_campaign::telemetry::timeline_to_jsonl;
use disp_core::scenario::{Registry, ScenarioSpec};
use disp_serve::{parse_metric, Client, ServeConfig, Server};
use std::time::{Duration, Instant};

/// The `mini` campaign's grid, reshaped as the ad-hoc submission a client
/// would POST: its canonical labels plus a uniform repetition count.
fn mini_labels() -> Vec<String> {
    let spec = CampaignSpec::mini(Mode::Quick, 0);
    spec.sections
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.point_id()))
        .collect()
}

fn mini_submission(seed: u64) -> Json {
    Json::Obj(vec![
        (
            "scenarios".into(),
            Json::Arr(mini_labels().into_iter().map(Json::Str).collect()),
        ),
        ("reps".into(), Json::Num(2.0)),
        ("seed".into(), Json::from_u64_lossless(seed)),
    ])
}

/// What `disp-campaign run` would produce offline for the same grid, in
/// grid order, as JSONL text.
fn offline_jsonl(seed: u64) -> String {
    let scenarios: Vec<ScenarioSpec> = mini_labels()
        .iter()
        .map(|l| ScenarioSpec::from_label(l).unwrap())
        .collect();
    let spec = CampaignSpec::custom(scenarios, 2, seed);
    let (records, _) = run_campaign(&spec, None, 1, &Registry::builtin()).unwrap();
    let mut out = String::new();
    for rec in &records {
        out.push_str(&TrialRecord::to_json_line(rec));
        out.push('\n');
    }
    out
}

fn wait_done(client: &mut Client, id: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client.get(&format!("/runs/{id}")).unwrap();
        assert_eq!(status.status, 200);
        let doc = status.json().unwrap();
        match doc.get("state").and_then(Json::as_str) {
            Some("done") => return doc,
            Some("queued") | Some("running") => {
                assert!(
                    Instant::now() < deadline,
                    "run {id} never finished: {doc:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("run {id} ended in {other:?}"),
        }
    }
}

fn metric(client: &mut Client, name: &str) -> u64 {
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    parse_metric(&resp.text(), name).unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn concurrent_submissions_are_deterministic_and_the_repeat_is_pure_cache() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            http_threads: 4,
            job_threads: 2,
            cache_dir: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();
    let expected = offline_jsonl(7);
    let total = 2 * mini_labels().len() as u64;

    // Phase 1: four clients race identical submissions of the mini grid.
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::new(&addr);
                    let resp = client.post_json("/runs", &mini_submission(7)).unwrap();
                    assert_eq!(resp.status, 201, "{}", resp.text());
                    let id = resp
                        .json()
                        .unwrap()
                        .get("id")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string();
                    wait_done(&mut client, &id);
                    let results = client.get(&format!("/runs/{id}/results")).unwrap();
                    assert_eq!(results.status, 200);
                    assert_eq!(
                        results.header("transfer-encoding").map(str::to_string),
                        Some("chunked".into())
                    );
                    results.text()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // (a) Every streamed body is byte-identical to the offline CLI run.
    for body in &bodies {
        assert_eq!(body, &expected, "HTTP results differ from the offline run");
    }

    // The grid ran at most once: the FIFO executor means the three
    // followers were served from the cache populated by the first job.
    let mut client = Client::new(&addr);
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
    assert!(metric(&mut client, "disp_cache_hits_total") >= 3 * total);

    // Phase 2: (b) a fifth, identical submission is a 100% cache hit — the
    // executed-trials counter does not move at all.
    let resp = client.post_json("/runs", &mini_submission(7)).unwrap();
    assert_eq!(resp.status, 201);
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let status = wait_done(&mut client, &id);
    assert_eq!(status.get("cache_hits").and_then(Json::as_u64), Some(total));
    assert_eq!(status.get("executed").and_then(Json::as_u64), Some(0));
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
    let results = client.get(&format!("/runs/{id}/results")).unwrap();
    assert_eq!(results.text(), expected);

    // A different seed is a different content address: nothing aliases.
    let resp = client.post_json("/runs", &mini_submission(8)).unwrap();
    let id8 = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let status8 = wait_done(&mut client, &id8);
    assert_eq!(status8.get("executed").and_then(Json::as_u64), Some(total));
    assert_ne!(
        client.get(&format!("/runs/{id8}/results")).unwrap().text(),
        expected
    );

    server.shutdown();
}

#[test]
fn summary_endpoint_matches_the_report_json_encoder() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::new(&server.addr().to_string());
    let body = Json::Obj(vec![
        (
            "scenarios".into(),
            Json::Arr(vec![Json::Str("star/k8/rooted/sync/probe-dfs".into())]),
        ),
        ("reps".into(), Json::Num(2.0)),
        ("seed".into(), Json::from_u64_lossless(3)),
    ]);
    let resp = client.post_json("/runs", &body).unwrap();
    assert_eq!(resp.status, 201);
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    wait_done(&mut client, &id);
    let summary = client
        .get(&format!("/runs/{id}/results?format=summary"))
        .unwrap();
    assert_eq!(summary.status, 200);
    let doc = summary.json().unwrap();
    assert_eq!(doc.get("campaign").and_then(Json::as_str), Some("custom"));
    let sections = match doc.get("sections") {
        Some(Json::Arr(items)) => items,
        other => panic!("bad sections: {other:?}"),
    };
    let ms = match sections[0].get("measurements") {
        Some(Json::Arr(ms)) => ms,
        other => panic!("bad measurements: {other:?}"),
    };
    assert_eq!(ms.len(), 1);
    assert_eq!(
        ms[0].get("scenario").and_then(Json::as_str),
        Some("star/k8/rooted/sync/probe-dfs")
    );
    assert_eq!(
        ms[0].get("all_dispersed").and_then(Json::as_bool),
        Some(true)
    );
    server.shutdown();
}

#[test]
fn lifecycle_errors_are_typed_and_cancellation_works() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::new(&server.addr().to_string());

    // Health and vocabulary endpoints. `/healthz` carries the process
    // identity; `status` stays the literal "ok" smoke checks grep for.
    let health = client.get("/healthz").unwrap().json().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("role").and_then(Json::as_str),
        Some("standalone")
    );
    assert!(health
        .get("uptime_seconds")
        .and_then(Json::as_u64)
        .is_some());
    assert_eq!(
        health.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let scenarios = client.get("/scenarios").unwrap();
    assert!(scenarios.text().contains("async-target"));

    // Unknown run, bad grid, bad route.
    assert_eq!(client.get("/runs/r999").unwrap().status, 404);
    assert_eq!(client.get("/nope").unwrap().status, 404);
    let bad = client
        .post_json(
            "/runs",
            &Json::Obj(vec![(
                "scenarios".into(),
                Json::Arr(vec![Json::Str("star/k8/rooted/sync/quantum-dfs".into())]),
            )]),
        )
        .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("unknown algorithm"), "{}", bad.text());

    // Results of an unfinished/cancelled run are a 409, not a hang: cancel
    // immediately after submit (the FIFO executor may or may not have
    // started it; either way the job settles and results stay unavailable
    // if it was cancelled before completion).
    let resp = client
        .post_json(
            "/runs",
            &Json::Obj(vec![
                (
                    "scenarios".into(),
                    Json::Arr(vec![Json::Str("line/k64/rooted/sync/ks-dfs".into())]),
                ),
                ("reps".into(), Json::Num(50.0)),
            ]),
        )
        .unwrap();
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let cancel = client.delete(&format!("/runs/{id}")).unwrap();
    assert_eq!(cancel.status, 200);
    let deadline = Instant::now() + Duration::from_secs(60);
    let final_state = loop {
        let doc = client.get(&format!("/runs/{id}")).unwrap().json().unwrap();
        match doc.get("state").and_then(Json::as_str).map(str::to_string) {
            Some(s) if s == "queued" || s == "running" => {
                assert!(Instant::now() < deadline);
                std::thread::sleep(Duration::from_millis(10));
            }
            Some(s) => break s,
            None => panic!("no state"),
        }
    };
    if final_state == "cancelled" {
        let results = client.get(&format!("/runs/{id}/results")).unwrap();
        assert_eq!(results.status, 409);
        assert!(results.text().contains("cancelled"));
    } else {
        // The executor won the race and finished the tiny grid first —
        // then results must be available and DELETE was a no-op.
        assert_eq!(final_state, "done");
        assert_eq!(
            client.get(&format!("/runs/{id}/results")).unwrap().status,
            200
        );
    }
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_do_not_starve_new_clients() {
    // One HTTP worker only: before the yield-to-the-queue policy, a single
    // idle keep-alive client would pin it for the whole idle budget (~30 s)
    // and every new connection would hang.
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            http_threads: 1,
            job_threads: 1,
            cache_dir: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    let mut idle_client = Client::new(&addr);
    assert_eq!(idle_client.get("/healthz").unwrap().status, 200);
    // idle_client now holds the only worker in its keep-alive read loop.

    let mut fresh = Client::new(&addr);
    let start = Instant::now();
    assert_eq!(fresh.get("/healthz").unwrap().status, 200);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "new client starved for {:?} behind an idle keep-alive connection",
        start.elapsed()
    );

    // The displaced idle client transparently reconnects (safe GET retry).
    assert_eq!(idle_client.get("/healthz").unwrap().status, 200);
    server.shutdown();
}

#[test]
fn persistent_cache_survives_a_restart() {
    let dir = std::env::temp_dir().join(format!("disp-serve-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let config = ServeConfig {
        http_threads: 2,
        job_threads: 2,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let expected = offline_jsonl(7);
    let total = 2 * mini_labels().len() as u64;

    // First server instance computes the grid…
    {
        let server = Server::start("127.0.0.1:0", config.clone()).unwrap();
        let mut client = Client::new(&server.addr().to_string());
        let resp = client.post_json("/runs", &mini_submission(7)).unwrap();
        let id = resp
            .json()
            .unwrap()
            .get("id")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        wait_done(&mut client, &id);
        assert_eq!(metric(&mut client, "disp_trials_executed_total"), total);
        server.shutdown();
    }

    // …and a restarted instance serves it from disk without running a thing.
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut client = Client::new(&server.addr().to_string());
    let resp = client.post_json("/runs", &mini_submission(7)).unwrap();
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let status = wait_done(&mut client, &id);
    assert_eq!(status.get("executed").and_then(Json::as_u64), Some(0));
    assert_eq!(metric(&mut client, "disp_trials_executed_total"), 0);
    assert_eq!(
        client.get(&format!("/runs/{id}/results")).unwrap().text(),
        expected
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeline_endpoints_use_the_shared_encoder_and_track_job_progress() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
    let mut client = Client::new(&server.addr().to_string());

    // `GET /timeline` streams exactly what `disp-campaign timeline` would
    // print for the same scenario and seed: both sides run
    // `run_with_timeline` and encode through the shared
    // `timeline_to_jsonl`, so byte-identity holds by construction — and is
    // pinned here over a real socket.
    let label = "star/k8/rooted/sync/probe-dfs";
    let registry = Registry::builtin();
    let spec = ScenarioSpec::parse(label, &registry).unwrap();
    let (_report, timeline) = spec
        .run_with_timeline(&registry, 7, disp_sim::DEFAULT_TIMELINE_BUDGET)
        .unwrap();
    let expected = timeline_to_jsonl(&timeline, &spec.label(), 7);
    let resp = client
        .get(&format!("/timeline?scenario={label}&seed=7"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), expected);

    // A tight budget decimates deterministically and surfaces on the
    // `/metrics` decimation gauge.
    let small = client
        .get(&format!("/timeline?scenario={label}&seed=7&budget=4"))
        .unwrap();
    assert_eq!(small.status, 200);
    let end = Json::parse(small.text().lines().last().unwrap()).unwrap();
    assert_eq!(
        end.get("event").and_then(Json::as_str),
        Some("timeline_end")
    );
    let level = end
        .get("decimation_level")
        .and_then(Json::as_u64)
        .expect("timeline_end carries decimation_level");
    assert!(level >= 1, "budget 4 must force decimation");
    assert!(metric(&mut client, "disp_timeline_decimation_level") >= level);

    // Bad inputs are typed 400s, never mid-stream failures.
    assert_eq!(client.get("/timeline").unwrap().status, 400);
    assert_eq!(
        client.get("/timeline?scenario=nope/k8").unwrap().status,
        400
    );
    assert_eq!(
        client
            .get(&format!("/timeline?scenario={label}&budget=0"))
            .unwrap()
            .status,
        400
    );

    // The per-job progress timeline brackets monotone samples with
    // start/end lines and its last sample reaches done == total.
    let resp = client.post_json("/runs", &mini_submission(7)).unwrap();
    assert_eq!(resp.status, 201);
    let id = resp
        .json()
        .unwrap()
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    wait_done(&mut client, &id);
    let body = client.get(&format!("/runs/{id}/timeline")).unwrap();
    assert_eq!(body.status, 200);
    let text = body.text();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(
        lines
            .first()
            .and_then(|l| l.get("event"))
            .and_then(Json::as_str),
        Some("progress_start")
    );
    assert_eq!(
        lines
            .last()
            .and_then(|l| l.get("event"))
            .and_then(Json::as_str),
        Some("progress_end")
    );
    let total = lines[0].get("total").and_then(Json::as_u64).unwrap();
    let dones: Vec<u64> = lines
        .iter()
        .filter(|l| l.get("event").and_then(Json::as_str) == Some("progress"))
        .map(|l| l.get("done").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(!dones.is_empty(), "no progress samples in:\n{text}");
    assert!(
        dones.windows(2).all(|w| w[0] < w[1]),
        "progress samples must be strictly monotone: {dones:?}"
    );
    assert_eq!(*dones.last().unwrap(), total);

    // Unknown run id → 404.
    assert_eq!(client.get("/runs/r999/timeline").unwrap().status, 404);
    server.shutdown();
}
