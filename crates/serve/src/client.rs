//! A minimal blocking HTTP/1.1 client over `std::net` — just enough to
//! drive `disp-serve`: keep-alive connection reuse, fixed-length and
//! chunked response bodies, JSON helpers. Shared by the `disp-load`
//! harness, the integration tests and the CI smoke, so the server is
//! always exercised through the same wire code its load numbers are
//! measured with.

use disp_analysis::json::Json;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Body parsed as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(self.text().trim())
    }
}

/// A keep-alive client bound to one server address.
#[derive(Debug)]
pub struct Client {
    addr: String,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (`host:port`). Connects lazily.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            stream: None,
        }
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<HttpResponse, String> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post_json(&mut self, path: &str, body: &Json) -> Result<HttpResponse, String> {
        self.request("POST", path, Some(body.to_string_compact().into_bytes()))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> Result<HttpResponse, String> {
        self.request("DELETE", path, None)
    }

    /// `POST path` with a `Transfer-Encoding: chunked` body — the upload
    /// path for cluster batch results, whose JSONL bodies are assembled
    /// incrementally. Same stale-connection retry policy as [`request`].
    ///
    /// [`request`]: Client::request
    pub fn post_chunked(&mut self, path: &str, body: &[u8]) -> Result<HttpResponse, String> {
        let had_connection = self.stream.is_some();
        match self.try_request_inner("POST", path, body, true) {
            Ok(resp) => Ok(resp),
            Err((e, retry_safe)) if had_connection && retry_safe => {
                self.stream = None;
                self.try_request_inner("POST", path, body, true)
                    .map_err(|(e2, _)| format!("{e2} (after stale-connection retry: {e})"))
            }
            Err((e, _)) => Err(e),
        }
    }

    /// One request with a single reconnect retry: a server may legally
    /// close a kept-alive connection between requests (idle expiry, yield
    /// under load, drain), which surfaces as an error on the next
    /// write/read and is not a real failure.
    ///
    /// The retry — including for non-idempotent `POST`s — only happens
    /// when the first attempt was on a *reused* connection and failed
    /// before **any** response byte arrived: `disp-serve` answers every
    /// request it parses (even malformed ones get a 400), so
    /// zero-bytes-then-close means the request was never processed. A
    /// failure after response bytes is never retried: the server may have
    /// acted, so double-submitting would be unsound.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<Vec<u8>>,
    ) -> Result<HttpResponse, String> {
        let had_connection = self.stream.is_some();
        let body = body.as_deref().unwrap_or(&[]);
        match self.try_request_inner(method, path, body, false) {
            Ok(resp) => Ok(resp),
            Err((e, retry_safe)) if had_connection && retry_safe => {
                // Stale keep-alive connection: reconnect once.
                self.stream = None;
                self.try_request_inner(method, path, body, false)
                    .map_err(|(e2, _)| format!("{e2} (after stale-connection retry: {e})"))
            }
            Err((e, _)) => Err(e),
        }
    }

    /// The error side carries whether a retry is safe (no response bytes
    /// were received before the failure).
    fn try_request_inner(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        chunked: bool,
    ) -> Result<HttpResponse, (String, bool)> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| (format!("connect {}: {e}", self.addr), false))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .map_err(|e| (e.to_string(), false))?;
            stream
                .set_nodelay(true)
                .map_err(|e| (e.to_string(), false))?;
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().expect("connected above");
        let head = if chunked {
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {}\r\ntransfer-encoding: chunked\r\n\r\n",
                self.addr,
            )
        } else {
            format!(
                "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\n\r\n",
                self.addr,
                body.len(),
            )
        };
        let mut got_response_bytes = false;
        let io = (|| -> std::io::Result<HttpResponse> {
            stream.write_all(head.as_bytes())?;
            if chunked {
                // 32 KiB chunks: big enough to amortize framing, small
                // enough that the server's incremental decoder is actually
                // exercised by real uploads.
                for piece in body.chunks(32 * 1024) {
                    write!(stream, "{:x}\r\n", piece.len())?;
                    stream.write_all(piece)?;
                    stream.write_all(b"\r\n")?;
                }
                stream.write_all(b"0\r\n\r\n")?;
            } else {
                stream.write_all(body)?;
            }
            stream.flush()?;
            read_response(stream, &mut got_response_bytes)
        })();
        match io {
            Ok(resp) => {
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.stream = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.stream = None;
                Err((format!("{method} {path}: {e}"), !got_response_bytes))
            }
        }
    }
}

fn read_response(stream: &mut TcpStream, got_any: &mut bool) -> std::io::Result<HttpResponse> {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "EOF before response head",
                ))
            }
            Ok(n) => {
                *got_any = true;
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                ErrorKind::InvalidData,
                format!("bad status line '{status_line}'"),
            )
        })?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut rest = buf.split_off(head_end);
    let header = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    let body = if header("transfer-encoding").is_some_and(|v| v.eq_ignore_ascii_case("chunked")) {
        read_chunked(stream, &mut rest)?
    } else {
        let len: usize = header("content-length")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        while rest.len() < len {
            let mut chunk = [0u8; 8192];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "EOF mid-body",
                    ))
                }
                Ok(n) => rest.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        rest.truncate(len);
        rest
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Decode a chunked body; `rest` holds bytes already read past the head.
fn read_chunked(stream: &mut TcpStream, rest: &mut Vec<u8>) -> std::io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        // Read until we have a full size line.
        let line_end = loop {
            if let Some(i) = rest.windows(2).position(|w| w == b"\r\n") {
                break i;
            }
            read_more(stream, rest)?;
        };
        let size_line = std::str::from_utf8(&rest[..line_end])
            .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "bad chunk size"))?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "bad chunk size"))?;
        rest.drain(..line_end + 2);
        while rest.len() < size + 2 {
            read_more(stream, rest)?;
        }
        body.extend_from_slice(&rest[..size]);
        rest.drain(..size + 2); // chunk data + trailing CRLF
        if size == 0 {
            return Ok(body);
        }
    }
}

fn read_more(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "EOF mid-chunked-body",
                ))
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
