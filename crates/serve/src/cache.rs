//! The content-addressed trial cache.
//!
//! PR 2 made every trial a pure function of its *content identity* — the
//! canonical scenario label, the campaign seed and the repetition index:
//! the derived trial seed is `mix(campaign_seed, fnv1a(label), rep)`
//! ([`disp_campaign::grid::trial_seed`]) and the outcome is a deterministic
//! function of `(label, trial seed)`. That makes trial results perfectly
//! cacheable across submissions: any two requests that mention the same
//! `(label, seed, rep)` — in the same job, in overlapping jobs, or days
//! apart — denote byte-identical records.
//!
//! The cache address is exactly that content triple, carried as
//! `(label, rep, derived trial seed)` — the form every [`TrialRecord`]
//! already stores, so the cache re-derives its own keys from its persisted
//! records (content-addressing in both directions). Persistence layers over
//! the same JSONL trial log the campaign store uses: one record per line,
//! flushed per insert, torn tails tolerated on load, duplicate keys
//! collapsed. A cache directory is therefore inspectable (and greppable)
//! with the exact tooling that reads campaign checkpoints.
//!
//! The one field of a record that is *not* content is the grid's
//! advertised repetition count (`"repetitions"`), which only describes the
//! submitting grid. [`TrialCache::lookup`] rewrites it to the requesting
//! grid's value, so a cache hit is byte-identical to what a fresh offline
//! run of the requesting grid would have produced.

use disp_analysis::jsonl;
use disp_analysis::TrialRecord;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The content identity of a trial.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    /// Canonical scenario label.
    label: String,
    /// Repetition index within the grid point.
    rep: usize,
    /// The derived trial seed (a pure function of campaign seed + label +
    /// rep; included so grids run under different campaign seeds never
    /// alias).
    seed: u64,
}

/// A thread-safe, optionally persistent map from trial content identity to
/// the completed [`TrialRecord`].
#[derive(Debug)]
pub struct TrialCache {
    entries: Mutex<HashMap<CacheKey, TrialRecord>>,
    /// Append-only JSONL log (absent for a purely in-memory cache).
    writer: Option<Mutex<BufWriter<File>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TrialCache {
    /// An in-memory cache (tests, `--cache-dir`-less servers).
    pub fn in_memory() -> TrialCache {
        TrialCache {
            entries: Mutex::new(HashMap::new()),
            writer: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Open (or create) a persistent cache in `dir`, loading every record
    /// from `dir/cache.jsonl`. Torn tails — a kill mid-append — are
    /// tolerated exactly as in the campaign store; duplicate keys collapse
    /// to the first occurrence (all occurrences are byte-identical by
    /// construction, so the choice is immaterial).
    pub fn open(dir: &Path) -> Result<TrialCache, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join("cache.jsonl");
        let mut entries = HashMap::new();
        if path.exists() {
            let file = File::open(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
            let ingest = jsonl::read_trials(BufReader::new(file)).map_err(|e| e.to_string())?;
            for rec in ingest.records {
                entries.entry(key_of(&rec)).or_insert(rec);
            }
        }
        // Same torn-tail repair as the campaign store's appender (shared
        // helper: a kill mid-append must not merge the next record into
        // the torn line).
        let file = jsonl::open_append_with_repair(&path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(TrialCache {
            entries: Mutex::new(entries),
            writer: Some(Mutex::new(BufWriter::new(file))),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Look up the record for `(label, rep, seed)`, counting a hit or miss.
    ///
    /// On a hit the returned record's advertised repetition count is
    /// rewritten to `repetitions` (see the module docs), making the record
    /// byte-identical to a fresh run of the requesting grid.
    pub fn lookup(
        &self,
        label: &str,
        rep: usize,
        seed: u64,
        repetitions: usize,
    ) -> Option<TrialRecord> {
        let key = CacheKey {
            label: label.to_string(),
            rep,
            seed,
        };
        let found = self.entries.lock().unwrap().get(&key).cloned();
        match found {
            Some(mut rec) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rec.point.repetitions = repetitions;
                Some(rec)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a completed record (no-op if its key is already present) and,
    /// for persistent caches, append + flush it to `cache.jsonl` so a kill
    /// loses at most in-flight trials.
    pub fn insert(&self, record: &TrialRecord) {
        let key = key_of(record);
        {
            let mut entries = self.entries.lock().unwrap();
            if entries.contains_key(&key) {
                return;
            }
            entries.insert(key, record.clone());
        }
        if let Some(writer) = &self.writer {
            let mut w = writer.lock().unwrap();
            // An unwritable cache should abort loudly, like the store.
            writeln!(w, "{}", record.to_json_line()).expect("append cache record");
            w.flush().expect("flush cache record");
        }
    }

    /// Number of cached trials.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

fn key_of(rec: &TrialRecord) -> CacheKey {
    CacheKey {
        label: rec.point.point_id(),
        rep: rec.rep,
        seed: rec.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_analysis::ExperimentPoint;
    use disp_campaign::grid::trial_seed;
    use disp_core::scenario::{Registry, ScenarioSpec};
    use disp_graph::generators::GraphFamily;
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "disp-serve-cache-test-{}-{tag}",
            std::process::id()
        ))
    }

    fn run_one(k: usize, reps: usize, campaign_seed: u64, rep: usize) -> TrialRecord {
        let point =
            ExperimentPoint::new(ScenarioSpec::new(GraphFamily::Star, k, "probe-dfs"), reps);
        let seed = trial_seed(campaign_seed, &point, rep);
        point.run_trial(&Registry::builtin(), rep, seed)
    }

    #[test]
    fn hit_after_insert_and_counters() {
        let cache = TrialCache::in_memory();
        let rec = run_one(8, 2, 7, 0);
        assert!(cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .is_none());
        cache.insert(&rec);
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(hit.to_json_line(), rec.to_json_line());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lookup_rewrites_the_advertised_repetition_count() {
        let cache = TrialCache::in_memory();
        let rec = run_one(8, 2, 7, 0);
        cache.insert(&rec);
        // A later grid mentions the same trial but asks for 5 repetitions:
        // the served record must read exactly as that grid's fresh run.
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 5)
            .unwrap();
        let mut fresh = rec.clone();
        fresh.point.repetitions = 5;
        assert_eq!(hit.to_json_line(), fresh.to_json_line());
    }

    #[test]
    fn different_campaign_seeds_do_not_alias() {
        let cache = TrialCache::in_memory();
        let a = run_one(8, 2, 7, 0);
        cache.insert(&a);
        let b = run_one(8, 2, 8, 0); // same label+rep, different campaign seed
        assert!(cache
            .lookup(&b.point.point_id(), b.rep, b.seed, 2)
            .is_none());
    }

    #[test]
    fn persistent_cache_reloads_and_tolerates_torn_tails() {
        let dir = tmp_dir("persist");
        std::fs::remove_dir_all(&dir).ok();
        let rec = run_one(8, 2, 7, 0);
        let other = run_one(12, 2, 7, 1);
        {
            let cache = TrialCache::open(&dir).unwrap();
            cache.insert(&rec);
            cache.insert(&other);
            cache.insert(&other); // duplicate insert is a no-op
        }
        // Simulate a kill mid-append.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join("cache.jsonl"))
                .unwrap();
            write!(f, "{{\"scenario\":").unwrap();
        }
        let cache = TrialCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        let hit = cache
            .lookup(&rec.point.point_id(), rec.rep, rec.seed, 2)
            .unwrap();
        assert_eq!(hit.to_json_line(), rec.to_json_line());
        // And the reloaded cache repairs the torn tail before appending, so
        // a new record lands on its own line instead of merging into the
        // torn one.
        let third = run_one(16, 2, 7, 0);
        cache.insert(&third);
        let reloaded = TrialCache::open(&dir).unwrap();
        assert_eq!(reloaded.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
