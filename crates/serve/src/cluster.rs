//! The HTTP side of coordinator/worker mode.
//!
//! `disp-cluster` keeps the protocol (`proto`), the scheduling state
//! (`board`) and the worker loop transport-agnostic; this module supplies
//! the two HTTP halves:
//!
//! * `handle_internal` — the coordinator's `/internal/*` endpoint
//!   handlers, routed from [`crate::server`]. `complete` is where worker
//!   results enter the shared cache tier and the submitting job's
//!   telemetry stream (worker-tagged `trial_completed` events).
//! * [`HttpCoordinator`] + [`run_worker`] — the worker process: the
//!   [`Coordinator`] transport over [`crate::client::Client`] (batch
//!   uploads use chunked request bodies) and the process runner that wires
//!   a local cache, the heartbeat thread and the worker loop together.

use crate::cache::TrialCache;
use crate::client::Client;
use crate::metrics::Metrics;
use crate::server::AppState;
use disp_analysis::json::Json;
use disp_campaign::telemetry::TrialEvent;
use disp_cluster::proto::{
    decode_complete_body, decode_reconcile, decode_worker_ref, encode_complete_body,
    encode_reconcile, encode_worker_ref, CompleteHeader, CompleteReply, LeaseReply, ReconcileReply,
    Upload,
};
use disp_cluster::{Coordinator, WorkerConfig, WorkerShared, WorkerStats, WorkerSummary};
use disp_core::scenario::Registry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn error_body(message: &str) -> Vec<u8> {
    Json::Obj(vec![("error".into(), Json::Str(message.into()))])
        .to_string_compact()
        .into_bytes()
}

/// Handle one `POST /internal/<cmd>` request; returns `(status, body)`.
///
/// Answers 404 unless this server was started as a coordinator. During
/// shutdown, leases answer `Draining` (workers exit cleanly) and
/// heartbeats answer `ok: false` (in-flight batches are abandoned; their
/// trials stay in the workers' local caches for the next run).
pub(crate) fn handle_internal(
    state: &AppState,
    shutdown: &AtomicBool,
    cmd: &str,
    body: &[u8],
) -> (u16, Vec<u8>) {
    let Some(board) = &state.cluster else {
        return (404, error_body("this server is not a coordinator"));
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return (400, error_body("body is not UTF-8"));
    };
    match cmd {
        "lease" => match decode_worker_ref(text) {
            Ok((worker, _, stats)) => {
                if let Some(stats) = stats {
                    board.note_worker_stats(&worker, stats);
                }
                let reply = if shutdown.load(Ordering::SeqCst) {
                    LeaseReply::Draining
                } else {
                    board.lease(&worker)
                };
                (200, reply.encode().into_bytes())
            }
            Err(e) => (400, error_body(&e)),
        },
        "heartbeat" => match decode_worker_ref(text) {
            Ok((worker, Some((job, batch)), stats)) => {
                if let Some(stats) = stats {
                    board.note_worker_stats(&worker, stats);
                }
                let ok = !shutdown.load(Ordering::SeqCst) && board.heartbeat(&worker, &job, batch);
                let body = Json::Obj(vec![("ok".into(), Json::Bool(ok))])
                    .to_string_compact()
                    .into_bytes();
                (200, body)
            }
            Ok((_, None, _)) => (400, error_body("heartbeat needs job and batch")),
            Err(e) => (400, error_body(&e)),
        },
        "reconcile" => match decode_reconcile(text) {
            Ok((worker, job, batch, digests)) => {
                let reply = board.reconcile(&worker, &job, batch, &digests);
                (200, reply.encode().into_bytes())
            }
            Err(e) => (400, error_body(&e)),
        },
        "complete" => match decode_complete_body(text) {
            Ok((header, uploads)) => {
                match board.complete(&header.worker, &header.job, header.batch, &uploads) {
                    Ok(reply) => {
                        if !reply.stale {
                            absorb_uploads(state, &header, &uploads);
                        }
                        (200, reply.encode().into_bytes())
                    }
                    // A broken upload (wrong identity, uncovered slot) is
                    // the worker's bug; the lease stays live for a retry.
                    Err(e) => (400, error_body(&e)),
                }
            }
            Err(e) => (400, error_body(&e)),
        },
        _ => (404, error_body("no such endpoint")),
    }
}

/// Fold an accepted batch completion into the shared cache tier, the
/// submitting job's progress counters and its live event stream.
fn absorb_uploads(state: &AppState, header: &CompleteHeader, uploads: &[Upload]) {
    let job = state.manager.get(&header.job);
    for u in uploads {
        state.cache.insert(&u.record);
        let Some(job) = &job else { continue };
        if u.cached {
            // Served from the worker's local cache: a hit, tagged as such.
            job.record_trial_event(&TrialEvent::cached(&u.record));
            job.note_cluster_trial(false);
        } else {
            job.record_trial_event(&TrialEvent::completed_by(
                &u.record,
                u.wall_micros,
                &header.worker,
            ));
            job.note_cluster_trial(true);
            Metrics::inc(&state.metrics.trials_executed);
            state.metrics.trial_duration_us.observe(u.wall_micros);
        }
    }
}

/// The worker's [`Coordinator`] transport: the protocol over the same
/// keep-alive HTTP client `disp-load` uses. Batch uploads go out as
/// chunked request bodies ([`Client::post_chunked`]).
#[derive(Debug)]
pub struct HttpCoordinator {
    client: Client,
}

impl HttpCoordinator {
    /// A transport to the coordinator at `addr` (`host:port`).
    pub fn new(addr: &str) -> HttpCoordinator {
        HttpCoordinator {
            client: Client::new(addr),
        }
    }

    fn post(&mut self, path: &str, body: String) -> Result<String, String> {
        let resp = self.client.request("POST", path, Some(body.into_bytes()))?;
        if resp.status != 200 {
            return Err(format!("{path}: HTTP {}: {}", resp.status, resp.text()));
        }
        Ok(resp.text())
    }
}

impl Coordinator for HttpCoordinator {
    fn lease(&mut self, worker: &str, stats: WorkerStats) -> Result<LeaseReply, String> {
        let body = self.post(
            "/internal/lease",
            encode_worker_ref(worker, None, Some(stats)),
        )?;
        LeaseReply::decode(&body)
    }

    fn heartbeat(
        &mut self,
        worker: &str,
        job: &str,
        batch: u64,
        stats: WorkerStats,
    ) -> Result<bool, String> {
        let body = self.post(
            "/internal/heartbeat",
            encode_worker_ref(worker, Some((job, batch)), Some(stats)),
        )?;
        Json::parse(body.trim())?
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or_else(|| "heartbeat reply: missing ok".to_string())
    }

    fn reconcile(
        &mut self,
        worker: &str,
        job: &str,
        batch: u64,
        digests: &[Option<u64>],
    ) -> Result<ReconcileReply, String> {
        let body = self.post(
            "/internal/reconcile",
            encode_reconcile(worker, job, batch, digests),
        )?;
        ReconcileReply::decode(&body)
    }

    fn complete(
        &mut self,
        header: &CompleteHeader,
        uploads: &[Upload],
    ) -> Result<CompleteReply, String> {
        let body = encode_complete_body(header, uploads);
        let resp = self
            .client
            .post_chunked("/internal/complete", body.as_bytes())?;
        if resp.status != 200 {
            return Err(format!(
                "/internal/complete: HTTP {}: {}",
                resp.status,
                resp.text()
            ));
        }
        CompleteReply::decode(&resp.text())
    }
}

/// Configuration of a worker process (`disp-serve --role worker`).
#[derive(Debug, Clone)]
pub struct WorkerProcessConfig {
    /// Worker id, tagged onto every trial it uploads.
    pub id: String,
    /// Engine threads for batch execution.
    pub threads: usize,
    /// Local cache directory (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
    /// Poll delay when the coordinator has no work.
    pub poll: Duration,
}

/// Run a worker against the coordinator at `addr` until `shared` is asked
/// to stop (SIGTERM) or the coordinator drains. The heartbeat thread gets
/// its own connection so a long-running batch cannot starve its lease.
pub fn run_worker(
    addr: &str,
    cfg: &WorkerProcessConfig,
    shared: &Arc<WorkerShared>,
) -> Result<WorkerSummary, String> {
    let cache = match &cfg.cache_dir {
        Some(dir) => TrialCache::open(dir)?,
        None => TrialCache::in_memory(),
    };
    let registry = Registry::builtin();
    let mut transport = HttpCoordinator::new(addr);
    let heartbeat = {
        let mut transport = HttpCoordinator::new(addr);
        let shared = Arc::clone(shared);
        let worker = cfg.id.clone();
        std::thread::spawn(move || {
            disp_cluster::worker::heartbeat_loop(&mut transport, &shared, &worker)
        })
    };
    let worker_cfg = WorkerConfig {
        id: cfg.id.clone(),
        threads: cfg.threads,
        poll: cfg.poll,
    };
    let result = disp_cluster::worker::run_worker_loop(
        &mut transport,
        &cache,
        &registry,
        &worker_cfg,
        shared,
    );
    // End the heartbeat thread whether the loop drained or errored.
    shared.request_stop();
    let _ = heartbeat.join();
    result
}
