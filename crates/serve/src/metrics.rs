//! Service counters and their text exposition (`GET /metrics`).
//!
//! The format is the Prometheus text convention — `name value` lines with
//! `_total` suffixes on monotone counters — because every scraping tool
//! (and `grep` in the CI smoke) reads it. Counters never influence
//! behavior; they exist so a load test can *prove* claims like "the second
//! submission was served entirely from cache".

use crate::cache::TrialCache;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone service counters (all relaxed: they are observability, not
/// synchronization).
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests parsed and routed (any status).
    pub http_requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Jobs accepted by `POST /runs`.
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached the `done` state.
    pub jobs_completed: AtomicU64,
    /// Jobs cancelled before completion.
    pub jobs_cancelled: AtomicU64,
    /// Jobs that failed (executor panic — should stay 0).
    pub jobs_failed: AtomicU64,
    /// Trials actually executed by the engine (cache misses that ran).
    pub trials_executed: AtomicU64,
}

impl Metrics {
    /// Increment a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the text exposition, folding in the cache's counters and the
    /// current queue depth gauge.
    pub fn render(&self, cache: &TrialCache, queue_depth: usize) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        format!(
            "disp_http_requests_total {}\n\
             disp_http_errors_total {}\n\
             disp_jobs_submitted_total {}\n\
             disp_jobs_completed_total {}\n\
             disp_jobs_cancelled_total {}\n\
             disp_jobs_failed_total {}\n\
             disp_trials_executed_total {}\n\
             disp_cache_hits_total {}\n\
             disp_cache_misses_total {}\n\
             disp_cache_entries {}\n\
             disp_queue_depth {}\n",
            get(&self.http_requests),
            get(&self.http_errors),
            get(&self.jobs_submitted),
            get(&self.jobs_completed),
            get(&self.jobs_cancelled),
            get(&self.jobs_failed),
            get(&self.trials_executed),
            cache.hits(),
            cache.misses(),
            cache.len(),
            queue_depth,
        )
    }
}

/// Parse one counter out of a `/metrics` body (shared by `disp-load` and
/// the integration tests — and a tiny spec of the exposition format).
pub fn parse_metric(body: &str, name: &str) -> Option<u64> {
    body.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        if n == name {
            v.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let metrics = Metrics::default();
        let cache = TrialCache::in_memory();
        Metrics::inc(&metrics.http_requests);
        Metrics::inc(&metrics.http_requests);
        Metrics::inc(&metrics.trials_executed);
        let text = metrics.render(&cache, 3);
        assert_eq!(parse_metric(&text, "disp_http_requests_total"), Some(2));
        assert_eq!(parse_metric(&text, "disp_trials_executed_total"), Some(1));
        assert_eq!(parse_metric(&text, "disp_cache_hits_total"), Some(0));
        assert_eq!(parse_metric(&text, "disp_queue_depth"), Some(3));
        assert_eq!(parse_metric(&text, "disp_nope"), None);
    }
}
