//! Service counters, histograms and their text exposition (`GET /metrics`).
//!
//! The format is the Prometheus text convention — `name value` lines with
//! `_total` suffixes on monotone counters, and
//! `name_bucket{le="…"} count` / `name_sum` / `name_count` triples for
//! histograms — because every scraping tool (and `grep` in the CI smoke)
//! reads it. Counters never influence behavior; they exist so a load test
//! can *prove* claims like "the second submission was served entirely from
//! cache" or "telemetry added no tail latency".
//!
//! Every line this module renders must round-trip through
//! [`parse_metric`] — enforced by a test that iterates the full exposition
//! — so a counter can never again be declared but silently dropped from
//! the rendering (the bug class that once hid eviction counts).

use crate::cache::TrialCache;
use disp_cluster::BoardStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket upper bounds (µs) for HTTP request latency: sub-millisecond
/// cache hits through second-long campaign submissions.
pub const HTTP_LATENCY_BUCKETS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 100_000, 1_000_000,
];

/// Bucket upper bounds (µs) for trial execution and queue-wait times:
/// micro trials through minute-scale n=10^6 runs.
pub const TRIAL_DURATION_BUCKETS_US: &[u64] = &[
    100, 1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000, 60_000_000,
];

/// A fixed-bucket cumulative histogram (Prometheus semantics): lock-free
/// observation, rendered as `_bucket{le="…"}` lines plus `_sum`/`_count`.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given bucket upper bounds (ascending).
    pub fn new(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        if let Some(i) = self.bounds.iter().position(|&b| value <= b) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Append the text exposition for this histogram under `name`.
    /// Bucket counts are cumulative, ending with the implicit `+Inf`
    /// bucket (== `_count`), per the Prometheus convention. Each line
    /// keeps the `first-token value` shape [`parse_metric`] expects.
    fn render_into(&self, name: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        let total = self.count.load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum.load(Ordering::Relaxed)
        ));
        out.push_str(&format!("{name}_count {total}\n"));
    }
}

/// Monotone service counters and latency histograms (all relaxed: they are
/// observability, not synchronization).
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests parsed and routed (any status).
    pub http_requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub http_errors: AtomicU64,
    /// Jobs accepted by `POST /runs`.
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached the `done` state.
    pub jobs_completed: AtomicU64,
    /// Jobs cancelled before completion.
    pub jobs_cancelled: AtomicU64,
    /// Jobs that failed (executor panic — should stay 0).
    pub jobs_failed: AtomicU64,
    /// Settled jobs evicted from the manager under the retention budgets
    /// (their trials stay cached; only the job handle is dropped).
    pub jobs_evicted: AtomicU64,
    /// Trials actually executed by the engine (cache misses that ran).
    pub trials_executed: AtomicU64,
    /// Event-stream lines dropped by the slow-consumer policy: whenever a
    /// `GET /runs/:id/events` subscriber falls behind the retained window,
    /// the events it skipped are counted here (and reported to it in an
    /// `overflow` frame).
    pub events_dropped: AtomicU64,
    /// Highest stride-doubling decimation level reached by any timeline
    /// this process has served (a gauge: 0 = every recorded point kept).
    pub timeline_decimation_level: AtomicU64,
    /// Per-request wall time, µs (request parsed → response written).
    pub http_request_duration_us: Histogram,
    /// Per-trial execution wall time, µs (fed by job telemetry).
    pub trial_duration_us: Histogram,
    /// Time jobs spent queued before the executor picked them up, µs.
    pub job_queue_wait_us: Histogram,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            http_requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_evicted: AtomicU64::new(0),
            trials_executed: AtomicU64::new(0),
            events_dropped: AtomicU64::new(0),
            timeline_decimation_level: AtomicU64::new(0),
            http_request_duration_us: Histogram::new(HTTP_LATENCY_BUCKETS_US),
            trial_duration_us: Histogram::new(TRIAL_DURATION_BUCKETS_US),
            job_queue_wait_us: Histogram::new(TRIAL_DURATION_BUCKETS_US),
        }
    }
}

/// Point-in-time gauges owned by the server, passed in at render time.
#[derive(Debug, Clone, Default)]
pub struct Gauges {
    /// Jobs waiting for the executor.
    pub queue_depth: usize,
    /// HTTP workers currently serving a connection.
    pub http_workers_busy: usize,
    /// Size of the HTTP worker pool.
    pub http_workers: usize,
    /// Cluster board statistics (`None` off-coordinator; the cluster
    /// gauges still render as zeros so the exposition schema is stable).
    pub cluster: Option<BoardStats>,
}

impl Metrics {
    /// Increment a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the text exposition, folding in the cache's counters and the
    /// current gauges.
    pub fn render(&self, cache: &TrialCache, gauges: Gauges) -> String {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = format!(
            "disp_http_requests_total {}\n\
             disp_http_errors_total {}\n\
             disp_jobs_submitted_total {}\n\
             disp_jobs_completed_total {}\n\
             disp_jobs_cancelled_total {}\n\
             disp_jobs_failed_total {}\n\
             disp_jobs_evicted_total {}\n\
             disp_trials_executed_total {}\n\
             disp_events_dropped_total {}\n\
             disp_timeline_decimation_level {}\n\
             disp_cache_hits_total {}\n\
             disp_cache_misses_total {}\n\
             disp_cache_entries {}\n\
             disp_cache_bytes {}\n\
             disp_cache_evictions_total {}\n\
             disp_queue_depth {}\n\
             disp_http_workers_busy {}\n\
             disp_http_workers {}\n",
            get(&self.http_requests),
            get(&self.http_errors),
            get(&self.jobs_submitted),
            get(&self.jobs_completed),
            get(&self.jobs_cancelled),
            get(&self.jobs_failed),
            get(&self.jobs_evicted),
            get(&self.trials_executed),
            get(&self.events_dropped),
            get(&self.timeline_decimation_level),
            cache.hits(),
            cache.misses(),
            cache.len(),
            cache.bytes(),
            cache.evictions(),
            gauges.queue_depth,
            gauges.http_workers_busy,
            gauges.http_workers,
        );
        // Cluster gauges render unconditionally (zeros off-coordinator) so
        // scrapes keep a stable schema; per-worker counters are labeled
        // lines, addressable by their full first token.
        let board = gauges.cluster.clone().unwrap_or_default();
        out.push_str(&format!(
            "disp_cluster_workers {}\n\
             disp_cluster_workers_busy {}\n\
             disp_leases_active {}\n\
             disp_leases_expired_total {}\n",
            board.workers, board.workers_busy, board.leases_active, board.leases_expired,
        ));
        // Fleet-wide execution counters: the sum of every worker's latest
        // cumulative snapshot, piggybacked on leases and heartbeats. Like
        // the cluster gauges they render unconditionally as zeros when the
        // server is not a coordinator.
        out.push_str(&format!(
            "disp_fleet_trials_executed_total {}\n\
             disp_fleet_local_cache_hits_total {}\n\
             disp_fleet_trials_uploaded_total {}\n\
             disp_fleet_batches_completed_total {}\n\
             disp_fleet_batches_abandoned_total {}\n",
            board.fleet.executed,
            board.fleet.local_hits,
            board.fleet.uploaded,
            board.fleet.batches,
            board.fleet.abandoned,
        ));
        for (worker, trials) in &board.per_worker_trials {
            out.push_str(&format!(
                "disp_cluster_worker_trials_total{{worker=\"{worker}\"}} {trials}\n"
            ));
        }
        self.http_request_duration_us
            .render_into("disp_http_request_duration_us", &mut out);
        self.trial_duration_us
            .render_into("disp_trial_duration_us", &mut out);
        self.job_queue_wait_us
            .render_into("disp_job_queue_wait_us", &mut out);
        out
    }
}

/// Parse one metric out of a `/metrics` body (shared by `disp-load` and
/// the integration tests — and a tiny spec of the exposition format).
/// Histogram bucket lines are addressed by their full first token, e.g.
/// `disp_trial_duration_us_bucket{le="+Inf"}`.
pub fn parse_metric(body: &str, name: &str) -> Option<u64> {
    body.lines().find_map(|line| {
        let (n, v) = line.split_once(' ')?;
        if n == name {
            v.parse().ok()
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let metrics = Metrics::default();
        let cache = TrialCache::in_memory();
        Metrics::inc(&metrics.http_requests);
        Metrics::inc(&metrics.http_requests);
        Metrics::inc(&metrics.trials_executed);
        Metrics::inc(&metrics.jobs_evicted);
        metrics.events_dropped.fetch_add(9, Ordering::Relaxed);
        metrics
            .timeline_decimation_level
            .store(2, Ordering::Relaxed);
        let text = metrics.render(
            &cache,
            Gauges {
                queue_depth: 3,
                http_workers_busy: 1,
                http_workers: 4,
                cluster: Some(BoardStats {
                    workers: 2,
                    workers_busy: 1,
                    leases_active: 1,
                    leases_expired: 5,
                    per_worker_trials: vec![("w1".into(), 10), ("w2".into(), 7)],
                    fleet: disp_cluster::WorkerStats {
                        executed: 16,
                        local_hits: 4,
                        uploaded: 20,
                        batches: 3,
                        abandoned: 1,
                    },
                }),
            },
        );
        assert_eq!(parse_metric(&text, "disp_http_requests_total"), Some(2));
        assert_eq!(parse_metric(&text, "disp_trials_executed_total"), Some(1));
        assert_eq!(parse_metric(&text, "disp_jobs_evicted_total"), Some(1));
        assert_eq!(parse_metric(&text, "disp_cache_hits_total"), Some(0));
        assert_eq!(parse_metric(&text, "disp_cache_bytes"), Some(0));
        assert_eq!(parse_metric(&text, "disp_cache_evictions_total"), Some(0));
        assert_eq!(parse_metric(&text, "disp_queue_depth"), Some(3));
        assert_eq!(parse_metric(&text, "disp_http_workers_busy"), Some(1));
        assert_eq!(parse_metric(&text, "disp_http_workers"), Some(4));
        assert_eq!(parse_metric(&text, "disp_cluster_workers"), Some(2));
        assert_eq!(parse_metric(&text, "disp_cluster_workers_busy"), Some(1));
        assert_eq!(parse_metric(&text, "disp_leases_active"), Some(1));
        assert_eq!(parse_metric(&text, "disp_leases_expired_total"), Some(5));
        assert_eq!(parse_metric(&text, "disp_events_dropped_total"), Some(9));
        assert_eq!(
            parse_metric(&text, "disp_timeline_decimation_level"),
            Some(2)
        );
        assert_eq!(
            parse_metric(&text, "disp_fleet_trials_executed_total"),
            Some(16)
        );
        assert_eq!(
            parse_metric(&text, "disp_fleet_local_cache_hits_total"),
            Some(4)
        );
        assert_eq!(
            parse_metric(&text, "disp_fleet_trials_uploaded_total"),
            Some(20)
        );
        assert_eq!(
            parse_metric(&text, "disp_fleet_batches_completed_total"),
            Some(3)
        );
        assert_eq!(
            parse_metric(&text, "disp_fleet_batches_abandoned_total"),
            Some(1)
        );
        assert_eq!(
            parse_metric(&text, "disp_cluster_worker_trials_total{worker=\"w1\"}"),
            Some(10)
        );
        assert_eq!(
            parse_metric(&text, "disp_cluster_worker_trials_total{worker=\"w2\"}"),
            Some(7)
        );
        assert_eq!(parse_metric(&text, "disp_nope"), None);
    }

    #[test]
    fn every_rendered_line_round_trips_through_parse_metric() {
        // The audit that keeps declaration and exposition in sync: every
        // line the exposition emits must be addressable by its first token.
        let metrics = Metrics::default();
        metrics.http_request_duration_us.observe(40);
        metrics.trial_duration_us.observe(2_000);
        metrics.job_queue_wait_us.observe(70_000_000); // past the last bound
        let cache = TrialCache::in_memory();
        let text = metrics.render(&cache, Gauges::default());
        let mut lines = 0;
        for line in text.lines() {
            let (name, value) = line.split_once(' ').expect("name value shape");
            let parsed = parse_metric(&text, name)
                .unwrap_or_else(|| panic!("line {line:?} does not round-trip"));
            // parse_metric returns the *first* line with that token; all
            // first tokens must be unique for the exposition to be usable.
            assert_eq!(
                parsed,
                value.parse::<u64>().unwrap(),
                "duplicate or mismatched token {name}"
            );
            lines += 1;
        }
        // Counters + gauges (incl. 4 cluster gauges and 5 fleet gauges, no
        // per-worker lines under a default board) + 3 histograms ×
        // (buckets + +Inf + sum + count).
        let expected =
            27 + (HTTP_LATENCY_BUCKETS_US.len() + 3) + 2 * (TRIAL_DURATION_BUCKETS_US.len() + 3);
        assert_eq!(lines, expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_overflow_lands_in_inf() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 7, 50, 500, 5_000] {
            h.observe(v);
        }
        let mut out = String::new();
        h.render_into("t", &mut out);
        assert_eq!(parse_metric(&out, "t_bucket{le=\"10\"}"), Some(2));
        assert_eq!(parse_metric(&out, "t_bucket{le=\"100\"}"), Some(3));
        assert_eq!(parse_metric(&out, "t_bucket{le=\"1000\"}"), Some(4));
        assert_eq!(parse_metric(&out, "t_bucket{le=\"+Inf\"}"), Some(5));
        assert_eq!(parse_metric(&out, "t_count"), Some(5));
        assert_eq!(parse_metric(&out, "t_sum"), Some(5 + 7 + 50 + 500 + 5_000));
    }
}
