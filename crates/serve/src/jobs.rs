//! The job manager: compiles submitted grids into campaign specs and runs
//! them — through the trial cache — on the existing work-stealing engine.
//!
//! ## Execution model
//!
//! Jobs are queued FIFO to **one** executor thread, which runs each job's
//! cache-missing trials on [`disp_campaign::engine::parallel_map`] with the
//! configured worker count. Serializing *jobs* (while parallelizing
//! *trials*) is a deliberate choice: it is what makes concurrent identical
//! submissions dedupe perfectly — by the time job №2 starts, job №1 has
//! populated the cache, so №2 is a pure cache hit instead of a racing
//! duplicate computation. The queue depth is exported in `/metrics`.
//!
//! ## Determinism under concurrency
//!
//! A job's result lines are assembled in grid order, and each line is a
//! pure function of `(canonical label, campaign seed, rep)` — whether it
//! was computed now, computed by an earlier overlapping job, or loaded
//! from a previous process's cache file. HTTP concurrency, job interleaving
//! and cache state therefore change *latency only*, never a byte of any
//! response body.

use crate::cache::TrialCache;
use crate::metrics::Metrics;
use disp_analysis::jsonl::arrange_grid_order;
use disp_analysis::online::OnlineStats;
use disp_analysis::TrialRecord;
use disp_campaign::engine::parallel_map;
use disp_campaign::grid::{CampaignSpec, TrialSpec};
use disp_campaign::telemetry::{Telemetry, TelemetrySink, TrialEvent};
use disp_cluster::{plan_batches, ClusterBoard, SlotSpec, WaitStatus};
use disp_core::scenario::Registry;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the executor.
    Queued,
    /// Trials are running.
    Running,
    /// Every grid trial is accounted for; results are available.
    Done,
    /// Cancelled before completion (completed trials are still cached).
    Cancelled,
    /// The executor panicked (should not happen; grids are validated at
    /// submit time).
    Failed(String),
}

impl JobState {
    /// Stable lowercase label used in status JSON.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Events retained per job for `GET /runs/:id/events`: a subscriber that
/// falls further behind than this window is handed an overflow marker and
/// skipped forward instead of buffering without bound (the slow-consumer
/// policy, DESIGN.md §10).
pub const EVENT_WINDOW: usize = 4096;

/// The per-job event ring: monotone sequence numbers over a bounded buffer
/// of rendered JSON lines, closed exactly once when the job settles.
#[derive(Debug, Default)]
struct EventLog {
    /// Sequence number the *next* event will get; the oldest retained
    /// event has seq `next_seq - buf.len()`.
    next_seq: u64,
    buf: VecDeque<(u64, String)>,
    closed: bool,
}

/// What [`Job::events_after`] hands an event-stream subscriber.
#[derive(Debug, Clone)]
pub struct EventBatch {
    /// `(seq, json-line)` pairs in order; resume from `last seq + 1`.
    pub events: Vec<(u64, String)>,
    /// Events lost between the subscriber's cursor and the retained
    /// window (0 unless the subscriber fell behind [`EVENT_WINDOW`]).
    pub dropped: u64,
    /// Whether the log is closed (job settled): no further events follow.
    pub closed: bool,
}

/// Retained progress samples per job — the job-level analogue of the trial
/// flight recorder's point budget: the `GET /runs/:id/timeline` document
/// stays O(1) no matter how many trials a grid holds.
pub const PROGRESS_BUDGET: usize = 512;

/// One decimated job-progress sample: the completion counters at the
/// moment the sample was taken, plus the execution clock.
#[derive(Debug, Clone, Copy)]
struct ProgressSample {
    done: u64,
    executed: u64,
    cache_hits: u64,
    elapsed_us: u64,
}

/// The job-progress recorder: the same deterministic stride-doubling
/// decimation as `disp_sim::TimelineRecorder`, keyed on the `done` counter
/// instead of protocol time — a sample is kept when its `done` count is
/// divisible by the stride, and reaching the budget doubles the stride and
/// thins retroactively. The final sample is always force-recorded.
#[derive(Debug)]
struct ProgressLog {
    stride: u64,
    samples: Vec<ProgressSample>,
}

impl Default for ProgressLog {
    fn default() -> ProgressLog {
        ProgressLog {
            stride: 1,
            samples: Vec::new(),
        }
    }
}

impl ProgressLog {
    fn record(&mut self, sample: ProgressSample) {
        // Concurrent trial completions may observe the counters out of
        // order; the log keeps only the monotone frontier.
        if self
            .samples
            .last()
            .is_some_and(|last| last.done >= sample.done)
        {
            return;
        }
        if !sample.done.is_multiple_of(self.stride) {
            return;
        }
        self.samples.push(sample);
        while self.samples.len() >= PROGRESS_BUDGET {
            let next = self.stride * 2;
            self.samples.retain(|s| s.done.is_multiple_of(next));
            self.stride = next;
        }
    }

    fn record_final(&mut self, sample: ProgressSample) {
        match self.samples.last() {
            Some(last) if last.done == sample.done => {}
            _ => self.samples.push(sample),
        }
    }

    fn decimation_level(&self) -> u32 {
        self.stride.trailing_zeros()
    }
}

/// Live per-grid-point statistics: streaming summaries of the two cost
/// measures the paper plots, fed by completed (and cached) trials.
#[derive(Debug, Default, Clone)]
pub struct PointStats {
    /// Total agent moves per trial.
    pub moves: OnlineStats,
    /// Rounds (SYNC) / epochs (ASYNC) per trial.
    pub time: OnlineStats,
}

/// One submitted campaign run.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (`r1`, `r2`, …).
    pub id: String,
    /// The compiled grid.
    pub spec: CampaignSpec,
    /// Number of trials in the grid.
    pub total: usize,
    state: Mutex<JobState>,
    /// Trials accounted for so far (cache hits + executed).
    done: AtomicUsize,
    /// Trials served from the cache.
    cache_hits: AtomicUsize,
    /// Trials actually executed for this job.
    executed: AtomicUsize,
    /// Cooperative cancellation latch.
    cancel: AtomicBool,
    /// Result JSONL lines in grid order (set exactly once, on `Done`).
    results: Mutex<Option<Arc<Vec<String>>>>,
    /// Total bytes of the result lines (feeds the byte-budget eviction).
    results_bytes: AtomicUsize,
    /// Memoized `?format=summary` document — built once on first request,
    /// not re-parsed from the lines per poll.
    summary: Mutex<Option<Arc<String>>>,
    /// Bounded lifecycle + per-trial event ring for the SSE endpoint.
    events: Mutex<EventLog>,
    /// Wakes event-stream subscribers on every push and on close.
    events_cv: Condvar,
    /// Streaming per-point statistics (label → stats), fed by telemetry.
    point_stats: Mutex<HashMap<String, PointStats>>,
    /// Decimated completion-over-time samples (`GET /runs/:id/timeline`).
    progress: Mutex<ProgressLog>,
    /// When the job was submitted (queue-wait metric).
    submitted_at: Instant,
    /// When the executor picked the job up, and how long execution took
    /// once settled — the throughput clock.
    running_span: Mutex<(Option<Instant>, Option<Duration>)>,
}

/// A point-in-time snapshot of a job, for status responses.
#[derive(Debug, Clone)]
pub struct JobSnapshot {
    /// Job id.
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Trials in the grid.
    pub total: usize,
    /// Trials accounted for (cache hits + executed).
    pub done: usize,
    /// Trials served from cache.
    pub cache_hits: usize,
    /// Trials executed fresh.
    pub executed: usize,
}

impl Job {
    fn new(id: String, spec: CampaignSpec) -> Job {
        let total = spec.trials().len();
        Job {
            id,
            spec,
            total,
            state: Mutex::new(JobState::Queued),
            done: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            results: Mutex::new(None),
            results_bytes: AtomicUsize::new(0),
            summary: Mutex::new(None),
            events: Mutex::new(EventLog::default()),
            events_cv: Condvar::new(),
            point_stats: Mutex::new(HashMap::new()),
            progress: Mutex::new(ProgressLog::default()),
            submitted_at: Instant::now(),
            running_span: Mutex::new((None, None)),
        }
    }

    /// Current state (cloned).
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap().clone()
    }

    fn set_state(&self, state: JobState) {
        *self.state.lock().unwrap() = state;
    }

    /// Snapshot the job for a status response.
    pub fn snapshot(&self) -> JobSnapshot {
        JobSnapshot {
            id: self.id.clone(),
            state: self.state(),
            total: self.total,
            done: self.done.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            executed: self.executed.load(Ordering::SeqCst),
        }
    }

    /// The finished result lines (grid order), if the job is `Done`.
    pub fn results(&self) -> Option<Arc<Vec<String>>> {
        self.results.lock().unwrap().clone()
    }

    /// Total bytes held by the finished result lines (0 until `Done`).
    pub fn results_bytes(&self) -> usize {
        self.results_bytes.load(Ordering::SeqCst)
    }

    /// The memoized summary document, building it with `build` on the
    /// first call. Summaries of big jobs are expensive (parse every line,
    /// aggregate measurements), and a polling dashboard would otherwise
    /// pay that per request.
    pub fn summary_or_build(&self, build: impl FnOnce() -> String) -> Arc<String> {
        let mut slot = self.summary.lock().unwrap();
        if let Some(doc) = &*slot {
            return Arc::clone(doc);
        }
        let doc = Arc::new(build());
        *slot = Some(Arc::clone(&doc));
        doc
    }

    /// Append one rendered event line to the (bounded) event ring and wake
    /// subscribers. No-op after close.
    fn push_event(&self, line: String) {
        let mut log = self.events.lock().unwrap();
        if log.closed {
            return;
        }
        let seq = log.next_seq;
        log.next_seq += 1;
        log.buf.push_back((seq, line));
        while log.buf.len() > EVENT_WINDOW {
            log.buf.pop_front();
        }
        drop(log);
        self.events_cv.notify_all();
    }

    /// Push a `job_state` lifecycle event (queued/running/done/…).
    fn push_state_event(&self, state: &JobState) {
        self.push_event(format!(
            "{{\"event\":\"job_state\",\"id\":{:?},\"state\":{:?}}}",
            self.id,
            state.label()
        ));
    }

    /// Close the event log: subscribers drain what is buffered and then
    /// see a clean end-of-stream.
    fn close_events(&self) {
        self.events.lock().unwrap().closed = true;
        self.events_cv.notify_all();
    }

    /// Absorb one telemetry event: append it to the event ring and, for
    /// completed/cached trials, fold the outcome into the per-point
    /// streaming statistics.
    pub fn record_trial_event(&self, event: &TrialEvent) {
        match event {
            TrialEvent::Completed {
                label,
                time,
                total_moves,
                ..
            }
            | TrialEvent::Cached {
                label,
                time,
                total_moves,
                ..
            } => {
                let mut stats = self.point_stats.lock().unwrap();
                let entry = stats.entry(label.clone()).or_default();
                entry.moves.push(*total_moves as f64);
                entry.time.push(*time as f64);
            }
            TrialEvent::Started { .. } | TrialEvent::Overflow { .. } => {}
        }
        self.push_event(event.to_json_line());
    }

    /// Account one trial settled by a cluster worker: `executed` trials ran
    /// fresh on the worker, the rest were its local cache hits. Called by
    /// the `/internal/complete` handler as uploads land.
    pub(crate) fn note_cluster_trial(&self, executed: bool) {
        if executed {
            self.executed.fetch_add(1, Ordering::SeqCst);
        } else {
            self.cache_hits.fetch_add(1, Ordering::SeqCst);
        }
        self.done.fetch_add(1, Ordering::SeqCst);
        self.note_progress();
    }

    /// Sample the completion counters into the progress log. Called after
    /// every `done` increment; the log's divisibility filter makes almost
    /// all calls on a large grid a push-free comparison.
    fn note_progress(&self) {
        let sample = ProgressSample {
            done: self.done.load(Ordering::SeqCst) as u64,
            executed: self.executed.load(Ordering::SeqCst) as u64,
            cache_hits: self.cache_hits.load(Ordering::SeqCst) as u64,
            elapsed_us: self.elapsed_us(),
        };
        self.progress.lock().unwrap().record(sample);
    }

    /// Force-record the terminal progress sample (the recorder's
    /// final-point rule: the last state always survives decimation).
    fn finish_progress(&self) {
        let sample = ProgressSample {
            done: self.done.load(Ordering::SeqCst) as u64,
            executed: self.executed.load(Ordering::SeqCst) as u64,
            cache_hits: self.cache_hits.load(Ordering::SeqCst) as u64,
            elapsed_us: self.elapsed_us(),
        };
        self.progress.lock().unwrap().record_final(sample);
    }

    /// Microseconds on the execution clock (0 while queued).
    fn elapsed_us(&self) -> u64 {
        let span = self.running_span.lock().unwrap();
        match *span {
            (_, Some(total)) => total.as_micros() as u64,
            (Some(started), None) => started.elapsed().as_micros() as u64,
            (None, None) => 0,
        }
    }

    /// Render the decimated progress timeline as JSONL — the body of
    /// `GET /runs/:id/timeline`, available live while the job runs.
    pub fn progress_jsonl(&self) -> String {
        let state = self.state();
        let log = self.progress.lock().unwrap();
        let mut out = format!(
            "{{\"event\":\"progress_start\",\"id\":{:?},\"total\":{},\"state\":{:?}}}\n",
            self.id,
            self.total,
            state.label(),
        );
        for s in &log.samples {
            out.push_str(&format!(
                "{{\"event\":\"progress\",\"done\":{},\"executed\":{},\"cache_hits\":{},\"elapsed_us\":{}}}\n",
                s.done, s.executed, s.cache_hits, s.elapsed_us,
            ));
        }
        out.push_str(&format!(
            "{{\"event\":\"progress_end\",\"points\":{},\"decimation_level\":{}}}\n",
            log.samples.len(),
            log.decimation_level(),
        ));
        out
    }

    /// Events after `cursor`, blocking up to `wait` for news when caught
    /// up. A subscriber that fell behind the retained window gets the
    /// buffered tail plus a nonzero `dropped` count to report.
    pub fn events_after(&self, cursor: u64, wait: Duration) -> EventBatch {
        let mut log = self.events.lock().unwrap();
        loop {
            let oldest = log.next_seq - log.buf.len() as u64;
            let (dropped, from) = if cursor < oldest {
                (oldest - cursor, oldest)
            } else {
                (0, cursor)
            };
            let events: Vec<(u64, String)> = log
                .buf
                .iter()
                .filter(|(seq, _)| *seq >= from)
                .cloned()
                .collect();
            if !events.is_empty() || dropped > 0 || log.closed {
                return EventBatch {
                    events,
                    dropped,
                    closed: log.closed,
                };
            }
            let (guard, timeout) = self.events_cv.wait_timeout(log, wait).unwrap();
            log = guard;
            if timeout.timed_out() {
                return EventBatch {
                    events: Vec::new(),
                    dropped: 0,
                    closed: log.closed,
                };
            }
        }
    }

    /// Snapshot of the per-point streaming statistics, sorted by label.
    pub fn point_stats(&self) -> Vec<(String, PointStats)> {
        let stats = self.point_stats.lock().unwrap();
        let mut out: Vec<(String, PointStats)> =
            stats.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Seconds the job has been executing: live clock while running,
    /// frozen at the final span once settled, `None` while queued.
    pub fn running_secs(&self) -> Option<f64> {
        let span = self.running_span.lock().unwrap();
        match *span {
            (_, Some(total)) => Some(total.as_secs_f64()),
            (Some(started), None) => Some(started.elapsed().as_secs_f64()),
            (None, None) => None,
        }
    }

    /// Microseconds the job waited in the queue (settled by the executor).
    fn mark_running(&self) -> u64 {
        let wait = self.submitted_at.elapsed().as_micros() as u64;
        self.running_span.lock().unwrap().0 = Some(Instant::now());
        wait
    }

    fn mark_settled(&self) {
        let mut span = self.running_span.lock().unwrap();
        if let (Some(started), None) = *span {
            span.1 = Some(started.elapsed());
        }
    }

    /// Request cancellation (idempotent; a no-op once `Done`).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
        let mut state = self.state.lock().unwrap();
        if *state == JobState::Queued {
            // Not picked up yet: the executor will skip it, but reflecting
            // the decision immediately makes DELETE read-your-writes.
            *state = JobState::Cancelled;
        }
    }
}

/// Upper bound on jobs waiting for the executor; submissions beyond it are
/// refused (see [`JobManager::submit`]).
pub const MAX_QUEUED_JOBS: usize = 64;

/// How the executor turns a job's cache-missing trials into records.
#[derive(Debug)]
pub enum ExecBackend {
    /// Run trials in-process on the work-stealing engine.
    Local {
        /// Engine worker threads per job.
        threads: usize,
    },
    /// Shard trials into batches on the cluster lease board; workers pull
    /// and execute them, the board collects the records.
    Cluster {
        /// The coordinator's lease board (shared with the HTTP handlers).
        board: Arc<ClusterBoard>,
        /// Contiguous grid slots per batch.
        batch_size: usize,
    },
}

/// Bounds on how many settled jobs (and how many bytes of their result
/// lines) stay addressable before the oldest are evicted.
#[derive(Debug, Clone, Copy)]
pub struct Retention {
    /// Maximum number of settled jobs retained.
    pub jobs: usize,
    /// Maximum aggregate result-line bytes retained (the newest settled job
    /// is always kept, even if it alone exceeds this).
    pub result_bytes: usize,
}

impl Default for Retention {
    fn default() -> Retention {
        Retention {
            jobs: 512,
            result_bytes: 256 * 1024 * 1024,
        }
    }
}

/// Accepts jobs, owns the executor thread, and hands out job handles.
#[derive(Debug)]
pub struct JobManager {
    jobs: Arc<Mutex<HashMap<String, Arc<Job>>>>,
    queue: Mutex<Option<Sender<Arc<Job>>>>,
    queue_depth: Arc<AtomicUsize>,
    next_id: AtomicU64,
    executor: Mutex<Option<JoinHandle<()>>>,
}

impl JobManager {
    /// Start a manager whose executor runs each job's fresh trials on
    /// `job_threads` engine workers, reading and populating `cache`.
    ///
    /// A long-running server must not retain every job forever (each `Done`
    /// job holds its full result-line vector): once a job settles, it joins
    /// an eviction queue, and only the most recent settled jobs within the
    /// `retention` budgets — a job count *and* an aggregate result-byte
    /// bound, since a handful of near-cap grids can outweigh hundreds of
    /// small ones — stay addressable; older ids answer 404. Their *trials*
    /// remain in the cache, so re-submitting an evicted grid is still a
    /// pure cache hit; only the job handle is gone.
    pub fn start(
        cache: Arc<TrialCache>,
        metrics: Arc<Metrics>,
        backend: ExecBackend,
        retention: Retention,
    ) -> JobManager {
        let (tx, rx) = channel::<Arc<Job>>();
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let depth = Arc::clone(&queue_depth);
        let jobs: Arc<Mutex<HashMap<String, Arc<Job>>>> = Arc::new(Mutex::new(HashMap::new()));
        let jobs_for_executor = Arc::clone(&jobs);
        let executor = std::thread::spawn(move || {
            // Grids were validated at submit time against the builtin
            // registry, so building it here (cheap) keeps the executor free
            // of shared-lifetime plumbing.
            let registry = Registry::builtin();
            // Settled jobs in settle order with their result-byte weight,
            // for eviction.
            let mut settled: std::collections::VecDeque<(String, usize)> = Default::default();
            let mut settled_bytes = 0usize;
            while let Ok(job) = rx.recv() {
                depth.fetch_sub(1, Ordering::SeqCst);
                if job.cancel.load(Ordering::SeqCst) {
                    job.set_state(JobState::Cancelled);
                    Metrics::inc(&metrics.jobs_cancelled);
                } else {
                    let queue_wait_us = job.mark_running();
                    metrics.job_queue_wait_us.observe(queue_wait_us);
                    job.set_state(JobState::Running);
                    job.push_state_event(&JobState::Running);
                    let run =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &backend {
                            ExecBackend::Local { threads } => {
                                Ok(execute_job(&job, &cache, &metrics, &registry, *threads))
                            }
                            ExecBackend::Cluster { board, batch_size } => {
                                execute_job_cluster(&job, &cache, board, *batch_size)
                            }
                        }));
                    match run {
                        Ok(Ok(true)) => {
                            job.set_state(JobState::Done);
                            Metrics::inc(&metrics.jobs_completed);
                        }
                        Ok(Ok(false)) => {
                            job.set_state(JobState::Cancelled);
                            Metrics::inc(&metrics.jobs_cancelled);
                        }
                        Ok(Err(msg)) => {
                            job.set_state(JobState::Failed(msg));
                            Metrics::inc(&metrics.jobs_failed);
                        }
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "executor panicked".into());
                            job.set_state(JobState::Failed(msg));
                            Metrics::inc(&metrics.jobs_failed);
                        }
                    }
                }
                job.mark_settled();
                job.finish_progress();
                // Terminal lifecycle event, then a clean end-of-stream for
                // every `GET /runs/:id/events` subscriber.
                job.push_state_event(&job.state());
                job.close_events();
                let weight = job.results_bytes();
                settled.push_back((job.id.clone(), weight));
                settled_bytes += weight;
                while settled.len() > retention.jobs.max(1)
                    || (settled.len() > 1 && settled_bytes > retention.result_bytes)
                {
                    if let Some((old, old_bytes)) = settled.pop_front() {
                        settled_bytes -= old_bytes;
                        jobs_for_executor.lock().unwrap().remove(&old);
                        Metrics::inc(&metrics.jobs_evicted);
                    }
                }
            }
        });
        JobManager {
            jobs,
            queue: Mutex::new(Some(tx)),
            queue_depth,
            next_id: AtomicU64::new(1),
            executor: Mutex::new(Some(executor)),
        }
    }

    /// Accept a validated grid; returns the queued job handle.
    ///
    /// Backpressure: at most [`MAX_QUEUED_JOBS`] jobs may be waiting for
    /// the executor — beyond that, submissions are refused (HTTP 409)
    /// rather than growing the queue, the jobs map and their eventual
    /// result buffers without bound.
    pub fn submit(&self, spec: CampaignSpec) -> Result<Arc<Job>, String> {
        if self.queue_depth() >= MAX_QUEUED_JOBS {
            return Err(format!(
                "job queue is full ({MAX_QUEUED_JOBS} runs waiting); retry after the backlog drains",
            ));
        }
        let id = format!("r{}", self.next_id.fetch_add(1, Ordering::SeqCst));
        let job = Arc::new(Job::new(id.clone(), spec));
        job.push_state_event(&JobState::Queued);
        self.jobs.lock().unwrap().insert(id, Arc::clone(&job));
        let queue = self.queue.lock().unwrap();
        let tx = queue.as_ref().ok_or("server is shutting down")?;
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
        tx.send(Arc::clone(&job))
            .map_err(|_| "server is shutting down".to_string())?;
        Ok(job)
    }

    /// Look up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<Job>> {
        self.jobs.lock().unwrap().get(id).cloned()
    }

    /// Jobs waiting for the executor (the `/metrics` gauge).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// Graceful drain: refuse new jobs, cancel queued and running ones, and
    /// join the executor. Completed trials stay cached, so a re-submission
    /// after restart resumes from where the drain cut in.
    pub fn shutdown(&self) {
        // Closing the channel ends the executor's recv loop…
        self.queue.lock().unwrap().take();
        // …and the latches drain whatever it is currently running.
        for job in self.jobs.lock().unwrap().values() {
            if !matches!(job.state(), JobState::Done) {
                job.request_cancel();
            }
        }
        if let Some(handle) = self.executor.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

/// The per-job [`TelemetrySink`]: every event lands in the job's event log
/// (feeding `GET /runs/:id/events` and the per-point online stats), and
/// completed-trial wall times feed the service-wide duration histogram.
struct JobSink {
    job: Arc<Job>,
    metrics: Arc<Metrics>,
}

impl TelemetrySink for JobSink {
    fn emit(&mut self, event: &TrialEvent) {
        if let TrialEvent::Completed { wall_micros, .. } = event {
            self.metrics.trial_duration_us.observe(*wall_micros);
        }
        self.job.record_trial_event(event);
    }
}

/// Run one job; returns `false` if cancellation left grid trials undone.
fn execute_job(
    job: &Arc<Job>,
    cache: &TrialCache,
    metrics: &Arc<Metrics>,
    registry: &Registry,
    threads: usize,
) -> bool {
    let telemetry = Telemetry::start(Box::new(JobSink {
        job: Arc::clone(job),
        metrics: Arc::clone(metrics),
    }));
    let events = telemetry.handle();
    let trials = job.spec.trials();
    let mut lines: Vec<Option<String>> = vec![None; trials.len()];
    // Deduplicate by content triple *within* the job too: a grid that lists
    // the same scenario label twice has two slots with one identity — run
    // it once and fill both (the engine-level analogue of the cache).
    let mut todo: Vec<TrialSpec> = Vec::new();
    let mut slots: HashMap<(String, u64), Vec<usize>> = HashMap::new();
    for (i, t) in trials.into_iter().enumerate() {
        match cache.lookup(&t.point.point_id(), t.rep, t.seed, t.point.repetitions) {
            Some(rec) => {
                lines[i] = Some(rec.to_json_line());
                events.emit(TrialEvent::cached(&rec));
                job.cache_hits.fetch_add(1, Ordering::SeqCst);
                job.done.fetch_add(1, Ordering::SeqCst);
                job.note_progress();
            }
            None => {
                let entry = slots.entry((t.trial_id(), t.seed)).or_default();
                if entry.is_empty() {
                    todo.push(t);
                }
                entry.push(i);
            }
        }
    }
    // Each worker thread keeps one world-allocation pool across every trial
    // it runs (and across jobs — executor threads are long-lived), so grids
    // of many small trials pay for world buffers once per thread, not once
    // per trial. Pooling is byte-invisible to results.
    thread_local! {
        static POOL: std::cell::RefCell<disp_sim::WorldPool> =
            std::cell::RefCell::new(disp_sim::WorldPool::new());
    }
    let (fresh, _stats) = parallel_map(
        todo,
        threads,
        |_, t| {
            if job.cancel.load(Ordering::SeqCst) {
                return None;
            }
            events.emit(TrialEvent::started(&t.point.point_id(), t.rep));
            let begun = Instant::now();
            let rec = POOL.with(|pool| {
                t.point
                    .run_trial_pooled(registry, t.rep, t.seed, &mut pool.borrow_mut())
            });
            events.emit(TrialEvent::completed(
                &rec,
                begun.elapsed().as_micros() as u64,
            ));
            Some(rec)
        },
        |_, rec: &Option<TrialRecord>| {
            if let Some(rec) = rec {
                // Insert before counting: once `done == total` is visible,
                // every line is reproducible from the cache.
                cache.insert(rec);
                job.executed.fetch_add(1, Ordering::SeqCst);
                job.done.fetch_add(1, Ordering::SeqCst);
                job.note_progress();
                Metrics::inc(&metrics.trials_executed);
            }
        },
    );
    telemetry.finish();
    for rec in fresh {
        match rec {
            Some(rec) => {
                let key = (rec.trial_id(), rec.seed);
                for (extra, &i) in slots[&key].iter().enumerate() {
                    lines[i] = Some(rec.to_json_line());
                    if extra > 0 {
                        // Duplicate slots beyond the one that ran are
                        // satisfied by the fresh record: progress-wise they
                        // are hits on it.
                        job.cache_hits.fetch_add(1, Ordering::SeqCst);
                        job.done.fetch_add(1, Ordering::SeqCst);
                        job.note_progress();
                    }
                }
            }
            None => return false, // cancelled before this trial started
        }
    }
    let assembled: Vec<String> = lines
        .into_iter()
        .map(|l| l.expect("every grid trial accounted for"))
        .collect();
    let bytes: usize = assembled.iter().map(String::len).sum();
    job.results_bytes.store(bytes, Ordering::SeqCst);
    *job.results.lock().unwrap() = Some(Arc::new(assembled));
    true
}

/// Run one job through the cluster lease board: publish the cache-missing
/// slots as contiguous batches, wait for workers to pull and complete them
/// (the board requeues expired leases), then arrange the out-of-order shard
/// records back into grid order.
///
/// Per-trial progress and events are fed by the `/internal/complete`
/// handler as uploads land; this function only accounts the coordinator's
/// own cache hits and the duplicate grid slots. Returns `Ok(false)` on
/// cancellation and `Err` on a failed job (digest conflict) or an assembly
/// hole — both surface as `Failed` with the message intact.
fn execute_job_cluster(
    job: &Arc<Job>,
    cache: &TrialCache,
    board: &Arc<ClusterBoard>,
    batch_size: usize,
) -> Result<bool, String> {
    let trials = job.spec.trials();
    let order: Vec<String> = trials.iter().map(|t| t.trial_id()).collect();
    // Compile pass: serve what the coordinator's cache already holds, shard
    // the rest. Slots are deduplicated by content identity — the cluster
    // analogue of the local path's duplicate-label handling.
    let mut held: Vec<TrialRecord> = Vec::new();
    let mut todo: Vec<SlotSpec> = Vec::new();
    let mut seen: std::collections::HashSet<(String, usize, u64)> = Default::default();
    let mut extras = 0usize;
    for t in &trials {
        let label = t.point.point_id();
        match cache.lookup(&label, t.rep, t.seed, t.point.repetitions) {
            Some(rec) => {
                job.record_trial_event(&TrialEvent::cached(&rec));
                job.note_cluster_trial(false);
                seen.insert((label, t.rep, t.seed));
                held.push(rec);
            }
            None if seen.insert((label.clone(), t.rep, t.seed)) => todo.push(SlotSpec {
                label,
                rep: t.rep,
                seed: t.seed,
                repetitions: t.point.repetitions,
            }),
            None => extras += 1,
        }
    }
    if !todo.is_empty() {
        board.publish(&job.id, plan_batches(todo, batch_size));
        loop {
            if job.cancel.load(Ordering::SeqCst) {
                board.withdraw(&job.id);
                return Ok(false);
            }
            match board.wait(&job.id, Duration::from_millis(200)) {
                WaitStatus::Done => break,
                WaitStatus::Failed(msg) => {
                    board.withdraw(&job.id);
                    return Err(msg);
                }
                WaitStatus::Waiting => {}
            }
        }
    }
    let mut all = board.take_records(&job.id);
    board.withdraw(&job.id);
    all.extend(held);
    // Duplicate grid slots beyond the one that was sharded are satisfied by
    // the same record: progress-wise they are hits on it.
    for _ in 0..extras {
        job.note_cluster_trial(false);
    }
    let arranged = arrange_grid_order(all, &order)?;
    let assembled: Vec<String> = arranged.iter().map(TrialRecord::to_json_line).collect();
    let bytes: usize = assembled.iter().map(String::len).sum();
    job.results_bytes.store(bytes, Ordering::SeqCst);
    *job.results.lock().unwrap() = Some(Arc::new(assembled));
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use disp_campaign::run::run_campaign;
    use disp_core::scenario::ScenarioSpec;

    fn grid(seed: u64, reps: usize) -> CampaignSpec {
        let labels = [
            "star/k8/rooted/sync/probe-dfs",
            "rtree/k8/rooted/async-rand0.7/ks-dfs",
        ];
        let scenarios: Vec<ScenarioSpec> = labels
            .iter()
            .map(|l| ScenarioSpec::from_label(l).unwrap())
            .collect();
        CampaignSpec::custom(scenarios, reps, seed)
    }

    fn wait_done(job: &Job) -> JobSnapshot {
        for _ in 0..600 {
            let snap = job.snapshot();
            match snap.state {
                JobState::Done | JobState::Cancelled | JobState::Failed(_) => return snap,
                _ => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        panic!("job did not settle: {:?}", job.snapshot());
    }

    #[test]
    fn job_results_match_an_offline_run_and_repeat_is_pure_cache() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            Arc::clone(&cache),
            Arc::clone(&metrics),
            ExecBackend::Local { threads: 2 },
            Retention::default(),
        );

        let job = manager.submit(grid(7, 2)).unwrap();
        let snap = wait_done(&job);
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.done, snap.total);
        assert_eq!(snap.executed, snap.total, "cold cache executes everything");

        let (offline, _) = run_campaign(&grid(7, 2), None, 1, &Registry::builtin()).unwrap();
        let offline_lines: Vec<String> = offline.iter().map(TrialRecord::to_json_line).collect();
        assert_eq!(*job.results().unwrap(), offline_lines);

        // Identical resubmission: zero executed trials, identical bytes.
        let again = manager.submit(grid(7, 2)).unwrap();
        let snap2 = wait_done(&again);
        assert_eq!(snap2.state, JobState::Done);
        assert_eq!(snap2.executed, 0);
        assert_eq!(snap2.cache_hits, snap2.total);
        assert_eq!(*again.results().unwrap(), offline_lines);
        assert_eq!(
            metrics.trials_executed.load(Ordering::SeqCst),
            snap.total as u64
        );
        manager.shutdown();
    }

    #[test]
    fn overlapping_grid_reuses_shared_trials() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            Arc::clone(&cache),
            metrics,
            ExecBackend::Local { threads: 2 },
            Retention::default(),
        );
        let first = manager.submit(grid(7, 2)).unwrap();
        wait_done(&first);
        // Same labels and campaign seed, one more repetition: only the new
        // rep per point executes.
        let wider = manager.submit(grid(7, 3)).unwrap();
        let snap = wait_done(&wider);
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.cache_hits, first.total);
        assert_eq!(snap.executed, snap.total - first.total);
        // And the served lines advertise the *new* grid's repetition count,
        // exactly as a fresh offline run would.
        let (offline, _) = run_campaign(&grid(7, 3), None, 1, &Registry::builtin()).unwrap();
        let offline_lines: Vec<String> = offline.iter().map(TrialRecord::to_json_line).collect();
        assert_eq!(*wider.results().unwrap(), offline_lines);
        manager.shutdown();
    }

    #[test]
    fn cancel_before_pickup_never_runs() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            cache,
            Arc::clone(&metrics),
            ExecBackend::Local { threads: 1 },
            Retention::default(),
        );
        // Saturate the executor with one job, then cancel a queued one.
        let busy = manager.submit(grid(1, 2)).unwrap();
        let queued = manager.submit(grid(2, 2)).unwrap();
        queued.request_cancel();
        assert_eq!(queued.state(), JobState::Cancelled);
        wait_done(&busy);
        let snap = wait_done(&queued);
        assert_eq!(snap.state, JobState::Cancelled);
        assert_eq!(snap.executed, 0);
        assert!(queued.results().is_none());
        manager.shutdown();
    }

    #[test]
    fn duplicate_labels_in_one_grid_run_once_but_fill_every_slot() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            Arc::clone(&cache),
            Arc::clone(&metrics),
            ExecBackend::Local { threads: 2 },
            Retention::default(),
        );
        let label = "star/k8/rooted/sync/probe-dfs";
        let spec = CampaignSpec::custom(
            vec![
                ScenarioSpec::from_label(label).unwrap(),
                ScenarioSpec::from_label(label).unwrap(),
            ],
            1,
            7,
        );
        let job = manager.submit(spec.clone()).unwrap();
        let snap = wait_done(&job);
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(snap.total, 2);
        assert_eq!(snap.done, 2);
        assert_eq!(snap.executed, 1, "one content triple executes once");
        assert_eq!(metrics.trials_executed.load(Ordering::SeqCst), 1);
        // Output still mirrors the offline run of the same (duplicated)
        // grid, which also emits one line per grid slot.
        let (offline, _) = run_campaign(&spec, None, 1, &Registry::builtin()).unwrap();
        let offline_lines: Vec<String> = offline.iter().map(TrialRecord::to_json_line).collect();
        assert_eq!(*job.results().unwrap(), offline_lines);
        assert_eq!(offline_lines.len(), 2);
        assert_eq!(offline_lines[0], offline_lines[1]);
        manager.shutdown();
    }

    #[test]
    fn settled_jobs_beyond_the_retention_cap_are_evicted() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            Arc::clone(&cache),
            metrics,
            ExecBackend::Local { threads: 2 },
            Retention {
                jobs: 2,
                result_bytes: usize::MAX,
            },
        );
        let jobs: Vec<_> = (0..4)
            .map(|_| manager.submit(grid(7, 1)).unwrap())
            .collect();
        for job in &jobs {
            wait_done(job);
        }
        // Wait for the executor's eviction bookkeeping to catch up: the two
        // oldest settled jobs must disappear from the manager.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while manager.get(&jobs[0].id).is_some() || manager.get(&jobs[1].id).is_some() {
            assert!(std::time::Instant::now() < deadline, "eviction never ran");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(manager.get(&jobs[2].id).is_some());
        assert!(manager.get(&jobs[3].id).is_some());
        // The evicted grid's trials are still cached: a resubmission is a
        // pure hit.
        let again = manager.submit(grid(7, 1)).unwrap();
        let snap = wait_done(&again);
        assert_eq!(snap.executed, 0);
        assert_eq!(snap.cache_hits, snap.total);
        manager.shutdown();
    }

    #[test]
    fn eviction_is_also_bounded_by_result_bytes() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        // A byte budget so small that any two finished jobs exceed it: only
        // the newest settled job may survive, regardless of the job count.
        let manager = JobManager::start(
            Arc::clone(&cache),
            metrics,
            ExecBackend::Local { threads: 2 },
            Retention {
                jobs: 100,
                result_bytes: 1,
            },
        );
        let a = manager.submit(grid(7, 1)).unwrap();
        wait_done(&a);
        assert!(a.results_bytes() > 1);
        let b = manager.submit(grid(8, 1)).unwrap();
        wait_done(&b);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while manager.get(&a.id).is_some() {
            assert!(
                std::time::Instant::now() < deadline,
                "byte-budget eviction never ran"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        // The newest settled job always survives, even over budget.
        assert!(manager.get(&b.id).is_some());
        manager.shutdown();
    }

    #[test]
    fn summary_is_built_once_and_then_served_from_the_memo() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            Arc::clone(&cache),
            metrics,
            ExecBackend::Local { threads: 2 },
            Retention::default(),
        );
        let job = manager.submit(grid(7, 1)).unwrap();
        wait_done(&job);
        let builds = AtomicUsize::new(0);
        let first = job.summary_or_build(|| {
            builds.fetch_add(1, Ordering::SeqCst);
            "doc".into()
        });
        let second = job.summary_or_build(|| {
            builds.fetch_add(1, Ordering::SeqCst);
            "other".into()
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(*first, *second);
        assert!(Arc::ptr_eq(&first, &second));
        manager.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_jobs() {
        let cache = Arc::new(TrialCache::in_memory());
        let metrics = Arc::new(Metrics::default());
        let manager = JobManager::start(
            cache,
            metrics,
            ExecBackend::Local { threads: 1 },
            Retention::default(),
        );
        manager.shutdown();
        assert!(manager.submit(grid(3, 1)).is_err());
    }
}
