//! # disp-serve
//!
//! The long-running campaign service: the ROADMAP's "serves heavy traffic"
//! claim, built on the determinism the earlier layers already guarantee.
//! Because every trial is a pure function of `(canonical scenario label,
//! campaign seed, repetition)` (PR 2), a server can memoize trials across
//! requests and users — identical or overlapping submissions dedupe to
//! byte-identical cached results, and a repeated campaign returns without
//! executing anything.
//!
//! Everything is `std::net` + `std::thread` only; the HTTP/1.1 subset is
//! hand-rolled in [`http`] the same way `disp-rng` replaced `rand`.
//!
//! ## Layers
//!
//! * [`http`] — request parsing, keep-alive, chunked streaming.
//! * [`cache`] — the content-addressed trial cache over a JSONL log.
//! * [`jobs`] — the job manager feeding the campaign engine.
//! * [`server`] — accept loop, worker pool, endpoint routing.
//! * [`metrics`] — counters and their `/metrics` text exposition.
//! * [`client`] — the minimal blocking client used by `disp-load`, the
//!   tests and the CI smoke.
//!
//! Binaries: `disp-serve` (the daemon) and `disp-load` (the
//! load-generation harness that proves the throughput claim with numbers).
//! See `DESIGN.md` §9 for the architecture and the
//! determinism-under-concurrency argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use cache::TrialCache;
pub use client::{Client, HttpResponse};
pub use jobs::{Job, JobManager, JobSnapshot, JobState, Retention};
pub use metrics::{parse_metric, Metrics};
pub use server::{parse_submission, AppState, ServeConfig, Server};
