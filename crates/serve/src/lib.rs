//! # disp-serve
//!
//! The long-running campaign service: the ROADMAP's "serves heavy traffic"
//! claim, built on the determinism the earlier layers already guarantee.
//! Because every trial is a pure function of `(canonical scenario label,
//! campaign seed, repetition)` (PR 2), a server can memoize trials across
//! requests and users — identical or overlapping submissions dedupe to
//! byte-identical cached results, and a repeated campaign returns without
//! executing anything.
//!
//! Everything is `std::net` + `std::thread` only; the HTTP/1.1 subset is
//! hand-rolled in [`http`] the same way `disp-rng` replaced `rand`.
//!
//! ## Layers
//!
//! * [`http`] — request parsing, keep-alive, chunked streaming.
//! * [`cache`] — the content-addressed trial cache over a JSONL log
//!   (promoted to the shared cluster tier in `disp-cluster`; re-exported
//!   here unchanged).
//! * [`jobs`] — the job manager feeding the campaign engine (or, with a
//!   cluster backend, the lease board).
//! * [`server`] — accept loop, worker pool, endpoint routing.
//! * [`cluster`] — the HTTP side of coordinator/worker mode: the
//!   `/internal/*` handlers and the worker-process runner.
//! * [`metrics`] — counters and their `/metrics` text exposition.
//! * [`client`] — the minimal blocking client used by `disp-load`, the
//!   tests and the CI smoke.
//!
//! Binaries: `disp-serve` (the daemon, optionally `--role
//! coordinator|worker`) and `disp-load` (the load-generation harness that
//! proves the throughput claim with numbers). See `DESIGN.md` §9 for the
//! architecture and the determinism-under-concurrency argument, §11 for
//! the cluster design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use disp_cluster::cache;
pub mod client;
pub mod cluster;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use cache::TrialCache;
pub use client::{Client, HttpResponse};
pub use cluster::{run_worker, WorkerProcessConfig};
pub use jobs::{ExecBackend, Job, JobManager, JobSnapshot, JobState, Retention};
pub use metrics::{parse_metric, Metrics};
pub use server::{parse_submission, AppState, CoordinatorConfig, ServeConfig, Server};
